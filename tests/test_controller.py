"""Tests for the reference controller and two-phase consistent updates."""


from repro.controller import ConfirmMode, ConsistentPathUpdate, SdnController
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.sim.kernel import Simulator
from repro.switches.profiles import HP_5406ZL, OVS
from repro.topology.generators import triangle


def direct_setup():
    """Controller wired straight to switch channels (no Monocle)."""
    sim = Simulator()
    net = Network(sim, triangle(), seed=5)
    controller = SdnController(
        sim, send=lambda node, msg: net.channel(node).send_down(msg)
    )
    for node in net.switches:
        net.channel(node).up_handler = (
            lambda msg, n=node: controller.handle_message(n, msg)
        )
    return sim, net, controller


def monocle_setup(probed="s3"):
    sim = Simulator()
    def profiles(n):
        return HP_5406ZL if n == probed else OVS

    net = Network(sim, triangle(), profiles=profiles, seed=5)
    controller_box = {}
    system = MonocleSystem(
        net,
        dynamic=True,
        controller_handler=lambda node, msg: controller_box[
            "c"
        ].handle_message(node, msg),
    )
    controller = SdnController(sim, send=system.send_to_switch)
    controller_box["c"] = controller
    return sim, net, system, controller


class TestRuleInstallation:
    def test_none_mode_confirms_immediately(self):
        sim, net, controller = direct_setup()
        confirmed = []
        controller.install_rule(
            "s1",
            Match.build(nw_dst=1),
            10,
            output(1),
            confirm=ConfirmMode.NONE,
            on_confirmed=lambda: confirmed.append(sim.now),
        )
        assert confirmed == [0.0]

    def test_barrier_mode_waits_for_reply(self):
        sim, net, controller = direct_setup()
        confirmed = []
        controller.install_rule(
            "s1",
            Match.build(nw_dst=1),
            10,
            output(1),
            confirm=ConfirmMode.BARRIER,
            on_confirmed=lambda: confirmed.append(sim.now),
        )
        assert confirmed == []
        sim.run_for(1.0)
        assert len(confirmed) == 1
        assert confirmed[0] > 0

    def test_monocle_ack_mode(self):
        sim, net, system, controller = monocle_setup()
        confirmed = []
        controller.install_rule(
            "s3",
            Match.build(nw_dst=0x0A000001),
            100,
            output(net.port_toward["s3"]["s1"]),
            confirm=ConfirmMode.MONOCLE_ACK,
            on_confirmed=lambda: confirmed.append(sim.now),
        )
        sim.run_for(3.0)
        assert len(confirmed) == 1
        # The rule is genuinely in the data plane at confirmation time.
        assert net.switch("s3").dataplane.get(
            100, Match.build(nw_dst=0x0A000001)
        ) is not None


class TestPathInstallation:
    def test_rules_along_path(self):
        sim, net, controller = direct_setup()
        match = Match.build(nw_dst=0x0A000002)
        controller.install_path(
            path=["s1", "s3", "s2"],
            match=match,
            priority=50,
            port_toward=net.port_toward,
            final_port=47,
            confirm=ConfirmMode.NONE,
        )
        sim.run_for(1.0)
        assert net.switch("s1").control_table.get(50, match) is not None
        assert net.switch("s3").control_table.get(50, match) is not None
        rule_s2 = net.switch("s2").control_table.get(50, match)
        assert rule_s2.forwarding_set() == {47}

    def test_skip_ingress(self):
        sim, net, controller = direct_setup()
        match = Match.build(nw_dst=0x0A000003)
        controller.install_path(
            path=["s1", "s3", "s2"],
            match=match,
            priority=50,
            port_toward=net.port_toward,
            final_port=47,
            skip_ingress=True,
        )
        sim.run_for(1.0)
        assert net.switch("s1").control_table.get(50, match) is None
        assert net.switch("s3").control_table.get(50, match) is not None

    def test_all_confirmed_callback(self):
        sim, net, controller = direct_setup()
        done = []
        controller.install_path(
            path=["s1", "s3", "s2"],
            match=Match.build(nw_dst=4),
            priority=50,
            port_toward=net.port_toward,
            final_port=47,
            confirm=ConfirmMode.BARRIER,
            on_all_confirmed=lambda: done.append(sim.now),
        )
        sim.run_for(2.0)
        assert len(done) == 1


class TestConsistentUpdate:
    def run_update(self, confirm_mode, with_monocle):
        if with_monocle:
            sim, net, system, controller = monocle_setup()
        else:
            sim, net, controller = direct_setup()
        match = Match.build(nw_dst=0x0A000002)
        # Old path: s1 -> s2 directly.
        controller.install_rule(
            "s1", match, 50, output(net.port_toward["s1"]["s2"]),
        )
        sim.run_for(1.0)
        update = ConsistentPathUpdate(
            controller=controller,
            match=match,
            priority=50,
            old_path=["s1", "s2"],
            new_path=["s1", "s3", "s2"],
            port_toward=net.port_toward,
            final_port=47,
            confirm=confirm_mode,
        )
        update.start()
        sim.run_for(5.0)
        return sim, net, update

    def test_barrier_update_completes(self):
        sim, net, update = self.run_update(
            ConfirmMode.BARRIER, with_monocle=False
        )
        assert update.done
        ingress = net.switch("s1").control_table.get(
            50, Match.build(nw_dst=0x0A000002)
        )
        assert ingress.forwarding_set() == {net.port_toward["s1"]["s3"]}

    def test_monocle_update_ingress_after_dataplane(self):
        sim, net, update = self.run_update(
            ConfirmMode.MONOCLE_ACK, with_monocle=True
        )
        assert update.done
        # With Monocle, phase 2 begins only after S3's data plane holds
        # the rule; the blackhole window is gone by construction.
        assert update.phase1_confirmed > update.phase1_started

    def test_mismatched_ingress_rejected(self):
        import pytest

        sim, net, controller = direct_setup()
        update = ConsistentPathUpdate(
            controller=controller,
            match=Match.build(nw_dst=1),
            priority=5,
            old_path=["s1", "s2"],
            new_path=["s2", "s3"],
            port_toward=net.port_toward,
            final_port=1,
        )
        with pytest.raises(ValueError):
            update.start()
