"""Experiment analysis helpers: CDFs, summaries, table rendering."""

from repro.analysis.stats import Cdf, summarize
from repro.analysis.tables import format_table

__all__ = ["Cdf", "summarize", "format_table"]
