"""Quality tests on the ACL datasets: every probe the generator emits
for these realistic tables must pass independent verification, and the
unmonitorable verdicts must have identifiable §3.5 causes."""

import random

import pytest

from repro.core.probegen import (
    ProbeGenerator,
    UnmonitorableReason,
    verify_probe,
)
from repro.datasets import stanford_table
from repro.openflow.match import Match

CATCH = Match.build(dl_vlan=0xF03)


@pytest.fixture(scope="module")
def table():
    return stanford_table(seed=77)


@pytest.fixture(scope="module")
def sample(table):
    rng = random.Random(5)
    return rng.sample(table.rules(), 80)


@pytest.fixture(scope="module")
def results(table, sample):
    generator = ProbeGenerator(catch_match=CATCH)
    return [(rule, generator.generate(table, rule)) for rule in sample]


class TestProbeQuality:
    def test_every_probe_verifies(self, table, results):
        for rule, result in results:
            if result.ok:
                valid, why = verify_probe(table, rule, result.header, CATCH)
                assert valid, (why, rule)

    def test_probes_are_wire_valid(self, results):
        from repro.packets.parse import parse_packet

        for _rule, result in results:
            if result.ok:
                values, _ = parse_packet(result.packet)
                # The reserved VLAN survives crafting.
                from repro.openflow.fields import FieldName

                assert values[FieldName.DL_VLAN] == 0xF03

    def test_majority_monitorable(self, results):
        found = sum(1 for _r, result in results if result.ok)
        assert found / len(results) > 0.7

    def test_unmonitorable_reasons_are_structural(self, table, results):
        """Every UNSAT verdict has a §3.5 explanation: shadowed by
        higher-priority rules, or no outcome difference vs the rule
        below."""
        for rule, result in results:
            if result.ok:
                continue
            assert result.reason is UnmonitorableReason.UNSATISFIABLE
            higher = [
                r
                for r in table.overlapping(rule.match)
                if r.priority > rule.priority
            ]
            lower = [
                r
                for r in table.overlapping(rule.match)
                if r.priority < rule.priority
            ]
            shadowed = any(r.match.covers(rule.match) for r in higher)
            same_outcome_below = any(
                r.match.covers(rule.match)
                and r.forwarding_set() == rule.forwarding_set()
                for r in lower
            )
            drop_over_drop_miss = (
                not rule.forwarding_set()
                and not any(r.forwarding_set() for r in lower)
            )
            assert shadowed or same_outcome_below or drop_over_drop_miss, rule

    def test_overlap_filter_stats_small(self, results):
        """The §5.4 premise: rules overlap only a handful of others."""
        overlaps = [result.overlapping_rules for _r, result in results]
        assert sorted(overlaps)[len(overlaps) // 2] < 100  # median
