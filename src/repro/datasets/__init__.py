"""Synthetic ACL rule tables (the Table 2 workloads).

The paper measures probe-generation time on two real rule sets it could
not publish: the Stanford backbone router "yoza" configuration (2755
rules, from the Header Space Analysis dataset) and ACLs from a large
campus network (10958 rules).  We generate ClassBench-style synthetic
tables with the same sizes and the structural properties probe
generation is sensitive to — prefix-structured overlaps, first-match
priority ordering, a mix of permit/deny actions, and a realistic share
of shadowed or outcome-redundant rules (which is what makes some rules
unmonitorable, §3.5).
"""

from repro.datasets.acl import (
    AclProfile,
    CAMPUS_PROFILE,
    STANFORD_PROFILE,
    campus_table,
    generate_acl_table,
    scaled_profile,
    sized_acl_table,
    stanford_table,
)

__all__ = [
    "AclProfile",
    "CAMPUS_PROFILE",
    "STANFORD_PROFILE",
    "campus_table",
    "generate_acl_table",
    "scaled_profile",
    "sized_acl_table",
    "stanford_table",
]
