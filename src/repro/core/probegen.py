"""Probe generation (paper §3 + §5).

Given the expected flow table of a switch, a rule to probe and the
catching-rule match, :class:`ProbeGenerator` produces a
:class:`ProbeResult` containing the abstract probe header, the crafted
raw packet, and the expected observable outcomes with/without the rule —
or an :class:`UnmonitorableReason` when no probe exists (§3.5).

Pipeline (Figure 2):

1. filter the table to rules overlapping the probed rule (§5.4 lemma),
2. compile Hit / Distinguish / Collect to CNF
   (:class:`~repro.core.constraints.ConstraintCompiler`),
3. run the CDCL solver,
4. decode the assignment into abstract header values,
5. normalize for wire validity (§5.2: spare values, conditional fields),
6. craft the raw packet and compute expected outcomes.

:func:`verify_probe` is the independent, simulation-based checker used by
the test suite: it re-derives Table 1 semantics by actually processing
the probe against the table with and without the probed rule.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.core.constraints import (
    ConstraintCompiler,
    DistinguishEncoding,
    IncrementalProbeEncoder,
)
from repro.obs import NULL_OBSERVER
from repro.openflow.fields import FieldName, HEADER
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable
from repro.openflow.tuplespace import TupleSpaceIndex
from repro.packets.craft import (
    CraftError,
    craft_packet,
    normalize_abstract_header,
)
from repro.sat.cnf import CNF
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import SatSolver


class UnmonitorableReason(str, enum.Enum):
    """Why no probe exists for a rule (§3.5)."""

    #: Higher-priority rules cover the probed rule completely (e.g. a
    #: backup rule shadowed by its primary), or the catching match is
    #: incompatible with the rule's match.
    UNSATISFIABLE = "unsatisfiable"
    #: A probe satisfying the bit constraints exists, but none of them
    #: can be turned into a wire-valid packet (limited-domain dead end).
    UNCRAFTABLE = "uncraftable"
    #: The solver exhausted its conflict budget (should not happen on
    #: realistic tables; reported separately for honesty).
    BUDGET_EXCEEDED = "budget_exceeded"


@dataclass
class ProbeResult:
    """Outcome of one probe-generation attempt.

    Attributes:
        rule: the probed rule.
        ok: True when a probe was produced.
        reason: set when ``ok`` is False.
        header: normalized abstract header values of the probe.
        packet: crafted raw packet bytes.
        outcome_present: expected observable outcome when the rule is in
            the data plane.
        outcome_absent: expected outcome when it is missing.
        generation_time: wall-clock seconds spent generating.
        cnf_vars / cnf_clauses: size of the SAT instance.
        overlapping_rules: how many rules survived the §5.4 filter.
    """

    rule: Rule
    ok: bool
    reason: UnmonitorableReason | None = None
    header: dict[FieldName, int] | None = None
    packet: bytes | None = None
    outcome_present: RuleOutcome | None = None
    outcome_absent: RuleOutcome | None = None
    generation_time: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    overlapping_rules: int = 0
    solver_conflicts: int = 0

    def expects_return(self) -> bool:
        """Will the probe come back to Monocle when the rule is healthy?

        False for drop rules (negative probing, §3.3).
        """
        assert self.outcome_present is not None
        return not self.outcome_present.is_drop()


@dataclass
class ProbeGenerator:
    """Generates probes for rules of one switch's flow table.

    Attributes:
        catch_match: match of the downstream catching rule the probe
            must satisfy (Collect constraint).  The reserved fields it
            pins must not be rewritten by table rules — validated at
            compile time.
        valid_in_ports: if given, the probe's in_port is constrained to
            this set (ports that physically exist / have an upstream
            injector).
        encoding: Distinguish-chain encoding (ablation knob).
        max_conflicts: CDCL conflict budget per probe.
        overlap_filter: the §5.4 optimization; disable only for the
            ablation benchmark.
    """

    catch_match: Match
    valid_in_ports: tuple[int, ...] | None = None
    encoding: DistinguishEncoding = DistinguishEncoding.ASSERTED_CHAIN
    max_conflicts: int | None = 100_000
    overlap_filter: bool = True
    miss_rule: Rule | None = None
    _reserved_fields: frozenset[FieldName] = field(init=False)

    def __post_init__(self) -> None:
        self._reserved_fields = frozenset(self.catch_match.fields)

    # ----- public API -----------------------------------------------------

    def generate(self, table: FlowTable, rule: Rule) -> ProbeResult:
        """Generate a probe for ``rule``, assumed present in ``table``.

        ``table`` is the *expected* table (control-plane view); the rule
        itself must be part of it so priority relations are well defined.
        """
        start = time.perf_counter()
        result = self._generate(table, rule)
        result.generation_time = time.perf_counter() - start
        return result

    def _generate(self, table: FlowTable, rule: Rule) -> ProbeResult:
        if self.overlap_filter:
            candidates = table.overlapping(rule.match)
        else:
            candidates = table.rules()
        candidates = [r for r in candidates if r.key() != rule.key()]
        # The §3.2 no-rewriting-reserved-fields assumption only needs to
        # hold on rules this probe can interact with; use
        # :meth:`validate_table` for a whole-table audit.
        self._check_reserved_fields([rule] + candidates)
        higher = [r for r in candidates if r.priority > rule.priority]
        lower = [r for r in candidates if r.priority < rule.priority]

        compiler = ConstraintCompiler(encoding=self.encoding)
        # Hit
        compiler.assert_matches(rule.match)
        for other in higher:
            compiler.assert_not_matches(other.match)
        # Collect
        compiler.assert_matches(self.catch_match)
        # Distinguish
        compiler.assert_distinguish(rule, lower, miss_rule=self.miss_rule)
        # Wire-level domain restriction for in_port, which unlike the
        # other limited-domain fields cannot be fixed after solving
        # (rules commonly match on it exactly).
        if self.valid_in_ports is not None:
            compiler.assert_value_in(FieldName.IN_PORT, self.valid_in_ports)

        assert isinstance(compiler.cnf, CNF)  # no sink: plain formula
        solver = SatSolver(compiler.cnf)
        sat = solver.solve(max_conflicts=self.max_conflicts)

        result = ProbeResult(
            rule=rule,
            ok=False,
            cnf_vars=compiler.cnf.num_vars,
            cnf_clauses=compiler.cnf.num_clauses,
            overlapping_rules=len(candidates),
            solver_conflicts=sat.conflicts,
        )
        if sat.satisfiable is None:
            result.reason = UnmonitorableReason.BUDGET_EXCEEDED
            return result
        if not sat.satisfiable:
            result.reason = UnmonitorableReason.UNSATISFIABLE
            return result
        return _decode_probe(
            result, rule, candidates, self.catch_match, sat.assignment
        )

    # ----- validation ------------------------------------------------------

    def _check_reserved_fields(self, rules) -> None:
        """Reject rules that rewrite the probe-reserved fields.

        §3.2 lists two failure modes if this assumption is violated; the
        generator refuses rather than producing unsound probes.
        """
        for rule in rules:
            rewritten = rule.actions.rewritten_fields()
            bad = rewritten & self._reserved_fields
            if bad:
                raise ValueError(
                    f"rule {rule!r} rewrites probe-reserved field(s) "
                    f"{sorted(f.value for f in bad)}"
                )

    def validate_table(self, table: FlowTable) -> None:
        """Audit a whole table against the reserved-field assumption."""
        self._check_reserved_fields(table)


def _decode_probe(
    result: ProbeResult,
    rule: Rule,
    candidates: list[Rule],
    catch_match: Match,
    assignment: dict[int, bool],
) -> ProbeResult:
    """Shared tail of both engines: model -> wire probe -> outcomes.

    The §5.2 substitution lemma only needs the matches the probe can
    interact with: by the §5.4 non-overlap lemma, a probe that matches
    the probed rule can never match a non-overlapping rule regardless
    of what value the substituted field takes.
    """
    raw_values = ConstraintCompiler.decode_assignment(assignment)
    relevant = (
        [rule.match] + [r.match for r in candidates] + [catch_match]
    )
    try:
        header = normalize_abstract_header(raw_values, relevant)
        packet = craft_packet(header)
    except CraftError:
        result.reason = UnmonitorableReason.UNCRAFTABLE
        return result

    result.ok = True
    result.header = header
    result.packet = packet
    result.outcome_present, result.outcome_absent = _candidate_outcomes(
        rule, candidates, header
    )
    return result


def _candidate_outcomes(
    rule: Rule, candidates: list[Rule], header: dict[FieldName, int]
) -> tuple[RuleOutcome, RuleOutcome]:
    """Expected with/without outcomes using only the overlap candidates.

    Sound by the §5.4 lemma: the probe cannot match any rule outside the
    candidate set, so the highest-priority match is decided within it.
    """
    ordered = sorted(candidates + [rule], key=lambda r: -r.priority)
    present: RuleOutcome | None = None
    absent: RuleOutcome | None = None
    for candidate in ordered:
        if not candidate.match.matches(header):
            continue
        if present is None:
            present = RuleOutcome.from_rule(candidate, header)
        if absent is None and candidate.key() != rule.key():
            absent = RuleOutcome.from_rule(candidate, header)
        if present is not None and absent is not None:
            break
    if present is None:
        present = RuleOutcome.dropped()
    if absent is None:
        absent = RuleOutcome.dropped()
    return present, absent


def expected_outcomes(
    table: FlowTable, rule: Rule, header: dict[FieldName, int]
) -> tuple[RuleOutcome, RuleOutcome]:
    """Expected outcome of the probe with/without the probed rule.

    ECMP uncertainty is preserved (the returned outcomes keep the ecmp
    flag so the monitor accepts any of the possible ports).
    """
    present = full_outcome(table, header)
    without = table.copy()
    without.remove(rule)
    absent = full_outcome(without, header)
    return present, absent


def full_outcome(
    table: FlowTable, header: dict[FieldName, int]
) -> RuleOutcome:
    """Outcome of processing ``header``, keeping ECMP alternatives."""
    matched = table.lookup(header)
    if matched is None:
        return RuleOutcome.dropped()
    return RuleOutcome.from_rule(matched, header)


def verify_probe(
    table: FlowTable,
    rule: Rule,
    header: dict[FieldName, int],
    catch_match: Match,
) -> tuple[bool, str]:
    """Independent, simulation-based check of Table 1.

    Returns ``(valid, explanation)``.  Used by tests and by paranoid
    callers; the generator's constraints should make this always pass
    for generated probes.
    """
    hit = table.lookup(header)
    if hit is None or hit.key() != rule.key():
        return False, f"probe is processed by {hit!r}, not the probed rule"

    if not catch_match.matches(header):
        return False, "probe does not match the catching rule"

    present, absent = expected_outcomes(table, rule, header)
    if not present.distinguishable_from(absent):
        return False, (
            f"outcomes are not distinguishable: present={present}, "
            f"absent={absent}"
        )
    return True, "ok"


# --------------------------------------------------------------------------
# Incremental probe generation
# --------------------------------------------------------------------------


@dataclass
class ProbeGenContextStats:
    """Counters describing how much work the delta API avoided.

    ``probes_generated`` counts actual incremental SAT solves;
    ``cache_hits`` and ``revalidations`` are probes served without one.
    """

    probes_generated: int = 0
    cache_hits: int = 0
    revalidations: int = 0
    invalidations: int = 0
    rules_added: int = 0
    rules_modified: int = 0
    rules_removed: int = 0
    solver_conflicts: int = 0
    generation_seconds: float = 0.0
    engine_rebuilds: int = 0
    #: Persistent Distinguish-chain bookkeeping: solves that reused the
    #: probed rule's cached chain group vs. ones that had to (re-)emit
    #: it, and chains retracted because their lower-overlap set churned.
    chain_reuses: int = 0
    chain_emits: int = 0
    chain_retractions: int = 0


class ProbeGenContext:
    """Persistent per-switch probe-generation engine (the delta API).

    Wraps one switch's expected flow table plus a persistent
    :class:`~repro.sat.incremental.IncrementalSolver`, so that rule
    churn costs only its delta instead of a from-scratch re-encode:

    * :meth:`add_rule` / :meth:`remove_rule` / :meth:`apply_flowmod`
      update the table and *stale-mark* exactly the cached probes whose
      rule match intersects the change (everything else stays served
      from cache untouched);
    * :meth:`probe_for` first tries the cache, then — for stale entries
      — a cheap simulation-based *revalidation* against the new table,
      and only falls back to an (incremental, assumption-based) SAT
      solve when the cached probe genuinely died.

    Reusable constraint pieces (match guards, DiffOutcome literals, the
    catching match, learned lemmas, solver heuristics) persist inside
    the solver across calls; see
    :class:`~repro.core.constraints.IncrementalProbeEncoder`.

    The configuration (catch match, in_port domain, conflict budget,
    overlap filter) is borrowed from a :class:`ProbeGenerator` so the
    two paths are interchangeable; ``validate_result`` is an optional
    post-generation hook (the Monitor's observability demotion).
    """

    def __init__(
        self,
        generator: ProbeGenerator,
        table: FlowTable | None = None,
        validate_result: Callable[[ProbeResult], ProbeResult] | None = None,
        rebuild_floor: int = 1024,
    ) -> None:
        self.generator = generator
        self.table = (
            table if table is not None else FlowTable(check_overlap=False)
        )
        self.validate_result = validate_result
        #: Re-found the persistent solver once the encoder caches this
        #: many guards beyond twice the live table (see _maybe_rebuild).
        self.rebuild_floor = rebuild_floor
        self.stats = ProbeGenContextStats()
        self.obs = NULL_OBSERVER
        self._obs_node: object | None = None
        self._cache: dict[tuple[int, Match], ProbeResult] = {}
        self._stale: set[tuple[int, Match]] = set()
        #: Tuple-space index over the cached probes' rule matches, so a
        #: churn event stale-marks O(overlapping cache entries) instead
        #: of scanning the whole cache (mirrors ``_cache`` exactly).
        self._cache_index = TupleSpaceIndex()
        self._fresh_engine()

    def _fresh_engine(self) -> None:
        self.solver = IncrementalSolver(HEADER.total_bits)
        self.encoder = IncrementalProbeEncoder(
            self.solver,
            catch_match=self.generator.catch_match,
            valid_in_ports=self.generator.valid_in_ports,
        )
        #: Persistent probe groups (Hit + higher guards + Distinguish
        #: chain): rule key -> (clause group, signature).  A group
        #: survives across probe_for calls and is retracted lazily,
        #: when the signature — the rule's overlap context — actually
        #: changes.  Insertion order doubles as LRU recency for the
        #: retained-variable budget.
        self._chains: dict[tuple[int, Match], tuple[int, tuple]] = {}
        self._chain_vars = 0

    def attach_obs(self, obs: object, node: object) -> None:
        """Publish solve timings through an observer.

        Called by the owning Monitor once observability is enabled; the
        default :data:`~repro.obs.NULL_OBSERVER` path never reaches
        here, so an unobserved context pays a single ``.enabled`` read
        per solve.
        """
        self.obs = obs
        self._obs_node = node
        if obs.enabled:  # type: ignore[attr-defined]
            self._h_solve = obs.metrics.histogram(  # type: ignore[attr-defined]
                "monocle_probegen_solve_seconds", node=repr(node)
            )

    def _maybe_rebuild(self) -> None:
        """Bound encoder growth under non-recycled churn.

        Match-guard and DiffOutcome definitions are permanent in the
        solver (that is what makes them reusable), so a workload that
        keeps inventing fresh matches accumulates encodings for rules
        long deleted.  When dead guards dominate the live table, start
        a fresh solver: live guards re-encode lazily on the next
        probes, cached probe results (plain headers/outcomes, no solver
        references) stay valid.
        """
        live = len(self.table) + 1
        if self.encoder.cached_guards <= max(self.rebuild_floor, 2 * live):
            return
        self._fresh_engine()
        self.stats.engine_rebuilds += 1

    # ----- delta API ------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Install (or replace) a rule and invalidate what it touches."""
        self.table.install(rule)
        self.stats.rules_added += 1
        self._invalidate(rule.match)

    def remove_rule(self, rule: Rule) -> None:
        """Remove a rule (by key) and invalidate what it touched."""
        if self.table.remove(rule):
            self.stats.rules_removed += 1
            self._evict(rule.key())
            self._invalidate(rule.match)
            self._maybe_rebuild()

    def apply_flowmod(self, mod: FlowMod) -> list[Rule]:
        """Apply FlowMod semantics to the table; returns affected rules.

        Invalidation is per *affected rule* — a non-strict DELETE whose
        broad match removes two rules only stale-marks probes
        intersecting those two rules, not everything under the match.
        """
        from repro.switches.switch import apply_flowmod  # local: avoid cycle

        deleting = mod.command.is_delete
        modifying = mod.command.is_modify
        # Distinguishes a real in-place MODIFY from the OF 1.0
        # modify-with-no-target fallback, which installs a new rule.
        had_key = self.table.get(mod.priority, mod.match) is not None
        affected = apply_flowmod(self.table, mod)
        for rule in affected:
            if deleting:
                self.stats.rules_removed += 1
                self._evict(rule.key())
            elif modifying and (
                rule.key() != (mod.priority, mod.match) or had_key
            ):
                self.stats.rules_modified += 1
            else:
                self.stats.rules_added += 1
            self._invalidate(rule.match)
        if deleting and affected:
            self._maybe_rebuild()
        return affected

    def _evict(self, key: tuple[int, Match]) -> None:
        """Drop a removed rule's own cache entry outright.

        Stale-marking is for probes that may survive a neighbour's
        churn; a deleted rule's probe can never be asked for again
        under that key, and keeping it would grow the cache (and the
        per-change invalidation scan) with every rule ever churned.
        The rule's persistent Distinguish chain is retired with it.
        """
        self._cache.pop(key, None)
        self._stale.discard(key)
        self._cache_index.discard(key)
        if key in self._chains:
            self._retire_chain(key)

    def _invalidate(self, match: Match) -> None:
        """Stale-mark cached probes whose rule intersects ``match``.

        Served by the cache's tuple-space index: only the overlapping
        entries are visited, so per-churn invalidation cost tracks the
        overlap set, not the cache size.
        """
        value, mask = match.packed()
        stale = self._stale
        for key in self._cache_index.query(value, mask):
            if key not in stale:
                stale.add(key)
                self.stats.invalidations += 1

    def clear_cache(self) -> None:
        """Drop all cached probes (benchmark/ablation hook).

        Persistent solver state — match guards, DiffOutcome literals,
        Distinguish chains, learned lemmas — survives; only the probe
        result cache is emptied, so every subsequent ``probe_for`` runs
        a real solve against the warm context.
        """
        self._cache.clear()
        self._stale.clear()
        self._cache_index.clear()

    def merge_cache_from(self, other: "ProbeGenContext") -> int:
        """Adopt ``other``'s cached probes this context does not hold.

        Sound only when both contexts' tables are rule-sequence
        identical (the caller — the shared registry's warm re-merge —
        verifies that before any state is shared): a cached result is a
        pure function of the table and the generator config, so either
        context's entry is valid for both.  Stale marks travel with the
        adopted entries; solver state (chains, lemmas) is deliberately
        not merged — each context keeps its own.  Returns the number of
        entries adopted.
        """
        adopted = 0
        for key, result in other._cache.items():
            if key in self._cache:
                continue
            self._cache[key] = result
            if key in other._stale:
                self._stale.add(key)
            if key not in self._cache_index:
                # key == (priority, match): index the rule's packed match.
                self._cache_index.add(key, *key[1].packed())
            adopted += 1
        return adopted

    def cache_size(self) -> int:
        """Fresh (non-stale) cached probe entries.

        What :meth:`export_cache` would ship; the shard gossip layer
        advertises this count so only the richest replica of a table
        pays the export.
        """
        return sum(1 for key in self._cache if key not in self._stale)

    def export_cache(
        self,
    ) -> list[tuple[int, "Match", ProbeResult]]:
        """The fresh (non-stale) cached probes as portable entries.

        Each entry is ``(priority, match, result)`` — plain picklable
        dataclasses, so a sharded fleet can ship solved probes between
        worker processes (fingerprint gossip).  Stale entries are
        withheld: they would need revalidation against *this* table,
        which the importer cannot perform faithfully.
        """
        return [
            (key[0], key[1], result)
            for key, result in self._cache.items()
            if key not in self._stale
        ]

    def import_cache(
        self, entries: "Iterable[tuple[int, Match, ProbeResult]]"
    ) -> int:
        """Adopt exported probe entries from a table-identical context.

        Sound only when the exporter's table was rule-sequence
        identical to this one at export *and* still is at import (the
        caller — the shard gossip layer — verifies both with rule
        signatures).  Entries whose key is no longer in this table are
        skipped: the local table churned past them and the result may
        describe a rule that no longer exists.  Returns the number of
        entries adopted.
        """
        adopted = 0
        for priority, match, result in entries:
            key = (priority, match)
            if key in self._cache or self.table.get(priority, match) is None:
                continue
            self._cache[key] = result
            if key not in self._cache_index:
                self._cache_index.add(key, *match.packed())
            adopted += 1
        return adopted

    def fork(self) -> "ProbeGenContext":
        """An independent copy of this context (copy-on-churn).

        Clones the table, the probe cache and the entire persistent
        solver state, so the fork continues exactly where the original
        stands: its next solves produce the same probes an always-
        independent context would have produced.  Used by the shared
        fleet registry when a switch's table diverges from its
        replicas; the original context (and its other users) are
        unaffected.
        """
        dup = ProbeGenContext.__new__(ProbeGenContext)
        dup.generator = self.generator
        dup.table = self.table.copy()
        dup.validate_result = self.validate_result
        dup.rebuild_floor = self.rebuild_floor
        dup.stats = replace(self.stats)
        dup.obs = self.obs
        dup._obs_node = self._obs_node
        if dup.obs.enabled:
            dup._h_solve = self._h_solve
        # Cached ProbeResults are immutable once stored, so sharing the
        # objects (not the dicts) across the fork is safe.
        dup._cache = dict(self._cache)
        dup._stale = set(self._stale)
        dup._cache_index = self._cache_index.copy()
        dup.solver = self.solver.clone()
        dup.encoder = self.encoder.clone(dup.solver)
        dup._chains = dict(self._chains)
        dup._chain_vars = self._chain_vars
        return dup

    # ----- probe generation ----------------------------------------------

    def probe_for(self, rule: Rule) -> ProbeResult:
        """A probe for ``rule`` in the current table.

        Service order: exact cache hit, cheap revalidation of a
        stale-marked hit, incremental SAT solve.
        """
        key = rule.key()
        cached = self._cache.get(key)
        if cached is not None and cached.rule == rule:
            if key not in self._stale:
                self.stats.cache_hits += 1
                return cached
            refreshed = self._revalidate(rule, cached)
            if refreshed is not None:
                self._cache[key] = refreshed
                self._stale.discard(key)
                self.stats.revalidations += 1
                return refreshed
        result = self._generate(rule)
        if result.ok and self.validate_result is not None:
            result = self.validate_result(result)
        self._cache[key] = result
        self._stale.discard(key)
        if key not in self._cache_index:
            # key == (priority, match): index the rule's packed match.
            self._cache_index.add(key, *rule.match.packed())
        return result

    def _candidates(self, rule: Rule) -> list[Rule]:
        if self.generator.overlap_filter:
            candidates = self.table.overlapping(rule.match)
        else:
            candidates = self.table.rules()
        return [r for r in candidates if r.key() != rule.key()]

    def _revalidate(
        self, rule: Rule, cached: ProbeResult
    ) -> ProbeResult | None:
        """Re-check a stale cached probe against the current table.

        A churned neighbour usually leaves an existing probe packet
        perfectly usable; replaying Table 1 over the overlap candidates
        costs microseconds where a SAT solve costs milliseconds.
        Returns a refreshed result, or None when the probe truly died.
        """
        if not cached.ok or cached.header is None:
            return None  # cached failures must be re-derived
        header = cached.header
        candidates = self._candidates(rule)
        # Same refusal as both generation paths: rules rewriting
        # probe-reserved fields make any probe unsound (§3.2).
        self.generator._check_reserved_fields([rule] + candidates)
        # Hit: the probed rule must still win for this header.
        ordered = sorted(candidates + [rule], key=lambda r: -r.priority)
        winner = next(
            (r for r in ordered if r.match.matches(header)), None
        )
        if winner is None or winner.key() != rule.key():
            return None
        present, absent = _candidate_outcomes(rule, candidates, header)
        if not present.distinguishable_from(absent):
            return None
        refreshed = replace(
            cached,
            outcome_present=present,
            outcome_absent=absent,
            overlapping_rules=len(candidates),
            generation_time=0.0,
        )
        if self.validate_result is not None:
            refreshed = self.validate_result(refreshed)
            if not refreshed.ok:
                return None
        return refreshed

    def _chain_signature(
        self, rule: Rule, lower: list[Rule], higher: list[Rule]
    ) -> tuple:
        """Value identity of the probe constraints a solve needs.

        The group's clauses are fully determined by the probed rule's
        match (Hit bits), the higher-overlap matches in emission order
        (negated guards), the priority-ordered lower-overlap matches
        and the probed-vs-lower action pairs (the Distinguish chain),
        and the miss rule.  Two solves with equal signatures can share
        one persistent clause group; a churn event that leaves the
        signature intact — the common case of a neighbour being removed
        and re-added, or of churn outside the rule's overlap set —
        costs no re-emission at all.  Higher rules' *actions* are
        deliberately absent: they never enter the constraints.
        """
        miss = self.generator.miss_rule
        miss_key = (
            None if miss is None else (miss.priority, miss.match, miss.actions)
        )
        ordered = sorted(lower, key=lambda r: -r.priority)
        return (
            rule.match,
            rule.actions,
            miss_key,
            tuple(r.match for r in higher),
            tuple((r.priority, r.match, r.actions) for r in ordered),
        )

    def _chain_budget(self) -> int:
        """Retained-variable budget for persistent probe groups.

        Keeping every probed rule's group alive forever would make each
        solve assign O(sum of all chain sizes) variables (a CDCL model
        assigns everything); bounding retention by a multiple of the
        table size keeps the per-solve cost proportional to the live
        formula while still holding the entire working set of any
        realistic probing cycle.
        """
        return max(4096, 8 * (len(self.table) + 1))

    def _chain_group(
        self, rule: Rule, lower: list[Rule], higher: list[Rule]
    ) -> int:
        """The persistent clause group holding ``rule``'s constraints.

        Reuses the cached group when the signature still matches;
        otherwise retires the stale group (this is the *only* place a
        live group is retracted for content reasons) and emits a fresh
        one.  Least-recently-probed groups are evicted when retained
        auxiliary variables exceed the budget.
        """
        key = rule.key()
        signature = self._chain_signature(rule, lower, higher)
        cached = self._chains.get(key)
        if cached is not None and cached[1] == signature:
            self._chains[key] = self._chains.pop(key)  # refresh recency
            self.stats.chain_reuses += 1
            return cached[0]
        if cached is not None:
            self._retire_chain(key)
        group = self.solver.new_group()
        try:
            self.encoder.assert_probe_group(
                rule, lower, higher, group, miss_rule=self.generator.miss_rule
            )
        except BaseException:
            self.solver.retire_group(group)
            raise
        self._chains[key] = (group, signature)
        self._chain_vars += self.solver.group_size(group)
        self.stats.chain_emits += 1
        budget = self._chain_budget()
        while self._chain_vars > budget and len(self._chains) > 1:
            oldest = next(iter(self._chains))
            if oldest == key:
                break  # never evict the group we are about to solve
            self._retire_chain(oldest)
        return group

    def _retire_chain(self, key: tuple[int, Match]) -> None:
        group, _signature = self._chains.pop(key)
        self._chain_vars -= self.solver.group_size(group)
        self.solver.retire_group(group)
        self.stats.chain_retractions += 1

    def _generate(self, rule: Rule) -> ProbeResult:
        """One incremental, assumption-based probe generation."""
        start = time.perf_counter()
        generator = self.generator
        candidates = self._candidates(rule)
        generator._check_reserved_fields([rule] + candidates)
        higher = [r for r in candidates if r.priority > rule.priority]
        lower = [r for r in candidates if r.priority < rule.priority]

        group = self._chain_group(rule, lower, higher)
        sat = self.solver.solve(
            [group], max_conflicts=generator.max_conflicts
        )
        # The solve saved phase True for the selector; point the default
        # branch back at "inactive" so other rules' solves do not pay
        # conflicts to switch this group off.
        self.solver.suggest_phase(group, False)

        self.stats.probes_generated += 1
        self.stats.solver_conflicts += sat.conflicts
        result = ProbeResult(
            rule=rule,
            ok=False,
            cnf_vars=self.solver.num_vars,
            cnf_clauses=self.solver.num_clauses,
            overlapping_rules=len(candidates),
            solver_conflicts=sat.conflicts,
        )
        try:
            if sat.satisfiable is None:
                result.reason = UnmonitorableReason.BUDGET_EXCEEDED
                return result
            if not sat.satisfiable:
                result.reason = UnmonitorableReason.UNSATISFIABLE
                return result
            result = _decode_probe(
                result, rule, candidates, generator.catch_match,
                sat.assignment,
            )
            if result.ok:
                # Re-simulate Table 1 on the decoded model.  The
                # incremental solver runs with its internal model check
                # off; this independent (and cheaper) check replaces it
                # — a violation is a solver/encoder bug, not user error.
                header = result.header
                assert header is not None
                ordered = sorted(
                    candidates + [rule], key=lambda r: -r.priority
                )
                winner = next(
                    (r for r in ordered if r.match.matches(header)),
                    None,
                )
                if winner is None or winner.key() != rule.key():
                    raise AssertionError(
                        f"incremental probe for {rule!r} is processed "
                        f"by {winner!r} instead"
                    )
                if not generator.catch_match.matches(header):
                    raise AssertionError(
                        f"incremental probe for {rule!r} misses the "
                        "catching rule"
                    )
            return result
        finally:
            result.generation_time = time.perf_counter() - start
            self.stats.generation_seconds += result.generation_time
            if self.obs.enabled:
                self._h_solve.observe(result.generation_time)
