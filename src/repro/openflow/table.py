"""TCAM-style flow table with OpenFlow 1.0 priority semantics.

Lookup returns the highest-priority matching rule.  The OpenFlow spec
leaves overlapping equal-priority rules undefined; following the paper
(footnote 1) the table refuses to create that situation.

The table also exposes the queries probe generation needs: rules with
higher/lower priority than a given rule, and rules overlapping a match
(§5.4's pre-filter).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome


class TableMissPolicy:
    """What happens to packets that match no rule."""

    DROP = "drop"
    CONTROLLER = "controller"


class OverlapError(ValueError):
    """Raised when inserting a rule that overlaps an equal-priority rule."""


class FlowTable:
    """An ordered collection of rules with TCAM lookup semantics.

    Rules are kept sorted by descending priority; within one priority the
    order is insertion order (irrelevant for lookup because equal-priority
    overlap is rejected).
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        miss_policy: str = TableMissPolicy.DROP,
        check_overlap: bool = True,
    ) -> None:
        self.miss_policy = miss_policy
        self.check_overlap = check_overlap
        self._rules: list[Rule] = []
        self._by_key: dict[tuple[int, Match], Rule] = {}
        #: Lazily built [(packed_value, packed_mask, rule)] for the fast
        #: overlap scan; None when stale.
        self._packed_rows: list[tuple[int, int, Rule]] | None = None
        for rule in rules:
            self.install(rule)

    # ----- mutation ----------------------------------------------------

    def install(self, rule: Rule) -> None:
        """Add a rule; replaces an existing rule with the same key.

        Raises:
            OverlapError: if the rule overlaps a *different* rule of equal
                priority and overlap checking is on.
        """
        key = rule.key()
        existing = self._by_key.get(key)
        if existing is not None:
            self._replace(existing, rule)
            return
        if self.check_overlap:
            for other in self._rules:
                if (
                    other.priority == rule.priority
                    and other.match is not rule.match
                    and other.overlaps(rule)
                ):
                    raise OverlapError(
                        f"rule {rule!r} overlaps equal-priority {other!r}"
                    )
        # Insert keeping descending-priority order (stable).
        index = len(self._rules)
        for i, other in enumerate(self._rules):
            if other.priority < rule.priority:
                index = i
                break
        self._rules.insert(index, rule)
        self._by_key[key] = rule
        self._packed_rows = None

    def _replace(self, old: Rule, new: Rule) -> None:
        index = self._rules.index(old)
        self._rules[index] = new
        self._by_key[new.key()] = new
        self._packed_rows = None

    def remove(self, rule: Rule) -> bool:
        """Remove the rule with this rule's (priority, match) key.

        Returns True if a rule was removed.
        """
        key = rule.key()
        existing = self._by_key.pop(key, None)
        if existing is None:
            return False
        self._rules.remove(existing)
        self._packed_rows = None
        return True

    def remove_matching(
        self, match: Match, strict_priority: int | None = None
    ) -> list[Rule]:
        """OpenFlow delete semantics.

        Non-strict (``strict_priority is None``): remove every rule whose
        match is *covered by* ``match``.  Strict: remove the single rule
        with exactly this (priority, match).
        """
        if strict_priority is not None:
            rule = self._by_key.get((strict_priority, match))
            if rule is None:
                return []
            self.remove(rule)
            return [rule]
        removed = [r for r in self._rules if match.covers(r.match)]
        for rule in removed:
            self.remove(rule)
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._by_key.clear()
        self._packed_rows = None

    # ----- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return self._by_key.get(rule.key()) == rule

    def rules(self) -> list[Rule]:
        """All rules, highest priority first."""
        return list(self._rules)

    def get(self, priority: int, match: Match) -> Rule | None:
        """The rule with exactly this key, or None."""
        return self._by_key.get((priority, match))

    def lookup(self, header_values: Mapping[FieldName, int]) -> Rule | None:
        """Highest-priority rule matching the header, or None on miss."""
        for rule in self._rules:
            if rule.match.matches(header_values):
                return rule
        return None

    def process(
        self,
        header_values: Mapping[FieldName, int],
        ecmp_chooser: Callable[[Rule], int] | None = None,
    ) -> RuleOutcome:
        """Process a packet and return its observable outcome.

        Args:
            header_values: the packet's abstract header.
            ecmp_chooser: for ECMP rules, callback selecting the concrete
                port; defaults to the lowest port (deterministic).
        """
        rule = self.lookup(header_values)
        if rule is None:
            return RuleOutcome.dropped()
        outcome = RuleOutcome.from_rule(rule, header_values)
        if outcome.ecmp:
            if ecmp_chooser is not None:
                port = ecmp_chooser(rule)
            else:
                port = min(outcome.ports())
            chosen = tuple(e for e in outcome.emissions if e[0] == port)
            return RuleOutcome(emissions=chosen, ecmp=False)
        return outcome

    def higher_priority(self, rule: Rule) -> list[Rule]:
        """Rules with strictly higher priority, highest first."""
        return [r for r in self._rules if r.priority > rule.priority]

    def lower_priority(self, rule: Rule) -> list[Rule]:
        """Rules with strictly lower priority, highest first."""
        return [r for r in self._rules if r.priority < rule.priority]

    def overlapping(self, match: Match) -> list[Rule]:
        """Rules whose match overlaps ``match`` (the §5.4 pre-filter).

        Uses a cached packed (value, mask) array so the scan is a single
        bigint expression per rule; this is what keeps per-probe cost
        milliseconds on 10k-rule tables.
        """
        if self._packed_rows is None:
            self._packed_rows = [
                (*r.match.packed(), r) for r in self._rules
            ]
        value, mask = match.packed()
        return [
            rule
            for rule_value, rule_mask, rule in self._packed_rows
            if not ((rule_value ^ value) & rule_mask & mask)
        ]

    def copy(self) -> "FlowTable":
        """A shallow copy (rules are immutable so this is safe)."""
        table = FlowTable(miss_policy=self.miss_policy, check_overlap=False)
        table._rules = list(self._rules)
        table._by_key = dict(self._by_key)
        table.check_overlap = self.check_overlap
        return table

    def __repr__(self) -> str:
        return f"FlowTable({len(self._rules)} rules, miss={self.miss_policy})"
