#!/usr/bin/env python3
"""Observability: trace a fleet run, break every probe's latency down.

Runs a small churning ring with full observability on, then answers the
questions the trace exists for:

* per probe — where did its latency go?  ``solve`` (SAT time inside
  probe generation), ``wait`` (scheduler queueing from the churn/update
  signal to the injection slot), ``wire`` (injection to confirmation) —
  printed with :func:`repro.obs.format_span_table`;
* per failure — replay detection purely from the trace
  (:func:`repro.obs.detection_latencies`) and check it against the
  metrics layer's own :class:`~repro.fleet.metrics.DetectionRecord`;
* per window — sim-time probes/s from the periodic metric snapshots.

Every sim-time quantity (wait, wire, detections, windowed rates) is
deterministic under the fixed seed; the ``solve`` column is measured
wall-clock CPU time and varies run to run.

Run:  python examples/observability.py
"""

from collections import Counter

from repro.fleet import RuleChurn, RuleDrop, ScenarioSpec, run_scenario
from repro.obs import detection_latencies, format_span_table, probe_spans
from repro.obs.metrics import window_rates

SEED = 2015


def main():
    spec = ScenarioSpec(
        topology="ring",
        size=5,
        duration=2.0,
        seed=SEED,
        rules_per_switch=10,
        probe_rate=150.0,
        dynamic=True,
        workloads=(RuleChurn(rate=15.0),),
        failures=(RuleDrop(at=0.8, node="sw2", rule_index=3),),
        observe=True,
        obs_snapshot_interval=0.25,
    )
    result = run_scenario(spec)
    trace = result.observer.trace

    print("=== per-probe latency breakdown (solve / wait / wire) ===\n")
    spans = probe_spans(trace)
    print(format_span_table(spans.values(), limit=20))
    shown = min(20, len(spans))
    if shown < len(spans):
        print(f"... {len(spans) - shown} more spans not shown")

    print("\n=== where the time goes, fleet-wide ===\n")
    sources = Counter(s.source for s in spans.values() if s.source)
    print(
        "probe generation: "
        + ", ".join(f"{n} {src}" for src, n in sources.most_common())
    )
    for label, values in [
        ("solve", [s.solve_seconds for s in spans.values()]),
        ("wait", [s.wait_seconds for s in spans.values()]),
        ("wire", [s.wire_seconds for s in spans.values()]),
    ]:
        known = sorted(v for v in values if v is not None)
        if known:
            median = known[len(known) // 2]
            print(
                f"{label:>5}: median {median * 1000:7.3f} ms, "
                f"max {known[-1] * 1000:7.3f} ms  ({len(known)} probes)"
            )

    print("\n=== detection, replayed from the trace alone ===\n")
    for det in detection_latencies(trace):
        assert det.latency is not None, f"{det.kind} went undetected"
        print(
            f"{det.kind} on {det.detected_on}: injected t={det.injected_at}, "
            f"alarm t={det.detected_at} -> latency {det.latency * 1000:.1f} ms"
        )
    record_latencies = [d.latency for d in result.metrics.detections]
    trace_latencies = [d.latency for d in detection_latencies(trace)]
    assert trace_latencies == record_latencies, "trace diverged from metrics"
    print("(exactly equal to the metrics layer's DetectionRecords)")

    print("\n=== probes/s per sim-time window (metric snapshots) ===\n")
    snapshots = result.observer.metrics.snapshots
    for ts, rate in window_rates(snapshots, "monocle_probes_sent_total"):
        print(f"t={ts:4.2f}  {rate:7.1f} probes/s")


if __name__ == "__main__":
    main()
