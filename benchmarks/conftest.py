"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series next to the paper's reference
numbers.  Because the substrate is a simulator (not the authors'
hardware testbed), the *shapes* — who wins, by what factor, where the
crossovers are — are the reproduction target, not absolute values.

Environment knobs:

* ``REPRO_BENCH_SCALE``: float multiplier on workload sizes (default 1.0
  uses CI-friendly sizes; the full paper-scale run is noted per bench).
* ``REPRO_BENCH_SEED``: base RNG seed (default 2015).
* ``REPRO_BENCH_OUT``: directory for machine-readable ``BENCH_*.json``
  artifacts (default: current working directory).

Benchmarks that track a performance trajectory write a ``BENCH_*.json``
artifact via :func:`write_bench_artifact`; CI uploads every
``BENCH_*.json`` produced by a run, so regressions are visible as data,
not just as prose in a log.
"""

import json
import os
import pathlib

import pytest


def bench_scale() -> float:
    """Workload scale factor from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seed() -> int:
    """Base seed from the environment."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2015"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def write_bench_artifact(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark artifact.

    The file lands at ``$REPRO_BENCH_OUT/BENCH_<name>.json`` (default:
    the working directory) with the scale and seed of the run stamped
    in, so trajectories across commits compare like with like.
    """
    out_dir = pathlib.Path(os.environ.get("REPRO_BENCH_OUT", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("scale", bench_scale())
    payload.setdefault("seed", bench_seed())
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
