"""Failure-injection models scheduled on the simulation clock.

Each :class:`FailureSpec` describes one misbehaviour from the paper's
motivation (§2) and evaluation (§8.1.1): a rule silently vanishing from
the data plane, a rule forwarding to the wrong port, two rules whose
effective priorities are swapped, a link or port dying, and a switch
that accepts a FlowMod but never applies it.

:func:`schedule_failures` arms the specs on a deployment's kernel and
returns one :class:`Injection` record per spec; the metrics layer later
matches monitor alarms against these records to compute detection
latencies and false-alarm counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.fleet.deployment import FleetDeployment
from repro.network.conditioning import ChannelConditions
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, next_xid
from repro.openflow.rule import Rule
from repro.sim.random import DeterministicRandom

#: Destination block for rules created by FlowModBlackhole injections.
BLACKHOLE_DST_BASE = 0x90000000


class FailureSpecError(ValueError):
    """A failure spec references state the deployment does not have."""


@dataclass
class Injection:
    """One armed failure: what was injected, where, and when.

    Attributes:
        kind: failure-kind label (e.g. ``rule_drop``).
        time: injection time on the sim clock.
        nodes: switches whose alarms this injection can explain.
        cookies: rule cookies whose alarms count as *detection*; filled
            at injection time (victims are picked when the clock fires).
        broad: when True, *any* later alarm on ``nodes`` is attributed
            to this injection (link/port failures disturb probing of
            every rule on the adjacent switches, not just the rules
            that forwarded across the dead link).
        chaos: this injection degrades the *substrate* (the control
            channel), not the data plane.  Chaos injections never
            explain an alarm — a probe lost to channel loss that still
            raises ``missing`` is exactly the false alarm the
            hysteresis layer must suppress — and never count toward
            detection coverage.
    """

    kind: str
    time: float
    nodes: set = field(default_factory=set)
    cookies: set = field(default_factory=set)
    broad: bool = False
    description: str = ""
    chaos: bool = False
    #: Set when the spec could not be injected at fire time (e.g. no
    #: production rule to fail); such an injection never detects.
    error: str | None = None

    def explains(self, node: Hashable, alarm) -> bool:
        """Could this injection have caused ``alarm`` on ``node``?"""
        if self.chaos:
            return False
        if alarm.time < self.time or node not in self.nodes:
            return False
        return self.broad or alarm.rule.cookie in self.cookies

    def is_detection(self, node: Hashable, alarm) -> bool:
        """Is ``alarm`` direct evidence of this injection?"""
        return (
            not self.chaos
            and alarm.time >= self.time
            and node in self.nodes
            and alarm.rule.cookie in self.cookies
        )


@dataclass(frozen=True)
class FailureSpec:
    """Base: a failure armed at time ``at`` (sim seconds)."""

    at: float

    kind = "failure"
    #: Chaos specs degrade the substrate, not the data plane; their
    #: records carry ``Injection.chaos`` and are excluded from
    #: detection accounting.
    chaos = False

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        raise NotImplementedError

    def _victim(
        self,
        deployment: FleetDeployment,
        node: Hashable,
        index: int | None,
        rng: DeterministicRandom | None = None,
    ) -> Rule:
        rules = deployment.production_rules.get(node, [])
        if not rules:
            raise FailureSpecError(
                f"no production rules on {node!r} to fail at t={self.at}"
            )
        if index is None:
            # The spec-indexed stream (threaded down from
            # schedule_failures / the shard worker) makes random
            # victims byte-identical at any worker count; the shared
            # fleet stream remains only as a back-compat fallback for
            # direct inject() callers.
            return (rng or deployment.rng).choose(rules)
        return rules[index % len(rules)]


def failure_rng(
    deployment: FleetDeployment, spec_index: int
) -> DeterministicRandom:
    """The spec-indexed stream for one failure's random draws.

    Forked from the fleet stream's *seed* (forks never advance parent
    state), so the stream depends only on the deployment seed and the
    spec's position in ``ScenarioSpec.failures`` — not on how many
    draws other subsystems or other specs made first, and not on which
    shard applies the spec.
    """
    return deployment.rng.fork((0xFA11 << 16) | spec_index)


@dataclass(frozen=True)
class RuleDrop(FailureSpec):
    """Silently remove one production rule from the data plane (§8.1.1)."""

    node: Hashable = None
    rule_index: int | None = None

    kind = "rule_drop"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        rule = self._victim(deployment, self.node, self.rule_index, rng)
        if not deployment.switch(self.node).fail_rule_in_dataplane(rule):
            raise FailureSpecError(
                f"rule {rule.match!r} already absent from {self.node!r}'s "
                "data plane (injected twice?)"
            )
        record.nodes = {self.node}
        record.cookies = {rule.cookie}
        record.description = f"drop {rule.match!r} on {self.node!r}"


@dataclass(frozen=True)
class RuleCorruption(FailureSpec):
    """Rewire one rule's data-plane actions to a wrong port (§8.1.1)."""

    node: Hashable = None
    rule_index: int | None = None

    kind = "rule_corrupt"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        rule = self._victim(deployment, self.node, self.rule_index, rng)
        ports = deployment.neighbor_ports(self.node)
        wrong = [p for p in ports if p not in rule.forwarding_set()]
        if not wrong:
            raise FailureSpecError(
                f"cannot corrupt {rule!r} on {self.node!r}: no other port"
            )
        switch = deployment.switch(self.node)
        if switch.dataplane.get(rule.priority, rule.match) is None:
            raise FailureSpecError(
                f"rule {rule.match!r} no longer in {self.node!r}'s data "
                "plane (removed by an earlier failure?)"
            )
        switch.corrupt_rule_in_dataplane(rule, output(wrong[0]))
        record.nodes = {self.node}
        record.cookies = {rule.cookie}
        record.description = (
            f"corrupt {rule.match!r} on {self.node!r} -> port {wrong[0]}"
        )


@dataclass(frozen=True)
class PrioritySwap(FailureSpec):
    """Swap the data-plane behaviour of two production rules.

    Models a switch applying updates at wrong relative priorities: both
    rules stay present but each forwards the other's way.  Detection is
    an alarm on either victim.
    """

    node: Hashable = None

    kind = "priority_swap"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        switch = deployment.switch(self.node)
        # Only rules still present in the data plane are swappable (an
        # earlier failure may have removed a victim).
        rules = [
            r
            for r in deployment.production_rules.get(self.node, [])
            if switch.dataplane.get(r.priority, r.match) is not None
        ]
        pairs = [
            (a, b)
            for i, a in enumerate(rules)
            for b in rules[i + 1 :]
            if a.forwarding_set() != b.forwarding_set()
            and a.forwarding_set()
            and b.forwarding_set()
        ]
        if not pairs:
            raise FailureSpecError(
                f"no swappable rule pair on {self.node!r} at t={self.at}"
            )
        a, b = (rng or deployment.rng).choose(pairs)
        switch.corrupt_rule_in_dataplane(a, b.actions)
        switch.corrupt_rule_in_dataplane(b, a.actions)
        record.nodes = {self.node}
        record.cookies = {a.cookie, b.cookie}
        record.description = (
            f"swap outcomes of {a.match!r} and {b.match!r} on {self.node!r}"
        )


@dataclass(frozen=True)
class LinkFailure(FailureSpec):
    """Cut the link between two adjacent switches (both directions)."""

    u: Hashable = None
    v: Hashable = None

    kind = "link_down"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        network = deployment.network
        if frozenset((self.u, self.v)) not in network.links:
            raise FailureSpecError(f"no link {self.u!r} <-> {self.v!r}")
        network.fail_link(self.u, self.v)
        record.nodes = {self.u, self.v}
        record.broad = True  # the dead link disturbs all probing on u/v
        for node, peer in ((self.u, self.v), (self.v, self.u)):
            dead_port = network.port_toward[node][peer]
            record.cookies.update(
                rule.cookie
                for rule in deployment.production_rules.get(node, [])
                if dead_port in rule.forwarding_set()
            )
        record.description = f"link {self.u!r} <-> {self.v!r} down"


@dataclass(frozen=True)
class PortFailure(FailureSpec):
    """Kill one switch's egress port toward a neighbor (one direction)."""

    node: Hashable = None
    toward: Hashable = None

    kind = "port_down"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        network = deployment.network
        port = network.port_toward.get(self.node, {}).get(self.toward)
        if port is None:
            raise FailureSpecError(
                f"{self.node!r} has no port toward {self.toward!r}"
            )
        deployment.switch(self.node).fail_port(port)
        record.nodes = {self.node, self.toward}
        record.broad = True  # probe paths through the port die too
        record.cookies = {
            rule.cookie
            for rule in deployment.production_rules.get(self.node, [])
            if port in rule.forwarding_set()
        }
        record.description = (
            f"port {port} of {self.node!r} (toward {self.toward!r}) down"
        )


@dataclass(frozen=True)
class FlowModBlackhole(FailureSpec):
    """The switch accepts a FlowMod but never applies it (§2).

    Arms the switch to silently skip its next data-plane install, then
    sends a fresh forwarding rule through the controller.  The rule
    exists in the control plane and in Monocle's expected table but
    never in the data plane, so probing raises a ``missing`` alarm (and
    under dynamic monitoring the update is never acknowledged).
    """

    node: Hashable = None
    dst_offset: int = 0

    kind = "flowmod_blackhole"

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        ports = deployment.neighbor_ports(self.node)
        if not ports:
            raise FailureSpecError(f"{self.node!r} has no switch-facing port")
        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=BLACKHOLE_DST_BASE + self.dst_offset),
            priority=150,
            actions=output(ports[0]),
            # A distinct cookie lets the metrics layer attribute the
            # eventual "missing" alarm to this injection (plain churn
            # FlowMods all carry the default cookie 0).
            cookie=next_xid(),
        )
        # Target this FlowMod's xid specifically: a count-based
        # blackhole would race with concurrent churn FlowMods already
        # in flight to the same switch.
        deployment.switch(self.node).blackhole_flowmod(mod.xid)
        deployment.controller.send_flowmod(
            self.node, mod, confirm=deployment.confirm_mode
        )
        # The expected-table rule inherits the FlowMod's cookie.
        record.nodes = {self.node}
        record.cookies = {mod.cookie}
        record.description = (
            f"blackholed FlowMod {mod.match!r} on {self.node!r}"
        )


@dataclass(frozen=True)
class ChannelDegradation(FailureSpec):
    """Degrade one switch's control channel (chaos, not a fault).

    Overlays seed-deterministic loss/delay/jitter/duplication/reorder
    on the node's control channel for ``duration`` seconds (forever
    when ``None``).  Probe sends, probe observations, and FlowMods all
    traverse that channel, so every control interaction of the switch
    is exposed.  Being chaos, the injection never *explains* an alarm:
    a ``missing`` alarm caused by a lost probe is a false alarm the
    monitor's hysteresis must suppress.
    """

    node: Hashable = None
    duration: float | None = None
    loss: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0
    direction: str = "both"

    kind = "channel_degradation"
    chaos = True

    def conditions(self) -> ChannelConditions:
        return ChannelConditions(
            loss=self.loss,
            delay=self.delay,
            jitter=self.jitter,
            duplicate=self.duplicate,
            reorder=self.reorder,
            reorder_window=self.reorder_window,
        )

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        if self.node not in deployment.network.channels:
            raise FailureSpecError(
                f"no control channel for {self.node!r}"
            )
        conditions = self.conditions()
        if not conditions.active:
            raise FailureSpecError(
                f"degradation of {self.node!r} perturbs nothing "
                "(all knobs zero)"
            )
        conditioner = deployment.network.conditioner(self.node)
        token = conditioner.apply(conditions, self.direction)
        if self.duration is not None:
            deployment.sim.schedule(
                self.duration, lambda: conditioner.remove(token)
            )
        record.nodes = {self.node}
        record.chaos = True
        window = (
            f"for {self.duration}s"
            if self.duration is not None
            else "permanently"
        )
        record.description = (
            f"degrade channel of {self.node!r} ({self.direction}) "
            f"{window}: {conditions}"
        )


@dataclass(frozen=True)
class ControlPlaneFlap(FailureSpec):
    """The control channel goes completely dark for ``duration`` secs.

    Implemented as a 100%-loss overlay in both directions: probes,
    probe observations and FlowMods all vanish while the flap lasts,
    then the channel heals.  The monitor must ride it out without
    false alarms (quarantine / suppression) — another chaos injection
    that explains nothing.
    """

    node: Hashable = None
    duration: float = 0.1

    kind = "control_flap"
    chaos = True

    def inject(
        self,
        deployment: FleetDeployment,
        record: Injection,
        rng: DeterministicRandom | None = None,
    ) -> None:
        if self.node not in deployment.network.channels:
            raise FailureSpecError(
                f"no control channel for {self.node!r}"
            )
        if self.duration <= 0.0:
            raise FailureSpecError(
                f"flap of {self.node!r} needs a positive duration"
            )
        conditioner = deployment.network.conditioner(self.node)
        token = conditioner.apply(ChannelConditions(loss=1.0), "both")
        deployment.sim.schedule(
            self.duration, lambda: conditioner.remove(token)
        )
        record.nodes = {self.node}
        record.chaos = True
        record.description = (
            f"control channel of {self.node!r} dark for {self.duration}s"
        )


def inject_now(
    deployment: FleetDeployment,
    spec: FailureSpec,
    record: Injection,
    *,
    time: float | None = None,
    rng: DeterministicRandom | None = None,
) -> None:
    """Apply ``spec`` to the deployment at the current sim time.

    The fire-time body shared by :func:`schedule_failures` and the
    sharded-fleet worker (which applies cut-crossing specs announced by
    a peer shard on envelope delivery).  ``time`` overrides the
    recorded injection time — an envelope receiver stamps the
    *announcer's* fire time so detection latencies stay honest even
    though delivery lands a barrier window later.  A
    :class:`FailureSpecError` is recorded, never raised.
    """
    record.time = deployment.sim.now if time is None else time
    try:
        spec.inject(deployment, record, rng)
    except FailureSpecError as exc:
        record.error = str(exc)
        record.nodes = set()
        record.cookies = set()
        record.description = f"injection failed: {exc}"
    if deployment.obs.enabled:
        # One trace event per armed failure, stamped at the
        # injection's exact sim time: trace-only detection
        # replay (repro.obs.analyze) keys off this record.
        deployment.obs.emit(
            "failure.injected",
            kind=record.kind,
            nodes=sorted(repr(n) for n in record.nodes),
            cookies=sorted(record.cookies),
            broad=record.broad,
            chaos=record.chaos,
            description=record.description,
            error=record.error,
        )


def schedule_failures(
    deployment: FleetDeployment,
    specs: "tuple[FailureSpec, ...] | list[FailureSpec]",
) -> list[Injection]:
    """Arm every spec on the deployment's sim clock.

    Victim selection happens at fire time (production rules must exist
    by then); the returned records are filled in place as specs fire.
    A spec that cannot be injected (no victim rule, no spare port)
    records its :class:`FailureSpecError` on ``Injection.error``
    instead of crashing the simulation; such an injection can never be
    detected, so the scenario reports it as a failure.
    """
    injections: list[Injection] = []
    for index, spec in enumerate(specs):
        record = Injection(kind=spec.kind, time=spec.at, chaos=spec.chaos)
        injections.append(record)
        deployment.sim.at(
            spec.at,
            lambda spec=spec, record=record, index=index: inject_now(
                deployment,
                spec,
                record,
                rng=failure_rng(deployment, index),
            ),
        )
    return injections
