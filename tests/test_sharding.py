"""Tests for the sharded multi-process fleet runtime.

Three layers:

* unit — shard planning (round_robin/locality, cut edges, clamping)
  and the coordinator-side fingerprint-gossip directory;
* mechanism — probe-cache export/import round-trips with the
  order-sensitive rule-signature guard;
* end-to-end — the determinism pin (a partitionable scenario produces
  a byte-identical alarm timeline at ``workers=4`` and ``workers=1``)
  and the cut-latency bound (a cross-shard failure is detected within
  one barrier quantum of the in-process run).
"""

from dataclasses import replace

import networkx as nx
import pytest

from repro.core.probegen import ProbeGenContext, ProbeGenerator
from repro.fleet.failures import LinkFailure, RuleDrop
from repro.fleet.runner import ScenarioError, ScenarioSpec, run_scenario
from repro.fleet.sharding import (
    GossipDirectory,
    plan_shards,
)
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.topology.generators import islands, linear


class TestShardPlan:
    def test_locality_on_islands_cuts_nothing(self):
        graph = islands(16, island=4)
        plan = plan_shards(graph, 4, "locality")
        assert plan.workers == 4
        assert plan.is_pure
        assert [len(shard) for shard in plan.shards] == [4, 4, 4, 4]
        # Each shard is one island: connected in the original graph.
        for shard in plan.shards:
            assert nx.is_connected(graph.subgraph(shard))

    def test_locality_on_linear_cuts_one_link_per_boundary(self):
        plan = plan_shards(linear(8), 2, "locality")
        assert len(plan.cut_edges) == 1
        assert not plan.is_pure

    def test_round_robin_covers_all_nodes_balanced(self):
        graph = linear(10)
        plan = plan_shards(graph, 3, "round_robin")
        seen = [node for shard in plan.shards for node in shard]
        assert sorted(seen, key=repr) == sorted(graph.nodes, key=repr)
        sizes = sorted(len(shard) for shard in plan.shards)
        assert sizes == [3, 3, 4]

    def test_owner_is_consistent_with_shards(self):
        plan = plan_shards(linear(6), 2, "locality")
        for index, shard in enumerate(plan.shards):
            for node in shard:
                assert plan.owner(node) == index

    def test_workers_clamped_to_node_count(self):
        plan = plan_shards(linear(3), 8, "round_robin")
        assert plan.workers == 3

    def test_plans_are_deterministic(self):
        for policy in ("round_robin", "locality"):
            first = plan_shards(islands(16, island=4), 3, policy)
            second = plan_shards(islands(16, island=4), 3, policy)
            assert first.shards == second.shards
            assert first.cut_edges == second.cut_edges


class TestGossipDirectory:
    DIGEST_A = (("gen", 1), "aa" * 8)
    DIGEST_B = (("gen", 1), "bb" * 8)
    PAYLOAD = ((("sig",),), [("entry",)])

    def test_single_holder_is_never_asked_to_export(self):
        directory = GossipDirectory()
        directory.publish(0, {self.DIGEST_A: 5})
        directory.publish(1, {self.DIGEST_B: 5})
        assert directory.export_requests() == {}

    def test_two_holders_trigger_one_export_request(self):
        directory = GossipDirectory()
        directory.publish(0, {self.DIGEST_A: 5})
        directory.publish(1, {self.DIGEST_A: 2})
        requests = directory.export_requests()
        # The richest holder (shard 0) is asked, exactly once.
        assert requests == {0: [self.DIGEST_A]}
        # Not re-requested while the first request is outstanding.
        assert directory.export_requests() == {}

    def test_tie_breaks_toward_the_lowest_shard(self):
        directory = GossipDirectory()
        directory.publish(2, {self.DIGEST_A: 3})
        directory.publish(1, {self.DIGEST_A: 3})
        assert directory.export_requests() == {1: [self.DIGEST_A]}

    def test_payload_routes_to_other_holders_only(self):
        directory = GossipDirectory()
        for shard in (0, 1, 2):
            directory.publish(shard, {self.DIGEST_A: shard + 1})
        directory.export_requests()  # asks shard 2 (richest)
        directory.receive_exports(2, {self.DIGEST_A: self.PAYLOAD})
        assert directory.imports_for(2) == {}
        assert directory.imports_for(0) == {self.DIGEST_A: self.PAYLOAD}
        assert directory.imports_for(1) == {self.DIGEST_A: self.PAYLOAD}
        # Delivery is once per shard, not once per window.
        assert directory.imports_for(0) == {}
        assert directory.entries_shipped == 1

    def test_late_holder_of_delivered_digest_still_gets_payload(self):
        directory = GossipDirectory()
        directory.publish(0, {self.DIGEST_A: 4})
        directory.publish(1, {self.DIGEST_A: 1})
        directory.export_requests()
        directory.receive_exports(0, {self.DIGEST_A: self.PAYLOAD})
        assert directory.imports_for(1) == {self.DIGEST_A: self.PAYLOAD}
        directory.publish(3, {self.DIGEST_A: 0})
        assert directory.imports_for(3) == {self.DIGEST_A: self.PAYLOAD}


CATCH = Match.build(dl_vlan=0xF03)


def _context(rules):
    context = ProbeGenContext(ProbeGenerator(catch_match=CATCH))
    for rule in rules:
        context.add_rule(rule)
    return context


def _rule(priority, dst):
    return Rule(
        priority=priority,
        match=Match.build(nw_dst=dst),
        actions=output(1),
    )


class TestCacheShipping:
    def test_export_import_roundtrip_serves_cache_hits(self):
        rules = [_rule(10, 0x0A000001), _rule(20, 0x0A000002)]
        exporter = _context(rules)
        for rule in exporter.table:
            assert exporter.probe_for(rule).ok
        entries = exporter.export_cache()
        assert len(entries) == len(rules)

        importer = _context(rules)
        assert importer.import_cache(entries) == len(rules)
        solves = importer.stats.probes_generated
        for rule in importer.table:
            assert importer.probe_for(rule).ok
        # Every probe was served from the shipped cache.
        assert importer.stats.probes_generated == solves
        assert importer.stats.cache_hits >= len(rules)

    def test_import_skips_rules_the_table_does_not_hold(self):
        exporter = _context([_rule(10, 0x0A000001), _rule(20, 0x0A000002)])
        for rule in exporter.table:
            exporter.probe_for(rule)
        importer = _context([_rule(10, 0x0A000001)])
        assert importer.import_cache(exporter.export_cache()) == 1


def _pure_spec(**overrides):
    """Two islands of 8 switches — partitionable along island lines."""
    spec = ScenarioSpec(
        topology="islands",
        size=16,
        duration=1.0,
        seed=7,
        rules_per_switch=6,
        probe_rate=200.0,
        failures=(
            RuleDrop(at=0.3, node="isl00_sw1", rule_index=2),
            RuleDrop(at=0.4, node="isl01_sw2", rule_index=1),
        ),
    )
    return replace(spec, **overrides) if overrides else spec


class TestShardedScenarios:
    def test_determinism_pin_workers4_matches_workers1(self):
        """The headline invariant: on a partitionable scenario the
        sharded runtime's alarm timeline is byte-identical to the
        in-process run, whatever the worker count."""
        baseline = run_scenario(_pure_spec())
        sharded = run_scenario(_pure_spec(workers=4))
        b, s = baseline.metrics, sharded.metrics
        assert s.alarm_timeline == b.alarm_timeline
        assert s.probes_sent == b.probes_sent
        assert s.probes_confirmed == b.probes_confirmed
        assert s.probes_routed == b.probes_routed
        assert s.false_alarms == b.false_alarms
        assert [d.detected_at for d in s.detections] == [
            d.detected_at for d in b.detections
        ]
        # Four workers split each 8-switch island in two, so this run
        # exercises the barrier path — and the timeline STILL matches:
        # single-node failures have one owner, probe transit never
        # crosses the process boundary, and barriers only delay
        # envelope delivery (of which there is none here).
        assert s.workers == 4 and s.cut_links > 0 and s.barriers > 0

    def test_pipelined_window_survives_sharding(self):
        """PR 10 pin: a 4-deep probe window changes the timeline (the
        cycle speeds up) but sharding must not change it further —
        ``workers=2, probe_window=4`` is byte-identical to
        ``workers=1, probe_window=4``."""
        baseline = run_scenario(_pure_spec(probe_window=4))
        sharded = run_scenario(_pure_spec(probe_window=4, workers=2))
        b, s = baseline.metrics, sharded.metrics
        assert s.alarm_timeline == b.alarm_timeline
        assert s.probes_sent == b.probes_sent
        assert s.probes_confirmed == b.probes_confirmed
        assert not s.false_alarms and not b.false_alarms
        # The window actually engaged on both sides of the comparison.
        assert b.window_peak == s.window_peak == 4

    def test_workers2_pure_partition_is_barrier_free(self):
        baseline = run_scenario(_pure_spec())
        sharded = run_scenario(_pure_spec(workers=2))
        s = sharded.metrics
        assert s.alarm_timeline == baseline.metrics.alarm_timeline
        # Two workers on two islands: the cut is empty, so each shard
        # ran start-to-finish in a single window.
        assert s.cut_links == 0 and s.barriers == 0

    def test_cross_shard_failure_detected_within_one_quantum(self):
        quantum = 0.15
        spec = ScenarioSpec(
            topology="linear",
            size=6,
            duration=1.2,
            seed=11,
            rules_per_switch=6,
            probe_rate=200.0,
            failures=(LinkFailure(at=0.4, u="sw2", v="sw3"),),
        )
        baseline = run_scenario(spec)
        sharded = run_scenario(
            replace(spec, workers=2, barrier_quantum=quantum)
        )
        assert sharded.metrics.cut_links >= 1
        assert sharded.metrics.barriers >= 1
        (base_det,) = baseline.metrics.detections
        (shard_det,) = sharded.metrics.detections
        assert base_det.detected and shard_det.detected
        # The merged injection record spans the cut: both endpoints'
        # nodes and cookies were unioned by the coordinator.
        assert {"sw2", "sw3"} <= set(shard_det.injection.nodes)
        # Envelopes land one barrier late at worst.
        assert abs(shard_det.latency - base_det.latency) <= quantum

    def test_gossip_digests_flow_between_shards(self):
        result = run_scenario(_pure_spec(workers=2, barrier_quantum=0.25))
        # Pure partitions skip gossip entirely (no barriers) — force a
        # cut scenario to see the advertisement traffic.
        assert result.metrics.gossip_digests_published == 0
        cut = run_scenario(
            ScenarioSpec(
                topology="linear",
                size=6,
                duration=0.8,
                seed=3,
                rules_per_switch=4,
                probe_rate=100.0,
                workers=2,
                barrier_quantum=0.2,
            )
        )
        assert cut.metrics.gossip_digests_published > 0

    def test_workers1_takes_the_in_process_path(self):
        result = run_scenario(_pure_spec(workers=1))
        assert result.deployment is not None
        assert result.metrics.workers == 1

    def test_sharded_report_renders(self):
        from repro.fleet.report import format_fleet_report

        result = run_scenario(_pure_spec(workers=2))
        report = format_fleet_report(result.metrics)
        assert "sharding: 2 workers" in report
        assert "locality policy" in report

    def test_sharded_json_export_roundtrips(self):
        import json

        result = run_scenario(_pure_spec(workers=2))
        payload = json.loads(json.dumps(result.metrics.to_json()))
        assert payload["aggregates"]["workers"] == 2
        assert payload["aggregates"]["barriers"] == 0

    def test_workers_reject_metrics_out_and_max_events(self):
        with pytest.raises(ScenarioError):
            _pure_spec(workers=2, metrics_out="/tmp/m.prom").validate()
        with pytest.raises(ScenarioError):
            _pure_spec(workers=2, max_events=1000).validate()
