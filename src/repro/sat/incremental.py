"""Persistent SAT context: assumptions, clause groups, retraction.

The probe-generation hot path re-solves closely related formulas every
time a switch's flow table churns.  :class:`IncrementalSolver` wraps the
CDCL core (:class:`~repro.sat.solver.SatSolver`) with the three
facilities that make those solves share work:

* **assumption-based solving** — per-call literals that vanish after the
  call, leaving learned clauses behind (the core supports this natively;
  the wrapper only bookkeeps);
* **clause groups** — clauses tagged with a fresh *selector* variable
  ``s`` are stored as ``(c | -s)`` and only bind while ``s`` is assumed,
  so a caller activates a group by passing its selector as an
  assumption;
* **retraction** — retiring a group permanently asserts ``-s``, which
  satisfies (and thereby disables) every clause of the group, including
  any lemmas learned from them (they all carry ``-s``).  Selector
  variables are never reused.

Retired groups leave dead-but-satisfied clauses in the database; when
their number exceeds both an absolute floor and a multiple of the live
clause count, the wrapper rebuilds the core solver from the live clause
store (**compaction**), dropping dead clauses and learned lemmas.

The wrapper is formula-agnostic; probe-specific encoding lives in
:mod:`repro.core.constraints`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sat.cnf import CNF, Lit
from repro.sat.solver import SatResult, SatSolver


@dataclass
class IncrementalStats:
    """Cumulative counters over the context's lifetime."""

    solves: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    groups_created: int = 0
    groups_retired: int = 0
    compactions: int = 0


class IncrementalSolver:
    """A reusable SAT solver with clause groups and retraction.

    Args:
        num_vars: variables pre-allocated at construction (callers use
            ``1..num_vars`` directly; :meth:`new_var` allocates above).
        compaction_floor: never compact below this many dead clauses.
        compaction_ratio: compact when dead clauses exceed this multiple
            of the live clause count.
    """

    def __init__(
        self,
        num_vars: int = 0,
        compaction_floor: int = 2000,
        compaction_ratio: float = 1.0,
    ) -> None:
        self._num_vars = num_vars
        self.compaction_floor = compaction_floor
        self.compaction_ratio = compaction_ratio
        self._solver = SatSolver(CNF(num_vars), check_models=False)
        #: Permanent clauses (group None) for compaction rebuilds.
        self._permanent: list[list[Lit]] = []
        #: Live groups: selector -> clauses as stored (selector included).
        self._groups: dict[int, list[list[Lit]]] = {}
        #: Variables allocated on behalf of a live group (Tseitin
        #: auxiliaries of its transient clauses).
        self._group_vars: dict[int, list[int]] = {}
        #: Recycled variables.  A retired group's clauses — and every
        #: lemma learned from them, which necessarily carries the
        #: group's negated selector — are permanently satisfied, so the
        #: group's auxiliary variables end up mentioned only by
        #: satisfied clauses: they are unconstrained and safe to hand
        #: out again.  Recycling keeps the variable space (and with it
        #: per-solve assignment/propagation cost) bounded by the *live*
        #: formula instead of growing with every probe ever solved.
        self._free_vars: list[int] = []
        self._dead_clauses = 0
        self.stats = IncrementalStats()

    # ----- variables ----------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Live clauses (permanent + grouped), excluding learned lemmas."""
        return len(self._permanent) + sum(
            len(clauses) for clauses in self._groups.values()
        )

    @property
    def num_dead_clauses(self) -> int:
        """Clauses still in the core solver but disabled by retirement."""
        return self._dead_clauses

    def new_var(self, group: int | None = None) -> int:
        """Allocate an unconstrained variable.

        With ``group`` set, the variable is tied to that clause group
        and returns to the recycling pool when the group is retired.
        Recycled variables are preferred over growing the space.
        """
        if self._free_vars:
            var = self._free_vars.pop()
        else:
            self._num_vars += 1
            self._solver.ensure_num_vars(self._num_vars)
            var = self._num_vars
        if group is not None:
            self._group_vars[group].append(var)
        return var

    def new_vars(self, count: int, group: int | None = None) -> list[int]:
        """Allocate ``count`` unconstrained variables."""
        return [self.new_var(group) for _ in range(count)]

    # ----- clauses and groups -------------------------------------------

    def add_clause(
        self, literals: Iterable[Lit], group: int | None = None
    ) -> None:
        """Add a clause, optionally tagged with a group selector.

        Grouped clauses only bind while the selector is passed as an
        assumption to :meth:`solve`; permanent clauses always bind.
        """
        lits = list(literals)
        if group is None:
            self._permanent.append(lits)
            self._solver.add_clause(lits)
            return
        clauses = self._groups.get(group)
        if clauses is None:
            raise ValueError(f"unknown or retired group {group}")
        stored = lits + [-group]
        clauses.append(stored)
        self._solver.add_clause(stored)

    def add_unit(self, lit: Lit, group: int | None = None) -> None:
        """Add a unit clause (grouped units become binary selectors)."""
        self.add_clause((lit,), group=group)

    def new_group(self) -> int:
        """Create a clause group; returns its selector variable.

        Activate the group by passing the selector as an assumption.
        Selectors never come from the recycling pool: retirement pins
        them false forever, so they are constrained, not free.
        """
        self._num_vars += 1
        self._solver.ensure_num_vars(self._num_vars)
        selector = self._num_vars
        self._groups[selector] = []
        self._group_vars[selector] = []
        self.stats.groups_created += 1
        return selector

    def retire_group(self, selector: int) -> None:
        """Permanently retract a group's clauses.

        Asserts ``-selector`` so every clause of the group (and every
        lemma learned from them) is satisfied and can never bind again;
        the group's auxiliary variables join the recycling pool.
        """
        clauses = self._groups.pop(selector, None)
        if clauses is None:
            return  # already retired; idempotent
        self._solver.add_clause((-selector,))
        self._free_vars.extend(self._group_vars.pop(selector, ()))
        self._dead_clauses += len(clauses)
        self.stats.groups_retired += 1
        self._maybe_compact()

    # ----- solving --------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        max_conflicts: int | None = None,
    ) -> SatResult:
        """Solve under per-call assumptions (group selectors included)."""
        result = self._solver.solve(
            assumptions=assumptions, max_conflicts=max_conflicts
        )
        self.stats.solves += 1
        self.stats.conflicts += result.conflicts
        self.stats.propagations += result.propagations
        self.stats.learned_clauses += result.learned_clauses
        return result

    # ----- compaction -----------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._dead_clauses < self.compaction_floor:
            return
        if self._dead_clauses < self.compaction_ratio * max(
            1, self.num_clauses
        ):
            return
        self.compact()

    def compact(self) -> None:
        """Rebuild the core solver from live clauses only.

        Drops dead (retired) clauses and all learned lemmas; variable
        numbering is preserved so cached literals stay valid.
        """
        solver = SatSolver(CNF(self._num_vars), check_models=False)
        for clause in self._permanent:
            solver.add_clause(clause)
        for clauses in self._groups.values():
            for clause in clauses:
                solver.add_clause(clause)
        self._solver = solver
        self._dead_clauses = 0
        self.stats.compactions += 1

    def __repr__(self) -> str:
        return (
            f"IncrementalSolver(vars={self._num_vars}, "
            f"live={self.num_clauses}, dead={self._dead_clauses}, "
            f"groups={len(self._groups)})"
        )
