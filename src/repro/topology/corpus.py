"""Synthetic topology corpora for the Figure 9 experiment.

The paper evaluates catching-rule overhead on the 261 Internet Topology
Zoo graphs and 10 Rocketfuel ISP maps.  Those datasets are not shipped
here, so we synthesize corpora with matched structural statistics — the
quantities Figure 9 actually depends on:

* **size distribution**: Topology Zoo graphs are mostly small (median
  ~21 nodes) with a heavy tail up to 754; Rocketfuel router-level maps
  run from hundreds of nodes to 11.8k.
* **sparsity / degree structure**: ISP topologies are near-planar
  meshes (average degree ~2-3) with occasional hubs; their chromatic
  numbers stay small (the paper finds <= 9 colors suffice for all of
  them), while squared-graph chromatic numbers track the max degree
  (up to 59 on the zoo, 258 on Rocketfuel).

Zoo-like graphs: a random spanning tree over waypoints plus a few
shortcut edges (ring/mesh flavour).  Rocketfuel-like graphs: preferential
attachment (hub-and-spoke ISP flavour) with m in {1, 2}.
"""

from __future__ import annotations

import functools

import networkx as nx

from repro.sim.random import DeterministicRandom

#: Size profile echoing the Topology Zoo (most graphs small, tail to 754).
_ZOO_SIZE_BUCKETS = (
    (4, 15, 90),  # (min_nodes, max_nodes, count)
    (16, 40, 105),
    (41, 90, 45),
    (91, 200, 15),
    (201, 754, 6),
)

#: Rocketfuel router-level map sizes (approximate, ascending).
_ROCKETFUEL_SIZES = (121, 315, 604, 960, 2180, 2914, 3447, 4750, 7018, 11800)


def _tree_plus_shortcuts(
    n: int, extra_edge_fraction: float, rng: DeterministicRandom
) -> nx.Graph:
    """A random tree over ``n`` nodes plus a fraction of shortcut edges."""
    graph = nx.Graph()
    graph.add_node(0)
    for node in range(1, n):
        # Attach to a uniformly random existing node: random recursive
        # tree, whose degree distribution is close to zoo topologies.
        parent = rng.randint(0, node - 1)
        graph.add_edge(node, parent)
    extra = int(extra_edge_fraction * n)
    attempts = 0
    while extra > 0 and attempts < 20 * n:
        attempts += 1
        u = rng.randint(0, n - 1)
        v = rng.randint(0, n - 1)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            extra -= 1
    return graph


def _preferential_attachment(
    n: int, m: int, rng: DeterministicRandom
) -> nx.Graph:
    """Barabasi-Albert-style growth with seeded randomness."""
    graph = nx.Graph()
    targets = list(range(m + 1))
    graph.add_nodes_from(targets)
    for u, v in zip(targets, targets[1:]):
        graph.add_edge(u, v)
    repeated: list[int] = []
    for node in targets:
        repeated.extend([node] * graph.degree[node])
    for node in range(m + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(repeated[rng.randint(0, len(repeated) - 1)])
        for target in chosen:
            graph.add_edge(node, target)
            repeated.extend((node, target))
    return graph


@functools.lru_cache(maxsize=None)
def topology_zoo_like_corpus(seed: int = 2015) -> list[nx.Graph]:
    """261 synthetic graphs with Topology-Zoo-like structure.

    Each graph's ``graph['name']`` identifies it (``zoo000`` ...).

    The corpus for a given seed is generated once per process and
    cached (examples and benchmarks index into it repeatedly); treat
    the returned list and its graphs as read-only.
    """
    rng = DeterministicRandom(seed)
    graphs: list[nx.Graph] = []
    index = 0
    for min_nodes, max_nodes, count in _ZOO_SIZE_BUCKETS:
        for _ in range(count):
            n = rng.randint(min_nodes, max_nodes)
            # Sparser shortcuts on big graphs, denser on small rings.
            fraction = rng.uniform(0.05, 0.35)
            graph = _tree_plus_shortcuts(n, fraction, rng.fork(index))
            graph.graph["name"] = f"zoo{index:03d}"
            graphs.append(graph)
            index += 1
    return graphs


@functools.lru_cache(maxsize=None)
def rocketfuel_like_corpus(seed: int = 2002) -> list[nx.Graph]:
    """10 synthetic ISP-scale graphs standing in for Rocketfuel.

    Cached per seed like :func:`topology_zoo_like_corpus`; treat the
    result as read-only.
    """
    rng = DeterministicRandom(seed)
    graphs: list[nx.Graph] = []
    for i, n in enumerate(_ROCKETFUEL_SIZES):
        m = 1 if i % 3 == 0 else 2
        graph = _preferential_attachment(n, m, rng.fork(i))
        graph.graph["name"] = f"rocketfuel{i}"
        graphs.append(graph)
    return graphs
