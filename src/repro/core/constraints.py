"""Compiling the paper's probe constraints (Table 1) to CNF.

The probe packet ``P`` is a vector of abstract header bits; SAT variable
``i+1`` holds bit ``i``.  Auxiliary (Tseitin) variables are allocated on
top.  Three constraints are compiled for a probed rule:

* **Hit** — ``Matches(P, Rprobed)`` as unit clauses, and
  ``not Matches(P, R)`` for each higher-priority overlapping rule as one
  clause of negated bit literals.
* **Distinguish** — the priority-ordered if-then-else chain over
  lower-priority overlapping rules.  Branch guards are
  ``Matches(P, R_k)`` (Tseitin AND), branch values are
  ``DiffOutcome(P, Rprobed, R_k)``.  Two encodings are provided:
  the *asserted chain* (linear; exploits that Monocle always asserts the
  chain true) and the appendix's *Velev* quadratic ITE encoding, kept
  for the encoding ablation.
* **Collect** — ``Matches(P, Rcatch)`` as unit clauses.

``DiffOutcome`` is ``DiffPorts | DiffRewrite`` (§3.2–3.4):
``DiffPorts`` is decided during compilation (pure set logic on
forwarding sets, with the multicast-vs-ECMP probe-counting exception);
``DiffRewrite`` becomes per-bit terms per Table 4, OR-ed across the
common ports for multicast pairs and AND-ed when ECMP is involved.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.openflow.actions import OutcomeKind
from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sat.cnf import CNF, Lit
from repro.sat.encode import (
    assert_ite_chain,
    clause_and,
    clause_or,
    constant,
    ite_chain,
)
from repro.sat.incremental import IncrementalSolver


class DistinguishEncoding(str, enum.Enum):
    """Which CNF encoding to use for the Distinguish ITE chain."""

    ASSERTED_CHAIN = "asserted_chain"
    VELEV_ITE = "velev_ite"


class SolverSink:
    """Adapts an :class:`~repro.sat.incremental.IncrementalSolver` to
    the ``new_var``/``add_clause``/``add_unit`` surface the encode
    helpers and :class:`ConstraintCompiler` expect.

    With ``group`` set, every emitted clause lands in that clause group
    (transient, retractable); with ``group=None`` clauses are permanent.
    """

    __slots__ = ("solver", "group")

    def __init__(
        self, solver: IncrementalSolver, group: int | None = None
    ) -> None:
        self.solver = solver
        self.group = group

    def new_var(self) -> int:
        # Group-tied auxiliaries return to the solver's recycling pool
        # when the group is retired.
        return self.solver.new_var(self.group)

    def add_clause(self, literals) -> None:
        self.solver.add_clause(literals, group=self.group)

    def add_unit(self, lit: Lit) -> None:
        self.solver.add_unit(lit, group=self.group)

    @property
    def num_vars(self) -> int:
        return self.solver.num_vars

    @property
    def num_clauses(self) -> int:
        return self.solver.num_clauses


class ConstraintCompiler:
    """Compiles Table 1 constraints for one probed rule into a CNF.

    Variables ``1 .. HEADER_BITS`` are the abstract header bits in layout
    order (variable ``i`` is bit ``i-1``); everything above is Tseitin.

    Args:
        encoding: Distinguish-chain encoding variant.
        sink: formula destination; defaults to a fresh :class:`CNF`.
            Passing a :class:`SolverSink` retargets every emitted clause
            at a persistent incremental solver instead.
    """

    def __init__(
        self,
        encoding: DistinguishEncoding = DistinguishEncoding.ASSERTED_CHAIN,
        sink: "CNF | SolverSink | None" = None,
    ) -> None:
        self.encoding = encoding
        self.cnf = sink if sink is not None else CNF(HEADER.total_bits)

    # ----- bit-level helpers ---------------------------------------------

    @staticmethod
    def bit_var(bit_index: int) -> int:
        """SAT variable holding abstract header bit ``bit_index``."""
        return bit_index + 1

    def match_literals(self, match: Match) -> list[Lit]:
        """Literals whose conjunction is ``Matches(P, match)`` (Table 3)."""
        literals = []
        for bit_index, required in match.bit_constraints():
            var = self.bit_var(bit_index)
            literals.append(var if required else -var)
        return literals

    def assert_matches(self, match: Match) -> None:
        """Add ``Matches(P, match)`` as unit clauses."""
        for lit in self.match_literals(match):
            self.cnf.add_unit(lit)

    def assert_not_matches(self, match: Match) -> None:
        """Add ``not Matches(P, match)`` as a single clause.

        An all-wildcard match yields the empty clause (UNSAT) — correctly
        so: no packet can avoid matching a wildcard rule.
        """
        self.cnf.add_clause([-lit for lit in self.match_literals(match)])

    def matches_lit(self, match: Match) -> Lit:
        """Fresh literal equivalent to ``Matches(P, match)``."""
        return clause_and(self.cnf, self.match_literals(match))

    def assert_value_in(self, name: FieldName, values: Sequence[int]) -> None:
        """Constrain a field to a small domain (e.g. valid in_ports).

        Encoded as a Tseitin OR of per-value conjunctions.
        """
        field = HEADER.field(name)
        options = []
        for value in values:
            literals = []
            for bit_in_field in range(field.width):
                bit_mask = 1 << (field.width - 1 - bit_in_field)
                var = self.bit_var(field.offset + bit_in_field)
                literals.append(var if value & bit_mask else -var)
            options.append(clause_and(self.cnf, literals))
        self.cnf.add_clause(options)

    # ----- DiffOutcome ------------------------------------------------------

    def diff_outcome(self, probed: Rule, other: Rule | None) -> bool | Lit:
        """``DiffOutcome(P, probed, other)``: bool if decidable now, else Lit.

        ``other=None`` denotes the table-miss pseudo-rule (a drop under
        the default miss policy); callers modelling a controller-bound
        miss should pass an explicit rule.
        """
        if other is None:
            # Table miss drops: distinguishable iff probed isn't a drop.
            return probed.outcome_kind() != OutcomeKind.DROP

        ports_differ = self._diff_ports(probed, other)
        if ports_differ:
            return True
        return self._diff_rewrite(probed, other)

    @staticmethod
    def _diff_ports(rule1: Rule, rule2: Rule) -> bool:
        """§3.4 DiffPorts over forwarding sets (drop/unicast are 0/1-sets)."""
        f1 = rule1.forwarding_set()
        f2 = rule2.forwarding_set()
        ecmp1 = rule1.actions.is_ecmp
        ecmp2 = rule2.actions.is_ecmp

        if not ecmp1 and not ecmp2:
            return f1 != f2
        if ecmp1 and ecmp2:
            return not (f1 & f2)
        # One multicast-like (deterministic) and one ECMP: location
        # distinguishes iff the deterministic rule can emit outside the
        # ECMP set; counting distinguishes when it emits != 1 packets.
        multi = f1 if not ecmp1 else f2
        ecmp_set = f2 if not ecmp1 else f1
        return bool(multi - ecmp_set) or len(multi) != 1

    def _diff_rewrite(self, rule1: Rule, rule2: Rule) -> bool | Lit:
        """§3.4 DiffRewrite restricted to the common forwarding ports."""
        f1 = rule1.forwarding_set()
        f2 = rule2.forwarding_set()
        common = f1 & f2
        if not common:
            # Drop rules land here (empty sets): rewrites are meaningless
            # (paper footnote 2), and DiffPorts already said "equal".
            return False
        any_ecmp = rule1.actions.is_ecmp or rule2.actions.is_ecmp

        per_port: list[bool | list[Lit]] = []
        for port in sorted(common):
            per_port.append(
                self._per_port_rewrite_terms(
                    rule1.actions.rewrites_on_port(port),
                    rule2.actions.rewrites_on_port(port),
                )
            )

        if not any_ecmp:
            # Both deterministic: EXISTS a common port with a difference.
            all_literals: list[Lit] = []
            for terms in per_port:
                if isinstance(terms, bool):
                    if terms:
                        return True
                    continue  # pragma: no cover - terms is never False
                all_literals.extend(terms)
            if not all_literals:
                return False
            return clause_or(self.cnf, all_literals)

        # ECMP involved: difference required on EVERY common port.
        port_lits: list[Lit] = []
        for terms in per_port:
            if isinstance(terms, bool):
                if terms:
                    continue
                return False  # pragma: no cover - terms is never False
            if not terms:
                return False
            port_lits.append(clause_or(self.cnf, terms))
        if not port_lits:
            return True  # every common port had a constant difference
        return clause_and(self.cnf, port_lits)

    def _per_port_rewrite_terms(
        self,
        rewrites1: dict[FieldName, int],
        rewrites2: dict[FieldName, int],
    ) -> bool | list[Lit]:
        """Table 4 bit terms for one port.

        Returns True when a constant difference exists (both rules pin
        the same bit to different values), otherwise the list of literals
        whose disjunction says "some bit is rewritten differently".
        """
        literals: list[Lit] = []
        for name in set(rewrites1) | set(rewrites2):
            field = HEADER.field(name)
            in1 = name in rewrites1
            in2 = name in rewrites2
            if in1 and in2:
                if rewrites1[name] != rewrites2[name]:
                    return True
                continue  # identical rewrites: no difference from this field
            fixed = rewrites1[name] if in1 else rewrites2[name]
            # One rule pins the field, the other passes P through: the
            # outcomes differ iff P disagrees with the pinned value on
            # some bit (rows */0, */1, 0/*, 1/* of Table 4).
            for bit_in_field in range(field.width):
                bit_mask = 1 << (field.width - 1 - bit_in_field)
                var = self.bit_var(field.offset + bit_in_field)
                literals.append(-var if fixed & bit_mask else var)
        return literals

    # ----- Distinguish ------------------------------------------------------

    def assert_distinguish(
        self,
        probed: Rule,
        lower_rules: Sequence[Rule],
        miss_rule: Rule | None = None,
    ) -> None:
        """Assert the Distinguish constraint.

        Args:
            probed: the rule being probed.
            lower_rules: overlapping rules with priority strictly below
                ``probed``, in any order (sorted internally).
            miss_rule: optional explicit table-miss pseudo-rule; None
                means miss-drops.
        """
        ordered = sorted(lower_rules, key=lambda r: -r.priority)
        guards_and_values: list[tuple[list[Lit], bool | Lit]] = []
        for rule in ordered:
            guards_and_values.append(
                (
                    self.match_literals(rule.match),
                    self.diff_outcome(probed, rule),
                )
            )
        else_value = self.diff_outcome(probed, miss_rule)

        if self.encoding is DistinguishEncoding.ASSERTED_CHAIN:
            self._assert_chain_direct(guards_and_values, else_value)
        else:
            self._assert_chain_velev(guards_and_values, else_value)

    def _assert_chain_direct(
        self,
        guards_and_values: list[tuple[list[Lit], bool | Lit]],
        else_value: bool | Lit,
    ) -> None:
        """Linear encoding of ``If(m1,d1, If(m2,d2, ... else)) = True``.

        Guards become Tseitin AND literals; the chain itself is the
        linear prefix-variable construction of
        :func:`~repro.sat.encode.assert_ite_chain` — 2 short clauses per
        branch instead of the prefix-repetition encoding whose clause
        mass grows quadratically with chain length (the difference is
        minutes vs seconds on 1000-rule Distinguish chains).
        """
        branches = [
            (clause_and(self.cnf, guard_literals), value)
            for guard_literals, value in guards_and_values
        ]
        assert_ite_chain(self.cnf, branches, else_value)

    def _assert_chain_velev(
        self,
        guards_and_values: list[tuple[list[Lit], bool | Lit]],
        else_value: bool | Lit,
    ) -> None:
        """Appendix B encoding: build the ITE chain with fresh variables
        via the quadratic Velev construction, then assert its output."""
        branches = []
        for guard_literals, value in guards_and_values:
            guard_lit = clause_and(self.cnf, guard_literals)
            value_lit = (
                constant(self.cnf, value) if isinstance(value, bool) else value
            )
            branches.append((guard_lit, value_lit))
        else_lit = (
            constant(self.cnf, else_value)
            if isinstance(else_value, bool)
            else else_value
        )
        result = ite_chain(self.cnf, branches, else_lit)
        self.cnf.add_unit(result)

    # ----- solution decoding ---------------------------------------------

    @staticmethod
    def decode_assignment(assignment: dict[int, bool]) -> dict[FieldName, int]:
        """Abstract header values from a satisfying assignment."""
        values: dict[FieldName, int] = {}
        for field in HEADER:
            value = 0
            for bit_in_field in range(field.width):
                value <<= 1
                var = field.offset + bit_in_field + 1
                if assignment.get(var, False):
                    value |= 1
            values[field.name] = value
        return values


class IncrementalProbeEncoder:
    """Constraint emission over a *persistent* per-switch solver.

    Where :class:`ConstraintCompiler` rebuilds every formula from
    scratch, this encoder keeps the reusable parts of the probe
    constraints alive inside an :class:`~repro.sat.incremental.
    IncrementalSolver` across probes and across table churn:

    * **match guards** — the Tseitin literal ``m <-> Matches(P, match)``
      for each match, cached by :class:`~repro.openflow.match.Match`
      value.  Guard definitions never constrain the header variables on
      their own, so they are emitted permanently and survive rule
      deletion (a re-added or re-used match costs nothing).
    * **DiffOutcome literals** — per action-list pair, same reasoning.
    * the **catching match** and the ``in_port`` domain restriction,
      asserted permanently at construction (they apply to every probe).

    The probed-rule-specific parts — Hit bits, negated higher-rule
    guards, and the Distinguish chain — go into one *persistent* clause
    group per rule (:meth:`assert_probe_group`); a solve activates it
    with a single selector assumption, and the group survives across
    probes until the rule's overlap context churns.  The incremental
    Distinguish always uses the linear asserted-chain construction (the
    Velev ablation only applies to the from-scratch compiler).
    """

    def __init__(
        self,
        solver: IncrementalSolver,
        catch_match: Match,
        valid_in_ports: "tuple[int, ...] | None" = None,
    ) -> None:
        if solver.num_vars < HEADER.total_bits:
            raise ValueError(
                "incremental solver must pre-allocate the header bits"
            )
        self.solver = solver
        self.compiler = ConstraintCompiler(sink=SolverSink(solver))
        self._guards: dict[Match, Lit] = {}
        #: DiffOutcome cache keyed by the (probed, other) action lists.
        #: ActionList hashes by value (its actions tuple), so rules with
        #: equal behaviour share one cached DiffOutcome literal.
        self._diffs: dict[tuple, "bool | Lit"] = {}
        self.compiler.assert_matches(catch_match)
        if valid_in_ports is not None:
            self.compiler.assert_value_in(FieldName.IN_PORT, valid_in_ports)

    def clone(self, solver: IncrementalSolver) -> "IncrementalProbeEncoder":
        """A copy of this encoder bound to ``solver``.

        ``solver`` must be a clone of this encoder's solver: the cached
        guard and DiffOutcome literals are carried over verbatim, and
        the permanent catch-match / in_port clauses already live in the
        cloned solver, so construction-time assertion is skipped.
        """
        dup = IncrementalProbeEncoder.__new__(IncrementalProbeEncoder)
        dup.solver = solver
        dup.compiler = ConstraintCompiler(sink=SolverSink(solver))
        dup._guards = dict(self._guards)
        dup._diffs = dict(self._diffs)
        return dup

    # ----- reusable pieces ------------------------------------------------

    def guard(self, match: Match) -> Lit:
        """The cached literal equivalent to ``Matches(P, match)``."""
        lit = self._guards.get(match)
        if lit is None:
            lit = self.compiler.matches_lit(match)
            self._guards[match] = lit
        return lit

    @property
    def cached_guards(self) -> int:
        return len(self._guards)

    def diff_outcome(self, probed: Rule, other: Rule | None) -> "bool | Lit":
        """Cached ``DiffOutcome(P, probed, other)`` (bool or literal)."""
        if other is None:
            return self.compiler.diff_outcome(probed, None)
        key = (probed.actions, other.actions)
        cached = self._diffs.get(key)
        if cached is None:
            cached = self.compiler.diff_outcome(probed, other)
            self._diffs[key] = cached
        return cached

    # ----- per-probe emission ---------------------------------------------

    def assert_probe_group(
        self,
        probed: Rule,
        lower_rules: Sequence[Rule],
        higher_rules: Sequence[Rule],
        group: int,
        miss_rule: Rule | None = None,
    ) -> None:
        """Emit a rule's complete probe constraints into a clause group.

        The group carries everything probe-specific — Hit unit bits,
        the negated guards of higher-priority overlapping rules, and
        the Distinguish chain — so a solve needs exactly *one*
        assumption (the selector) instead of one decision level per
        higher rule and match bit.  Guard and DiffOutcome literals
        referenced from the group are the persistent cached ones, so
        re-emitting a churned group only pays for the group-local
        clauses.
        """
        sink = SolverSink(self.solver, group)
        # Hit: the probe matches the probed rule ...
        for lit in self.compiler.match_literals(probed.match):
            sink.add_unit(lit)
        # ... and no higher-priority overlapping rule.
        for rule in higher_rules:
            sink.add_unit(-self.guard(rule.match))
        # Distinguish: the priority-ordered lower-overlap ITE chain.
        ordered = sorted(lower_rules, key=lambda r: -r.priority)
        branches = [
            (self.guard(rule.match), self.diff_outcome(probed, rule))
            for rule in ordered
        ]
        else_value = self.diff_outcome(probed, miss_rule)
        assert_ite_chain(sink, branches, else_value)
