#!/usr/bin/env python3
"""Quickstart: generate data-plane probes for a small flow table.

Walks through the paper's §3 examples:

1. a basic unicast rule (probe found),
2. the §3.1 subtlety where naive constraint formulations fail,
3. a rewrite rule distinguishable only by its ToS rewrite (§3.2),
4. a drop rule (negative probing, §3.3),
5. an unmonitorable rule (§3.5).

Run:  python examples/quickstart.py
"""

from repro import FlowTable, Match, ProbeGenerator, Rule, verify_probe
from repro.openflow.actions import drop, output
from repro.openflow.fields import FieldName
from repro.packets.ipv4 import ip_to_str, str_to_ip

CATCH = Match.build(dl_vlan=0xF03)  # the downstream catching rule's match


def show(title, table, probed, result):
    print(f"\n=== {title} ===")
    for rule in table.rules():
        marker = " <-- probed" if rule.key() == probed.key() else ""
        print(
            f"  prio={rule.priority:<3} {rule.match!r} "
            f"-> {rule.actions!r}{marker}"
        )
    if not result.ok:
        print(f"  probe: NONE ({result.reason.value})")
        return
    header = result.header
    print(
        f"  probe: src={ip_to_str(header[FieldName.NW_SRC])} "
        f"dst={ip_to_str(header[FieldName.NW_DST])} "
        f"tos={header[FieldName.NW_TOS]:#x} "
        f"vlan={header[FieldName.DL_VLAN]:#x}"
    )
    print(f"  raw packet: {len(result.packet)} bytes")
    print(
        "  if rule present -> ports "
        f"{sorted(result.outcome_present.ports())}; "
        f"if missing -> ports {sorted(result.outcome_absent.ports())}"
    )
    valid, why = verify_probe(table, probed, header, CATCH)
    print(f"  independent verification: {why}")
    print(f"  generated in {result.generation_time * 1000:.2f} ms "
          f"({result.cnf_vars} vars, {result.cnf_clauses} clauses)")


def main():
    generator = ProbeGenerator(catch_match=CATCH)
    src = str_to_ip("10.0.0.1")
    dst = str_to_ip("10.0.0.2")

    # 1. Basic unicast rule over a default route.
    default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
    probed = Rule(
        priority=10, match=Match.build(nw_dst=dst), actions=output(2)
    )
    table = FlowTable(rules=[default, probed], check_overlap=False)
    show(
        "Basic unicast rule", table, probed, generator.generate(table, probed)
    )

    # 2. The paper's §3.1 example: the probed rule forwards to the SAME
    # port as the default, yet a probe exists because a middle rule
    # would divert the traffic if the probed rule were missing.
    rlowest = Rule(priority=0, match=Match.wildcard(), actions=output(1))
    rlower = Rule(priority=5, match=Match.build(nw_src=src), actions=output(2))
    rprobed = Rule(
        priority=10, match=Match.build(
            nw_src=src, nw_dst=dst
        ), actions=output(1)
    )
    table = FlowTable(rules=[rlowest, rlower, rprobed], check_overlap=False)
    show("§3.1: distinguishing via a middle rule", table, rprobed,
         generator.generate(table, rprobed))

    # 3. Rewrite rule: same output port as the default, but it marks
    # traffic with ToS 0x2A ("voice"): a probe with any other ToS works.
    marked = Rule(
        priority=10, match=Match.build(
            nw_src=src
        ), actions=output(1, nw_tos=0x2A)
    )
    table = FlowTable(rules=[rlowest, marked], check_overlap=False)
    show("§3.2: rewrite-distinguished rule", table, marked,
         generator.generate(table, marked))

    # 4. Drop rule: negative probing (silence = installed).
    dropper = Rule(priority=10, match=Match.build(nw_dst=dst), actions=drop())
    table = FlowTable(rules=[rlowest, dropper], check_overlap=False)
    result = generator.generate(table, dropper)
    show("§3.3: drop rule (negative probing)", table, dropper, result)
    print(f"  expects probe back: {result.expects_return()}")

    # 5. Unmonitorable: same outcome as the rule below it.
    clone = Rule(priority=10, match=Match.build(nw_dst=dst), actions=output(1))
    table = FlowTable(rules=[rlowest, clone], check_overlap=False)
    show("§3.5: unmonitorable rule", table, clone,
         generator.generate(table, clone))


if __name__ == "__main__":
    main()
