"""Figure 5: consistent updates on switches with premature acks.

Paper setup: triangle S1-S2-S3, hosts H1/H2, 300 flows at 300 packets/s
rerouted from S1->S2 to S1->S3->S2 with a two-phase consistent update.
S3 is (a) an HP 5406zl and (b) a Pica8 emulation — both acknowledge
rules before the data plane installs them.

Paper result: with barriers, the upstream flips early and packets drop
into a blackhole — 8297 dropped packets on HP, 4857 on Pica8.  With
Monocle, "Upstream updated" and "Dataplane ready" lines overlap: zero
drops, at a comparable total update time.

We simulate the control planes exactly and account drops analytically
(blackhole window x flow rate), which is what the figure's line gap
shows, keeping the benchmark fast at the full 300-flow scale.
"""

from repro.analysis import format_table
from repro.controller import ConfirmMode, ConsistentPathUpdate, SdnController
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.switches.profiles import HP_5406ZL, OVS, PICA8
from repro.topology.generators import triangle

from .conftest import bench_seed, print_header

NUM_FLOWS = 300
FLOW_RATE = 300.0  # packets/s per flow

PAPER_DROPS = {"HP 5406zl": 8297, "Pica8 (emulated)": 4857}


def run_arm(profile, use_monocle, seed):
    """Returns per-flow (upstream_updated, dataplane_ready) times."""
    sim = Simulator()
    net = Network(
        sim,
        triangle(),
        profiles=lambda n: profile if n == "s3" else OVS,
        seed=seed,
    )
    net.add_host("h1", "s1")
    net.add_host("h2", "s2")

    # Instrument S3's data-plane installs.
    ready_times = {}
    switch3 = net.switch("s3")
    original_apply = switch3._apply_to_dataplane

    def spy(mod):
        original_apply(mod)
        ready_times.setdefault((mod.priority, mod.match), sim.now)

    switch3._apply_to_dataplane = spy

    if use_monocle:
        box = {}
        system = MonocleSystem(
            net,
            config=MonitorConfig(update_probe_interval=0.002),
            dynamic=True,
            controller_handler=lambda n, m: box["c"].handle_message(n, m),
        )
        controller = SdnController(sim, send=system.send_to_switch)
        box["c"] = controller
        confirm = ConfirmMode.MONOCLE_ACK

        def install(node, rule):
            system.preinstall_production_rule(node, rule)

    else:
        controller = SdnController(
            sim, send=lambda n, m: net.channel(n).send_down(m)
        )
        for node in net.switches:
            net.channel(node).up_handler = (
                lambda m, n=node: controller.handle_message(n, m)
            )
        confirm = ConfirmMode.BARRIER

        def install(node, rule):
            net.switch(node).install_directly(rule)

    updates = []
    for i in range(NUM_FLOWS):
        match = Match.build(dl_type=0x0800, nw_proto=17, nw_dst=0x0A000100 + i)
        install(
            "s1",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s1"]["s2"]),
            ),
        )
        install(
            "s2",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s2"]["h2"]),
            ),
        )
        update = ConsistentPathUpdate(
            controller=controller,
            match=match,
            priority=50,
            old_path=["s1", "s2"],
            new_path=["s1", "s3", "s2"],
            port_toward=net.port_toward,
            final_port=net.port_toward["s2"]["h2"],
            confirm=confirm,
        )
        updates.append(update)
    for update in updates:
        update.start()
    sim.run_for(60.0)

    per_flow = []
    for i, update in enumerate(updates):
        assert update.done, f"flow {i} never completed"
        match = Match.build(dl_type=0x0800, nw_proto=17, nw_dst=0x0A000100 + i)
        ready = ready_times[(50, match)]
        per_flow.append((update.ingress_updated, ready))
    return per_flow


def account_drops(per_flow):
    """Blackhole window per flow (upstream flipped before dataplane
    ready) converted to dropped packets at FLOW_RATE."""
    dropped = 0.0
    broken_flows = 0
    total_time = 0.0
    for upstream, ready in per_flow:
        window = max(0.0, ready - upstream)
        if window > 0:
            broken_flows += 1
        dropped += window * FLOW_RATE
        total_time = max(total_time, upstream, ready)
    return int(round(dropped)), broken_flows, total_time


def test_figure5_consistent_update(benchmark):
    rows = []
    results = {}
    for profile in (HP_5406ZL, PICA8):
        for label, use_monocle in (("barriers", False), ("Monocle", True)):
            per_flow = run_arm(profile, use_monocle, bench_seed())
            dropped, broken, duration = account_drops(per_flow)
            results[(profile.name, label)] = (dropped, broken, duration)
            paper = PAPER_DROPS[profile.name] if label == "barriers" else 0
            rows.append(
                [
                    profile.name,
                    label,
                    dropped,
                    f"{broken}/{NUM_FLOWS}",
                    f"{duration:.2f}",
                    paper,
                ]
            )

    print_header(
        "Figure 5 — consistent update of 300 flows (measured vs paper)"
    )
    print(
        format_table(
            [
                "switch (S3)",
                "confirmation",
                "dropped pkts",
                "broken flows",
                "update time s",
                "paper drops",
            ],
            rows,
        )
    )

    for profile in (HP_5406ZL, PICA8):
        barrier_drops = results[(profile.name, "barriers")][0]
        monocle_drops = results[(profile.name, "Monocle")][0]
        barrier_time = results[(profile.name, "barriers")][2]
        monocle_time = results[(profile.name, "Monocle")][2]
        # Shape: barriers blackhole thousands of packets; Monocle none.
        assert barrier_drops > 500, profile.name
        assert monocle_drops == 0, profile.name
        # Total update time comparable (within ~2x).
        assert monocle_time < 2.5 * barrier_time + 0.5, profile.name

    benchmark.pedantic(
        lambda: run_arm(HP_5406ZL, True, bench_seed() + 1),
        rounds=1,
        iterations=1,
    )
