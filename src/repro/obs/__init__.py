"""Low-overhead observability: sim-time tracing + live metrics.

The paper's claims are all *latency* claims (probe cycle time, update
confirmation deadlines, detection latency under churn), so the repro
needs to see its own timing, not just post-mortem counters.  This
package is that substrate:

* :mod:`~repro.obs.trace` — :class:`TraceRecorder`, a bounded ring
  buffer of typed, sim-timestamped events with per-probe span ids;
  exports JSONL and Chrome ``trace_event`` files.
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and histograms with periodic sim-time snapshots (windowed
  time series) and Prometheus text exposition.
* :mod:`~repro.obs.observer` — the :class:`Observer` facade components
  publish through, and the default :class:`NullObserver`
  (:data:`NULL_OBSERVER`) whose disabled hot path is a no-op attribute
  read.
* :mod:`~repro.obs.analyze` — span reconstruction and trace-only
  detection-latency replay (cross-checked against the metrics layer).

Wiring: ``FleetDeployment(obs=Observer(...))`` threads the observer
through :class:`~repro.core.multiplexer.MonocleSystem` into every
Monitor, scheduler, probe-gen context and the shared-context registry;
``repro-fleet --trace-out/--metrics-out`` surfaces it on the CLI.
"""

from repro.obs.analyze import (
    ProbeSpan,
    TraceDetection,
    detection_latencies,
    format_span_table,
    probe_spans,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    window_rates,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.trace import TraceEvent, TraceRecorder, read_jsonl

__all__ = [
    "NULL_OBSERVER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "ProbeSpan",
    "TraceDetection",
    "TraceEvent",
    "TraceRecorder",
    "detection_latencies",
    "format_span_table",
    "probe_spans",
    "read_jsonl",
    "window_rates",
]
