"""Constant-rate traffic generators (the Figure 5 workload).

The consistent-update experiment sends 300 flows at 300 packets/s each;
:class:`TrafficGenerator` produces that load from a host, stamping each
packet's payload with the flow id and a sequence number so receivers can
account for losses per flow.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.network.host import Host
from repro.sim.kernel import Simulator

FLOW_MAGIC = b"FLOW"
_FORMAT = "!4sIQ"
_LEN = struct.calcsize(_FORMAT)


@dataclass(frozen=True)
class FlowSpec:
    """One flow's identity: header fields + id.

    Attributes:
        flow_id: experiment-level identifier.
        header_fields: keyword fields (e.g. nw_src/nw_dst) for crafting.
    """

    flow_id: int
    header_fields: tuple[tuple[str, int], ...]

    def fields(self) -> dict[str, int]:
        """Header fields as a dict."""
        return dict(self.header_fields)


def encode_flow_payload(flow_id: int, seq: int) -> bytes:
    """Payload carrying flow id and sequence number."""
    return struct.pack(_FORMAT, FLOW_MAGIC, flow_id, seq)


def decode_flow_payload(payload: bytes) -> tuple[int, int] | None:
    """Inverse of :func:`encode_flow_payload`; None if not flow traffic."""
    if len(payload) < _LEN:
        return None
    magic, flow_id, seq = struct.unpack(_FORMAT, payload[:_LEN])
    if magic != FLOW_MAGIC:
        return None
    return flow_id, seq


class TrafficGenerator:
    """Sends one flow at a constant packet rate from a host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        spec: FlowSpec,
        rate: float,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        self.sim = sim
        self.host = host
        self.spec = spec
        self.interval = 1.0 / rate
        self.seq = 0
        self._running = False

    def start(self, jitter: float = 0.0) -> None:
        """Begin sending; optional initial offset desynchronizes flows."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(jitter, self._tick)

    def stop(self) -> None:
        """Stop sending after the next pending tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        payload = encode_flow_payload(self.spec.flow_id, self.seq)
        self.seq += 1
        self.host.send(payload=payload, **self.spec.fields())
        self.sim.schedule(self.interval, self._tick)
