"""Tests for the drop-postponing transform (§4.3)."""

import pytest

from repro.core.droppostpone import (
    DROP_TAG_TOS,
    TAG_DROP_PRIORITY,
    finalize_drop_rule,
    postpone_drop_rule,
    tag_drop_rule,
)
from repro.openflow.actions import drop, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule


def drop_rule():
    return Rule(
        priority=10, match=Match.build(nw_dst=0x0A000002), actions=drop()
    )


class TestPostpone:
    def test_stand_in_forwards_with_tag(self):
        stand_in = postpone_drop_rule(drop_rule(), neighbor_port=3)
        assert stand_in.forwarding_set() == {3}
        assert stand_in.actions.rewrites_on_port(3) == {
            FieldName.NW_TOS: DROP_TAG_TOS
        }

    def test_stand_in_keeps_match_priority_cookie(self):
        rule = drop_rule()
        stand_in = postpone_drop_rule(rule, neighbor_port=3)
        assert stand_in.match == rule.match
        assert stand_in.priority == rule.priority
        assert stand_in.cookie == rule.cookie

    def test_non_drop_rule_rejected(self):
        rule = Rule(priority=1, match=Match.wildcard(), actions=output(1))
        with pytest.raises(ValueError):
            postpone_drop_rule(rule, neighbor_port=3)

    def test_finalize_restores_drop(self):
        stand_in = postpone_drop_rule(drop_rule(), neighbor_port=3)
        final = finalize_drop_rule(stand_in)
        assert final.forwarding_set() == frozenset()
        assert final.key() == stand_in.key()


class TestTagDropRule:
    def test_matches_tagged_traffic_only(self):
        rule = tag_drop_rule()
        assert rule.match.matches({FieldName.NW_TOS: DROP_TAG_TOS})
        assert not rule.match.matches({FieldName.NW_TOS: 0})

    def test_drops(self):
        assert tag_drop_rule().forwarding_set() == frozenset()

    def test_priority_below_catch_above_production(self):
        from repro.core.catching import CATCH_PRIORITY

        assert tag_drop_rule().priority == TAG_DROP_PRIORITY
        assert TAG_DROP_PRIORITY < CATCH_PRIORITY


class TestEndToEndSemantics:
    def test_tagged_packet_dropped_at_neighbor_but_probe_caught(self):
        """Figure 3: production traffic dies one hop later; probes
        (matching the catch rule) still reach the controller."""
        from repro.openflow.actions import CONTROLLER_PORT
        from repro.openflow.table import FlowTable

        # Neighbor switch: catch rule above the tag-drop rule.
        catch = Rule(
            priority=0xFFFF,
            match=Match.build(dl_vlan=0xF01),
            actions=output(CONTROLLER_PORT),
        )
        neighbor = FlowTable(check_overlap=False)
        neighbor.install(catch)
        neighbor.install(tag_drop_rule())

        tagged_production = {
            FieldName.NW_TOS: DROP_TAG_TOS, FieldName.DL_VLAN: 0
        }
        tagged_probe = {
            FieldName.NW_TOS: DROP_TAG_TOS, FieldName.DL_VLAN: 0xF01
        }
        assert neighbor.process(tagged_production).is_drop()
        assert neighbor.process(tagged_probe).ports() == {CONTROLLER_PORT}
