"""Plain-text reporting for fleet scenarios."""

from __future__ import annotations

from repro.analysis import format_table
from repro.fleet.metrics import FleetMetrics


def format_fleet_report(metrics: FleetMetrics) -> str:
    """Render per-switch and aggregate fleet metrics as text tables."""
    lines: list[str] = []

    rows = [
        [
            repr(m.node),
            m.rules_installed,
            m.probes_sent,
            f"{m.probe_rate(metrics.duration):.0f}",
            m.probes_confirmed,
            m.probes_timed_out,
            m.alarms,
            m.packetouts_processed,
            m.packetins_sent,
        ]
        for m in metrics.per_switch
    ]
    lines.append(
        format_table(
            [
                "switch",
                "rules",
                "probes",
                "probes/s",
                "confirmed",
                "timed out",
                "alarms",
                "PacketOut",
                "PacketIn",
            ],
            rows,
        )
    )

    if metrics.detections:
        lines.append("")
        lines.append("injected failures:")
        rows = []
        for record in metrics.detections:
            injection = record.injection
            if record.detected:
                status = (
                    f"{record.latency:.3f}s on {record.detected_on!r}"
                    f" ({record.alarm_kind})"
                )
            elif injection.error is not None:
                status = "INJECTION FAILED"
            else:
                status = "NOT DETECTED"
            rows.append(
                [injection.kind, f"{injection.time:.3f}", status,
                 injection.description]
            )
        lines.append(format_table(["kind", "t", "detection", "detail"], rows))

    lines.append("")
    lines.append(
        f"aggregate: {metrics.probes_sent} probes "
        f"({metrics.probes_sent / metrics.duration:.0f}/s fleet-wide), "
        f"{metrics.probes_confirmed} confirmed, "
        f"{metrics.probes_routed} routed by the multiplexer, "
        f"{metrics.probes_unroutable} unroutable"
    )
    lines.append(
        f"overhead: {metrics.packetout_total} PacketOuts, "
        f"{metrics.packetin_total} PacketIns across the fleet"
    )
    served = (
        metrics.probes_generated
        + metrics.probe_cache_hits
        + metrics.probe_revalidations
    )
    if served:
        # No wall-clock numbers here: reports must be byte-identical
        # across runs of the same seed (determinism checks diff them).
        lines.append(
            f"probe generation: {metrics.probes_generated} incremental "
            f"SAT solves, {metrics.probe_cache_hits} cache hits, "
            f"{metrics.probe_revalidations} revalidations "
            f"({100.0 * (served - metrics.probes_generated) / served:.0f}% "
            "served without a solve)"
        )
    policies = sorted({m.probe_policy for m in metrics.per_switch})
    if policies:
        # Counters only (no wall-clock): determinism checks diff reports.
        lines.append(
            f"scheduling: policies {'/'.join(policies)}, "
            f"{metrics.cycle_rebuilds} cycle builds for "
            f"{len(metrics.per_switch)} switches, "
            f"{metrics.scheduler_promotions} promotions"
        )
    if metrics.tables_fingerprinted:
        shared_now = sum(1 for m in metrics.per_switch if m.context_shared)
        lines.append(
            f"context sharing: {metrics.contexts_created} contexts for "
            f"{metrics.tables_fingerprinted} tables "
            f"({metrics.contexts_deduped} deduped, "
            f"{metrics.contexts_forked} forked, "
            f"{metrics.contexts_remerged} re-merged, "
            f"{shared_now} switches still sharing)"
        )
    if metrics.updates_confirmed or metrics.updates_given_up:
        lines.append(
            f"updates: {metrics.updates_confirmed} confirmed, "
            f"{metrics.updates_given_up} given up"
        )
    if metrics.confirmation_latency is not None:
        s = metrics.confirmation_latency
        lines.append(
            "confirmation latency: "
            f"n={s.count} mean={s.mean * 1000:.1f}ms "
            f"median={s.median * 1000:.1f}ms p95={s.p95 * 1000:.1f}ms "
            f"max={s.maximum * 1000:.1f}ms"
        )
    detected = sum(1 for d in metrics.detections if d.detected)
    lines.append(
        f"detection: {detected}/{len(metrics.detections)} injected failures "
        f"detected, {len(metrics.false_alarms)} false alarms"
    )
    return "\n".join(lines)
