"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, sequence)`` where the sequence number is a
monotonically increasing tie-breaker.  Ties in time therefore dispatch in
scheduling order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the callback fires.
        seq: tie-breaker assigned by the queue; schedule order wins ties.
        action: zero-argument callable run when the event is dispatched.
        cancelled: a cancelled event stays in the heap but is skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
