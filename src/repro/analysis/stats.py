"""Statistics helpers for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class Cdf:
    """An empirical CDF over a sample (the Figure 4/9 plot primitive)."""

    def __init__(self, samples: Sequence[float]) -> None:
        self.samples = sorted(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def fraction_at_or_below(self, x: float) -> float:
        """P(X <= x)."""
        if not self.samples:
            return 0.0
        # Binary search for the rightmost sample <= x.
        lo, hi = 0, len(self.samples)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.samples[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self.samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile, q in [0, 100]."""
        if not self.samples:
            raise ValueError("empty CDF")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        index = min(
            len(self.samples) - 1,
            max(0, int(round(q / 100.0 * (len(self.samples) - 1)))),
        )
        return self.samples[index]

    def points(self, num: int = 20) -> list[tuple[float, float]]:
        """Evenly spaced (value, fraction) pairs for plotting/printing."""
        if not self.samples:
            return []
        out = []
        for i in range(1, num + 1):
            q = i / num
            index = min(len(self.samples) - 1, int(q * len(self.samples)) - 1)
            out.append((self.samples[max(0, index)], q))
        return out


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    minimum: float
    median: float
    p95: float
    maximum: float


def summarize(samples: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    return Summary(
        count=n,
        mean=sum(ordered) / n,
        minimum=ordered[0],
        median=ordered[n // 2],
        p95=ordered[min(n - 1, int(0.95 * n))],
        maximum=ordered[-1],
    )
