"""Edge-case tests for hosts, traffic accounting and update helpers."""

import pytest

from repro.network.host import Host
from repro.network.traffic import FlowSpec, TrafficGenerator
from repro.sim.kernel import Simulator


class TestHost:
    def test_unattached_host_send_raises(self):
        host = Host(Simulator(), "h1")
        with pytest.raises(RuntimeError):
            host.send_raw(b"x")

    def test_receive_records_unparseable_bytes(self):
        sim = Simulator()
        host = Host(sim, "h1")
        host.receive(b"\x00\x01")
        assert len(host.received) == 1
        assert host.received[0].payload == b"\x00\x01"
        assert host.received[0].values == {}

    def test_on_receive_callback(self):
        sim = Simulator()
        host = Host(sim, "h1")
        seen = []
        host.on_receive = seen.append
        host.receive(b"\x00" * 20)
        assert len(seen) == 1

    def test_record_packets_can_be_disabled(self):
        sim = Simulator()
        host = Host(sim, "h1")
        host.record_packets = False
        host.receive(b"\x00" * 20)
        assert host.received == []


class TestTrafficGeneratorEdge:
    def make(self, rate=100.0):
        sim = Simulator()
        host = Host(sim, "h1")
        sent = []
        host.transmit = sent.append
        spec = FlowSpec(
            flow_id=1,
            header_fields=(("dl_type", 0x0800), ("nw_proto", 17)),
        )
        return sim, host, sent, TrafficGenerator(sim, host, spec, rate=rate)

    def test_zero_rate_rejected(self):
        sim = Simulator()
        host = Host(sim, "h1")
        spec = FlowSpec(flow_id=1, header_fields=())
        with pytest.raises(ValueError):
            TrafficGenerator(sim, host, spec, rate=0)

    def test_double_start_is_idempotent(self):
        sim, host, sent, generator = self.make()
        generator.start()
        generator.start()
        sim.run_for(0.1)
        # Single stream at 100/s: ~10 packets, not ~20.
        assert len(sent) <= 12

    def test_sequence_numbers_increase(self):
        from repro.network.traffic import decode_flow_payload
        from repro.packets.parse import parse_packet

        sim, host, sent, generator = self.make()
        generator.start()
        sim.run_for(0.1)
        seqs = []
        for raw in sent:
            _, payload = parse_packet(raw)
            decoded = decode_flow_payload(payload)
            assert decoded is not None
            seqs.append(decoded[1])
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_jitter_offsets_first_packet(self):
        sim, host, sent, generator = self.make(rate=10.0)
        times = []
        host.transmit = lambda raw: times.append(sim.now)
        generator.start(jitter=0.033)
        sim.run_for(0.2)
        assert times[0] == pytest.approx(0.033)
