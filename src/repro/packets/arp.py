"""ARP packet encode/decode (IPv4 over Ethernet)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

ARP_LEN = 28
HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800

OP_REQUEST = 1
OP_REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """Decoded ARP packet.

    OpenFlow 1.0 matches ARP sender/target protocol addresses through
    ``nw_src``/``nw_dst`` and the opcode through ``nw_proto``.
    """

    opcode: int
    sender_mac: int
    sender_ip: int
    target_mac: int
    target_ip: int


def encode_arp(packet: ArpPacket) -> bytes:
    """Serialize an ARP packet."""
    return struct.pack(
        "!HHBBH6s4s6s4s",
        HTYPE_ETHERNET,
        PTYPE_IPV4,
        6,
        4,
        packet.opcode,
        packet.sender_mac.to_bytes(6, "big"),
        packet.sender_ip.to_bytes(4, "big"),
        packet.target_mac.to_bytes(6, "big"),
        packet.target_ip.to_bytes(4, "big"),
    )


def decode_arp(data: bytes) -> tuple[ArpPacket, bytes]:
    """Parse an ARP packet; returns (packet, trailing bytes)."""
    if len(data) < ARP_LEN:
        raise ValueError(f"too short for ARP: {len(data)} bytes")
    (
        htype,
        ptype,
        hlen,
        plen,
        opcode,
        sender_mac,
        sender_ip,
        target_mac,
        target_ip,
    ) = struct.unpack("!HHBBH6s4s6s4s", data[:ARP_LEN])
    if htype != HTYPE_ETHERNET or ptype != PTYPE_IPV4:
        raise ValueError(f"unsupported ARP htype/ptype: {htype}/{ptype:#x}")
    if hlen != 6 or plen != 4:
        raise ValueError(f"unsupported ARP address lengths: {hlen}/{plen}")
    packet = ArpPacket(
        opcode=opcode,
        sender_mac=int.from_bytes(sender_mac, "big"),
        sender_ip=int.from_bytes(sender_ip, "big"),
        target_mac=int.from_bytes(target_mac, "big"),
        target_ip=int.from_bytes(target_ip, "big"),
    )
    return packet, data[ARP_LEN:]
