"""Forwarding rules and their observable outcomes.

A :class:`Rule` is (priority, match, actions) plus a cookie for
identification.  :class:`RuleOutcome` is what an observer stationed on the
switch's output ports could record for one packet — the basis of the
paper's ``DiffOutcome`` reasoning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Mapping

from repro.openflow.actions import ActionList
from repro.openflow.fields import FieldName
from repro.openflow.match import Match

_cookie_counter = itertools.count(1)


def _next_cookie() -> int:
    return next(_cookie_counter)


@dataclass(frozen=True)
class Rule:
    """An OpenFlow rule: priority, match, actions.

    Rules are immutable; a "modification" in the data model produces a new
    Rule with the same (priority, match) key.

    Attributes:
        priority: higher wins; equal-priority overlap is undefined
            behaviour per the OpenFlow spec, and the flow table refuses it.
        match: the :class:`Match`.
        actions: the :class:`ActionList`.
        cookie: opaque identifier, preserved across modifications.
    """

    priority: int
    match: Match
    actions: ActionList
    cookie: int = dataclass_field(default_factory=_next_cookie)

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 0xFFFF:
            raise ValueError(f"priority {self.priority} outside [0, 65535]")

    def key(self) -> tuple[int, Match]:
        """The identity used by FlowMod modify/delete-strict."""
        return (self.priority, self.match)

    def overlaps(self, other: "Rule") -> bool:
        """Do the two rules' matches overlap (some packet hits both)?"""
        return self.match.overlaps(other.match)

    def forwarding_set(self) -> frozenset[int]:
        """Ports this rule may emit a packet on."""
        return self.actions.forwarding_set()

    def outcome_kind(self) -> str:
        """drop / unicast / multicast / ecmp (see §3.4)."""
        return self.actions.outcome_kind()

    def with_actions(self, actions: ActionList) -> "Rule":
        """A modified version of this rule (same key, same cookie)."""
        return Rule(
            priority=self.priority,
            match=self.match,
            actions=actions,
            cookie=self.cookie,
        )

    def with_priority(self, priority: int) -> "Rule":
        """Copy with a different priority (used by probe-gen for mods)."""
        return Rule(
            priority=priority,
            match=self.match,
            actions=self.actions,
            cookie=self.cookie,
        )

    def __repr__(self) -> str:
        return (
            f"Rule(prio={self.priority}, {self.match!r}, "
            f"{self.actions!r}, cookie={self.cookie})"
        )


@dataclass(frozen=True)
class RuleOutcome:
    """The observable result of a switch processing one packet.

    Attributes:
        emissions: tuple of ``(port, packed_header_values)`` pairs — for
            each port the packet appeared on, the header it carried there.
            Empty for drops.
        ecmp: True when the emitting rule was ECMP, meaning exactly one
            element of ``emissions`` actually occurs (chosen by the
            switch); False means *all* emissions occur (multicast) or
            there is at most one (unicast/drop).
    """

    emissions: tuple[tuple[int, tuple[tuple[FieldName, int], ...]], ...]
    ecmp: bool = False

    @classmethod
    def from_rule(
        cls, rule: Rule, header_values: Mapping[FieldName, int]
    ) -> "RuleOutcome":
        """Outcome of ``rule`` processing a packet with these headers."""
        emissions = []
        for po in rule.actions.port_outcomes:
            observed = dict(header_values)
            observed.update(po.rewrite_map())
            emissions.append((po.port, tuple(sorted(observed.items()))))
        return cls(emissions=tuple(emissions), ecmp=rule.actions.is_ecmp)

    @classmethod
    def dropped(cls) -> "RuleOutcome":
        """Outcome of a drop (or table miss with a drop policy)."""
        return cls(emissions=(), ecmp=False)

    def ports(self) -> frozenset[int]:
        """Ports the packet may appear on."""
        return frozenset(port for port, _ in self.emissions)

    def is_drop(self) -> bool:
        """No packet leaves the switch."""
        return not self.emissions

    def distinguishable_from(self, other: "RuleOutcome") -> bool:
        """Can an observer on the output links tell the outcomes apart?

        Implements the paper's ``DiffOutcome`` semantics for two *already
        evaluated* outcomes (concrete packet), including the ECMP
        uncertainty rules of §3.4:

        * multicast/unicast/drop vs same: outcomes differ iff the
          (port, header) emission sets differ.
        * ECMP vs ECMP: distinguishable iff no shared (port, header)
          emission exists (any shared emission is ambiguous).
        * ECMP vs multicast: distinguishable iff the multicast emits on
          some (port, header) the ECMP cannot produce, or every ECMP
          choice is observably off the multicast's emission set.  The
          |F1| != 1 counting exception is handled by the caller.
        """
        mine = set(self.emissions)
        theirs = set(other.emissions)
        if not self.ecmp and not other.ecmp:
            return mine != theirs
        if self.ecmp and other.ecmp:
            return not (mine & theirs)
        # Exactly one is ECMP; call it E, the other M (deterministic).
        ecmp_set = mine if self.ecmp else theirs
        multi_set = theirs if self.ecmp else mine
        # Deterministic side emits all of multi_set.  Observer can tell
        # them apart iff multi_set is not a possible ECMP observation,
        # i.e. multi_set != {e} for every e in ecmp_set.  Since ECMP
        # emits exactly one element, M is confusable only when
        # len(multi_set) == 1 and its element is in ecmp_set.
        if len(multi_set) == 1 and next(iter(multi_set)) in ecmp_set:
            return False
        if not multi_set and not ecmp_set:
            return False
        return True
