"""Unit tests for the observability substrate (:mod:`repro.obs`)."""

import json

import pytest

from repro.obs import (
    NULL_OBSERVER,
    MetricsRegistry,
    NullObserver,
    Observer,
    TraceRecorder,
    detection_latencies,
    format_span_table,
    probe_spans,
    read_jsonl,
    window_rates,
)
from repro.obs.metrics import family_name, series_key
from repro.sim.kernel import Simulator


class TestTraceRecorder:
    def test_record_and_read_back(self):
        trace = TraceRecorder(capacity=8)
        trace.record(1.0, "probe.sent", "sw0", 1, {"nonce": 7})
        trace.record(1.5, "probe.confirmed", "sw0", 1, {})
        assert len(trace) == 2
        assert trace.emitted == 2
        assert trace.dropped == 0
        sent = trace.events("probe.sent")
        assert len(sent) == 1
        assert sent[0].ts == 1.0
        assert sent[0].args == {"nonce": 7}

    def test_ring_bound_evicts_oldest(self):
        trace = TraceRecorder(capacity=3)
        for i in range(10):
            trace.record(float(i), "tick", None, None, {"i": i})
        assert len(trace) == 3
        assert trace.emitted == 10
        assert trace.dropped == 7
        assert [e.args["i"] for e in trace] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRecorder(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0.5, "alarm.raised", "sw1", 3, {"kind": "missing"})
        trace.record(0.75, "failure.injected", None, None,
                     {"nodes": ["'sw1'"], "cookies": {9, 4}})
        path = str(tmp_path / "trace.jsonl")
        assert trace.export_jsonl(path) == 2
        rows = read_jsonl(path)
        assert rows == trace.to_dicts()
        assert rows[0]["type"] == "alarm.raised"
        assert rows[0]["node"] == "'sw1'"
        assert rows[0]["span"] == 3
        # Sets are serialized as sorted lists.
        assert rows[1]["args"]["cookies"] == [4, 9]

    def test_chrome_export_structure(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0.001, "probe.sent", "sw0", 1, {})
        trace.record(0.003, "probe.confirmed", "sw0", 1, {})
        trace.record(0.004, "flowmod.observed", "sw0", None, {})
        path = str(tmp_path / "trace.json")
        assert trace.export_chrome(path) == 3
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        # One process-name meta, three instants, one completed slice.
        assert phases.count("M") == 1
        assert phases.count("i") == 3
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["tid"] == 1
        assert slices[0]["dur"] == pytest.approx(2000.0)  # 2ms in us

    def test_non_jsonable_args_fall_back_to_repr(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0.0, "x", None, None, {"obj": object()})
        path = str(tmp_path / "t.jsonl")
        trace.export_jsonl(path)
        (row,) = read_jsonl(path)
        assert row["args"]["obj"].startswith("<object object")


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        c1 = registry.counter("probes_total", node="sw0")
        c1.inc()
        c1.inc(2)
        assert registry.counter("probes_total", node="sw0") is c1
        assert c1.value == 3
        # Different labels are a different series.
        assert registry.counter("probes_total", node="sw1") is not c1

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="up"):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("latency")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("latency")

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("outstanding")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_buckets_and_quantile(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.605)
        assert hist.cumulative() == [(0.01, 1), (0.1, 3), (1.0, 4)]
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(1.0) == 1.0

    def test_family_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("alarms", node="a").inc(2)
        registry.counter("alarms", node="b").inc(3)
        registry.counter("other").inc(100)
        assert registry.family_total("alarms") == 5

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("probes_total", node="sw0").inc(5)
        registry.gauge("outstanding").set(2)
        registry.histogram("wire", buckets=(0.1,)).observe(0.05)
        text = registry.prometheus_text()
        assert "# TYPE probes_total counter" in text
        assert 'probes_total{node="sw0"} 5' in text
        assert "outstanding 2" in text
        assert 'wire_bucket{le="0.1"} 1' in text
        assert 'wire_bucket{le="+Inf"} 1' in text
        assert "wire_count 1" in text

    def test_collect_hook_runs_before_snapshot(self):
        registry = MetricsRegistry()
        state = {"value": 0}
        registry.add_collect_hook(
            lambda: registry.gauge("live").set(state["value"])
        )
        state["value"] = 7
        snap = registry.snapshot(1.0)
        assert snap["gauges"]["live"] == 7

    def test_snapshots_and_window_rates(self):
        registry = MetricsRegistry()
        counter = registry.counter("probes_total", node="sw0")
        registry.snapshot(0.0)
        counter.inc(10)
        registry.snapshot(1.0)
        counter.inc(30)
        registry.snapshot(2.0)
        rates = window_rates(registry.snapshots, "probes_total")
        assert rates == [(1.0, 10.0), (2.0, 30.0)]

    def test_series_key_helpers(self):
        key = series_key("m", (("node", "sw0"),))
        assert key == 'm{node="sw0"}'
        assert family_name(key) == "m"
        assert family_name("bare") == "bare"


class TestObserver:
    def test_spans_are_unique_and_monotonic(self):
        obs = Observer()
        assert obs.enabled
        assert [obs.next_span() for _ in range(3)] == [1, 2, 3]

    def test_emit_stamps_bound_clock(self):
        obs = Observer()
        now = {"t": 4.25}
        obs.bind_clock(lambda: now["t"])
        obs.emit("probe.sent", node="sw0", span=1, nonce=9)
        (event,) = obs.trace.events()
        assert event.ts == 4.25
        assert event.args == {"nonce": 9}

    def test_install_paces_snapshots_by_sim_time(self):
        sim = Simulator()
        obs = Observer(snapshot_interval=0.5)
        obs.install(sim)
        counter = obs.metrics.counter("ticks")
        for i in range(10):
            sim.schedule(0.2 * (i + 1), counter.inc)
        sim.run(until=2.0)
        # Snapshots at 0.0, 0.5, 1.0, 1.5, 2.0 boundaries.
        times = [snap["ts"] for snap in obs.metrics.snapshots]
        assert times == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_negative_snapshot_interval_rejected(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            Observer(snapshot_interval=-1.0)

    def test_null_observer_is_inert(self):
        null = NullObserver()
        assert not null.enabled
        assert null.next_span() == 0
        null.emit("probe.sent", node="sw0", span=1)
        assert len(null.trace) == 0
        null.metrics.counter("x").inc()
        null.metrics.histogram("h").observe(1.0)
        assert null.metrics.family_total("x") == 0.0
        assert null.metrics.prometheus_text() == ""
        null.install(object())
        assert null.snapshot_now()["counters"] == {}
        assert NULL_OBSERVER.enabled is False


def _event(ts, etype, node=None, span=None, **args):
    return {"ts": ts, "type": etype, "node": node, "span": span,
            "args": args}


class TestAnalyze:
    def test_probe_span_stitching(self):
        events = [
            _event(1.0, "probe.generated", "'sw0'", 1, priority=100,
                   match="Match()", cookie=7, source="solve",
                   solve_seconds=0.002, wait_seconds=0.01),
            _event(1.001, "probe.sent", "'sw0'", 1, nonce=5),
            _event(1.05, "probe.sent", "'sw0'", 1, nonce=5),  # retry
            _event(1.2, "probe.timeout", "'sw0'", 1, nonce=5),
            _event(1.2, "alarm.raised", "'sw0'", 1, kind="missing",
                   cookie=7),
        ]
        spans = probe_spans(events)
        assert set(spans) == {1}
        span = spans[1]
        assert span.source == "solve"
        assert span.solve_seconds == 0.002
        assert span.wait_seconds == 0.01
        assert span.injections == 2
        assert span.first_sent_at == 1.001
        assert span.wire_seconds == pytest.approx(0.199)
        assert span.outcome == "alarm:missing"
        assert span.cookie == 7

    def test_in_flight_and_confirmed_outcomes(self):
        confirmed = probe_spans(
            [
                _event(0.0, "probe.sent", "'a'", 1),
                _event(0.1, "probe.confirmed", "'a'", 1),
                _event(0.2, "probe.sent", "'a'", 2),
            ]
        )
        assert confirmed[1].outcome == "confirmed"
        assert confirmed[1].wire_seconds == pytest.approx(0.1)
        assert confirmed[2].outcome == "in-flight"
        assert confirmed[2].wire_seconds is None

    def test_detection_latency_takes_earliest_matching_alarm(self):
        events = [
            _event(1.0, "failure.injected", kind="rule_drop",
                   nodes=["'sw0'"], cookies=[7]),
            # Wrong node, wrong cookie, too early: all ignored.
            _event(1.1, "alarm.raised", "'sw1'", 10, kind="missing",
                   cookie=7),
            _event(1.2, "alarm.raised", "'sw0'", 11, kind="missing",
                   cookie=8),
            _event(0.5, "alarm.raised", "'sw0'", 12, kind="missing",
                   cookie=7),
            # The detection, then a later duplicate that must not win.
            _event(1.4, "alarm.raised", "'sw0'", 13, kind="missing",
                   cookie=7),
            _event(1.9, "alarm.raised", "'sw0'", 14, kind="missing",
                   cookie=7),
        ]
        (record,) = detection_latencies(events)
        assert record.detected_at == 1.4
        assert record.latency == pytest.approx(0.4)
        assert record.detected_on == "'sw0'"
        assert record.alarm_kind == "missing"

    def test_undetected_injection(self):
        (record,) = detection_latencies(
            [_event(1.0, "failure.injected", kind="link_down",
                    nodes=["'sw0'"], cookies=[1])]
        )
        assert record.detected_at is None
        assert record.latency is None

    def test_span_table_renders(self):
        spans = probe_spans(
            [
                _event(0.0, "probe.generated", "'sw0'", 1, source="cache"),
                _event(0.001, "probe.sent", "'sw0'", 1),
                _event(0.002, "probe.confirmed", "'sw0'", 1),
            ]
        )
        table = format_span_table(spans.values())
        assert "solve ms" in table
        assert "cache" in table
        assert "confirmed" in table
        assert format_span_table([], limit=3).count("\n") == 1
