"""Ethernet II framing with optional 802.1Q VLAN tag."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.openflow.fields import ETHERTYPE_VLAN, VLAN_NONE

ETH_HEADER_LEN = 14
VLAN_TAG_LEN = 4


@dataclass(frozen=True)
class EthernetHeader:
    """Decoded Ethernet header.

    Attributes:
        dst: destination MAC as a 48-bit int.
        src: source MAC as a 48-bit int.
        ethertype: the payload's ethertype (after any VLAN tag).
        vlan: 12-bit VLAN id, or VLAN_NONE when untagged.
        vlan_pcp: 3-bit priority code point (0 when untagged).
    """

    dst: int
    src: int
    ethertype: int
    vlan: int = VLAN_NONE
    vlan_pcp: int = 0


def mac_to_bytes(mac: int) -> bytes:
    """48-bit int -> 6 bytes, network order."""
    if not 0 <= mac < (1 << 48):
        raise ValueError(f"MAC out of range: {mac:#x}")
    return mac.to_bytes(6, "big")


def mac_to_str(mac: int) -> str:
    """48-bit int -> ``aa:bb:cc:dd:ee:ff``."""
    raw = mac_to_bytes(mac)
    return ":".join(f"{b:02x}" for b in raw)


def encode_ethernet(header: EthernetHeader, payload: bytes) -> bytes:
    """Serialize an Ethernet frame (VLAN tag inserted when tagged)."""
    out = mac_to_bytes(header.dst) + mac_to_bytes(header.src)
    if header.vlan != VLAN_NONE:
        tci = ((header.vlan_pcp & 0x7) << 13) | (header.vlan & 0xFFF)
        out += struct.pack("!HH", ETHERTYPE_VLAN, tci)
    out += struct.pack("!H", header.ethertype)
    return out + payload


def decode_ethernet(frame: bytes) -> tuple[EthernetHeader, bytes]:
    """Parse an Ethernet frame; returns (header, payload)."""
    if len(frame) < ETH_HEADER_LEN:
        raise ValueError(f"frame too short for Ethernet: {len(frame)} bytes")
    dst = int.from_bytes(frame[0:6], "big")
    src = int.from_bytes(frame[6:12], "big")
    ethertype = struct.unpack("!H", frame[12:14])[0]
    offset = ETH_HEADER_LEN
    vlan = VLAN_NONE
    vlan_pcp = 0
    if ethertype == ETHERTYPE_VLAN:
        if len(frame) < ETH_HEADER_LEN + VLAN_TAG_LEN:
            raise ValueError("frame too short for VLAN tag")
        tci = struct.unpack("!H", frame[14:16])[0]
        vlan_pcp = (tci >> 13) & 0x7
        vlan = tci & 0xFFF
        ethertype = struct.unpack("!H", frame[16:18])[0]
        offset += VLAN_TAG_LEN
    header = EthernetHeader(
        dst=dst, src=src, ethertype=ethertype, vlan=vlan, vlan_pcp=vlan_pcp
    )
    return header, frame[offset:]
