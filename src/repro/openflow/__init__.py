"""OpenFlow 1.0 data model.

This package implements the subset of OpenFlow 1.0 that Monocle needs:

* the 12-tuple match (:mod:`repro.openflow.fields`,
  :mod:`repro.openflow.match`) with exact/wildcard fields and CIDR prefix
  masks on the IP fields,
* actions — output, header rewrites, multicast forwarding sets and ECMP
  groups (:mod:`repro.openflow.actions`),
* prioritized rules and TCAM-style flow tables
  (:mod:`repro.openflow.rule`, :mod:`repro.openflow.table`),
* control-plane messages: FlowMod, BarrierRequest/Reply, PacketOut,
  PacketIn, FlowRemoved and errors (:mod:`repro.openflow.messages`).

The *abstract header* used for SAT-based probe generation (a flat bit
vector concatenating the match fields) is defined by
:data:`repro.openflow.fields.HEADER` and shared by the matcher, the
constraint compiler and the packet crafting layer.
"""

from repro.openflow.fields import (
    Field,
    FieldName,
    HeaderLayout,
    HEADER,
    HEADER_BITS,
)
from repro.openflow.match import Match, FieldMatch
from repro.openflow.actions import (
    Action,
    ActionList,
    Drop,
    EcmpGroup,
    Forward,
    Multicast,
    OutcomeKind,
    SetField,
    CONTROLLER_PORT,
)
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import (
    FlowTable,
    TableMissPolicy,
    pack_header,
    table_fingerprint,
)
from repro.openflow.tuplespace import TupleSpaceIndex
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoRequest,
    EchoReply,
    ErrorMsg,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    Message,
    PacketIn,
    PacketOut,
)

__all__ = [
    "Field",
    "FieldName",
    "HeaderLayout",
    "HEADER",
    "HEADER_BITS",
    "Match",
    "FieldMatch",
    "Action",
    "ActionList",
    "Drop",
    "EcmpGroup",
    "Forward",
    "Multicast",
    "OutcomeKind",
    "SetField",
    "CONTROLLER_PORT",
    "Rule",
    "RuleOutcome",
    "FlowTable",
    "TableMissPolicy",
    "TupleSpaceIndex",
    "pack_header",
    "table_fingerprint",
    "BarrierReply",
    "BarrierRequest",
    "EchoRequest",
    "EchoReply",
    "ErrorMsg",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "Message",
    "PacketIn",
    "PacketOut",
]
