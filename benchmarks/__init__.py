"""Paper-figure benchmarks, runnable via pytest from the repo root.

The package marker lets ``python -m pytest`` import the modules as
``benchmarks.test_*`` so their relative ``from .conftest import ...``
imports resolve (pytest prepends the repo root to ``sys.path``).
"""
