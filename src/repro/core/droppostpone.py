"""Drop-postponing: reliable monitoring of drop rules (paper §4.3).

Negative probing (no probe back => rule present) risks false positives.
Drop-postponing avoids it: instead of the drop rule, install a variant
that *tags* matching packets with a special header value and forwards
them to a neighbor; the neighbor pre-installs a rule dropping tagged
traffic (below the catch rule's priority, above production rules).
Probes tagged this way still reach Monocle via the neighbor's catch
rule, so the installation is positively confirmed; production traffic
is dropped one hop later.  After confirmation, the rule is replaced by
the real drop.
"""

from __future__ import annotations

from repro.openflow.actions import ActionList, Drop, Forward, SetField
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule

#: Reserved nw_tos value marking "this packet is scheduled to be dropped".
DROP_TAG_TOS = 0x3F

#: Priority of the neighbor-side tag-drop rule: below the catch rule
#: (0xFFFF) so probes still reach the controller, above filter rules and
#: all production rules.
TAG_DROP_PRIORITY = 0xFFFE


def postpone_drop_rule(
    rule: Rule,
    neighbor_port: int,
    tag_field: FieldName = FieldName.NW_TOS,
    tag_value: int = DROP_TAG_TOS,
) -> Rule:
    """The temporary stand-in for a drop rule (Figure 3, left switch).

    Matches the same packets, rewrites ``tag_field`` to ``tag_value``
    and forwards to ``neighbor_port`` instead of dropping.

    Raises:
        ValueError: if the rule is not a drop rule.
    """
    if rule.forwarding_set():
        raise ValueError(f"not a drop rule: {rule!r}")
    actions = ActionList(
        (SetField(tag_field, tag_value), Forward(neighbor_port))
    )
    return rule.with_actions(actions)


def finalize_drop_rule(postponed: Rule) -> Rule:
    """The real drop rule to swap in once the stand-in is confirmed."""
    return postponed.with_actions(ActionList((Drop(),)))


def tag_drop_rule(
    tag_field: FieldName = FieldName.NW_TOS,
    tag_value: int = DROP_TAG_TOS,
) -> Rule:
    """The neighbor-side rule dropping tagged production traffic.

    Pre-installed on every switch (Figure 3, right switch, rule 2).
    The catch rule outranks it, so tagged *probes* still reach Monocle.
    """
    return Rule(
        priority=TAG_DROP_PRIORITY,
        match=Match.build(**{tag_field.value: tag_value}),
        actions=ActionList((Drop(),)),
    )
