"""Tests for topology generators, synthetic corpora and ACL datasets."""

import networkx as nx
import pytest

from repro.datasets import (
    CAMPUS_PROFILE,
    STANFORD_PROFILE,
    campus_table,
    stanford_table,
)
from repro.openflow.fields import FieldName
from repro.topology.corpus import (
    rocketfuel_like_corpus,
    topology_zoo_like_corpus,
)
from repro.topology.generators import (
    edge_switches,
    fat_tree,
    linear,
    ring,
    star,
    triangle,
)
from repro.topology.io import read_edgelist, write_edgelist


class TestGenerators:
    def test_star(self):
        graph = star(4)
        assert graph.number_of_nodes() == 5
        assert graph.degree["hub"] == 4

    def test_triangle(self):
        graph = triangle()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_linear(self):
        graph = linear(5)
        assert graph.number_of_edges() == 4
        with pytest.raises(ValueError):
            linear(0)

    def test_ring(self):
        graph = ring(6)
        assert all(graph.degree[n] == 2 for n in graph.nodes)
        with pytest.raises(ValueError):
            ring(2)

    def test_fat_tree_k4_is_20_switches(self):
        graph = fat_tree(4)
        assert graph.number_of_nodes() == 20  # §8.4's 20-switch FatTree
        assert len(edge_switches(graph)) == 8
        # Edge switches connect only to their pod's aggregation.
        for edge in edge_switches(graph):
            assert graph.degree[edge] == 2

    def test_fat_tree_structure(self):
        graph = fat_tree(4)
        cores = [n for n in graph.nodes if n.startswith("core")]
        aggs = [n for n in graph.nodes if n.startswith("agg")]
        assert len(cores) == 4
        assert len(aggs) == 8
        for agg in aggs:
            assert graph.degree[agg] == 4  # 2 cores + 2 edges

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_fat_tree_connected(self):
        assert nx.is_connected(fat_tree(4))
        assert nx.is_connected(fat_tree(6))


class TestCorpora:
    def test_zoo_corpus_shape(self):
        corpus = topology_zoo_like_corpus()
        assert len(corpus) == 261
        sizes = [g.number_of_nodes() for g in corpus]
        assert min(sizes) >= 4
        assert max(sizes) <= 754
        # Mostly small graphs, like the real zoo.
        assert sum(1 for s in sizes if s <= 40) > len(sizes) / 2

    def test_zoo_graphs_connected(self):
        corpus = topology_zoo_like_corpus()
        assert all(nx.is_connected(g) for g in corpus[:50])

    def test_zoo_deterministic(self):
        # Bypass the memoization cache for one arm so this still checks
        # generation determinism, not just cache identity.
        a = topology_zoo_like_corpus.__wrapped__(seed=1)
        b = topology_zoo_like_corpus(seed=1)
        assert [g.number_of_edges() for g in a] == [
            g.number_of_edges() for g in b
        ]

    def test_zoo_corpus_memoized(self):
        assert topology_zoo_like_corpus(seed=1) is topology_zoo_like_corpus(
            seed=1
        )
        assert rocketfuel_like_corpus() is rocketfuel_like_corpus()

    def test_rocketfuel_corpus_shape(self):
        corpus = rocketfuel_like_corpus()
        sizes = [g.number_of_nodes() for g in corpus]
        assert len(corpus) == 10
        assert max(sizes) == 11800  # the paper's largest Rocketfuel map
        assert all(nx.is_connected(g) for g in corpus[:3])

    def test_corpus_names(self):
        assert topology_zoo_like_corpus()[0].graph["name"] == "zoo000"
        assert rocketfuel_like_corpus()[0].graph["name"] == "rocketfuel0"


class TestTopologyIo:
    def test_roundtrip(self, tmp_path):
        graph = fat_tree(4)
        path = tmp_path / "topo.edges"
        write_edgelist(graph, path)
        loaded = read_edgelist(path)
        assert set(loaded.edges) == {
            (str(u), str(v)) for u, v in graph.edges
        } or loaded.number_of_edges() == graph.number_of_edges()

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "topo.edges"
        path.write_text("# comment\n\na b\nb c\n")
        graph = read_edgelist(path)
        assert sorted(graph.nodes) == ["a", "b", "c"]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "topo.edges"
        path.write_text("a b c\n")
        with pytest.raises(ValueError):
            read_edgelist(path)


class TestAclDatasets:
    def test_table_sizes_match_paper(self):
        assert len(stanford_table()) == STANFORD_PROFILE.num_rules == 2755
        assert len(campus_table()) == CAMPUS_PROFILE.num_rules == 10958

    def test_deterministic(self):
        a = stanford_table(seed=3)
        b = stanford_table(seed=3)
        assert [r.match for r in a] == [r.match for r in b]

    def test_priorities_unique_descending(self):
        table = stanford_table()
        priorities = [r.priority for r in table]
        assert priorities == sorted(priorities, reverse=True)
        assert len(set(priorities)) == len(priorities)

    def test_rules_are_well_formed(self):
        # §5.2: a rule matching tp_dst must also pin nw_proto; a rule
        # matching nw_proto must pin dl_type.
        for table in (stanford_table(), campus_table()):
            for rule in table:
                fields = set(rule.match.fields)
                if FieldName.TP_DST in fields:
                    assert FieldName.NW_PROTO in fields
                if FieldName.NW_PROTO in fields:
                    assert FieldName.DL_TYPE in fields

    def test_no_reserved_field_usage(self):
        # ACL rules must not match or rewrite the probing VLAN field.
        for rule in stanford_table():
            assert FieldName.DL_VLAN not in rule.match.fields
            assert FieldName.DL_VLAN not in rule.actions.rewritten_fields()

    def test_has_both_actions(self):
        table = campus_table()
        kinds = {rule.outcome_kind() for rule in table}
        assert "drop" in kinds
        assert "unicast" in kinds

    def test_overlap_structure_exists(self):
        # Shadow/redundant construction must produce genuine overlaps.
        table = stanford_table()
        rules = table.rules()
        sample = rules[: 200]
        overlaps = sum(
            1
            for i, a in enumerate(sample)
            for b in sample[i + 1 :]
            if a.match.overlaps(b.match)
        )
        assert overlaps > 0
