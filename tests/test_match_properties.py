"""Property-based tests for match semantics (hypothesis).

The key invariants the probe generator's correctness rests on:

* ``overlaps`` is symmetric and consistent with its definition
  (some concrete header satisfies both),
* ``covers`` implies every matching header of the covered also
  matches the coverer,
* the packed bigint overlap test equals the field-wise test,
* ``bit_constraints`` exactly characterizes ``matches``.
"""

from hypothesis import given, settings, strategies as st

from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import FieldMatch, Match

# A compact universe so exhaustive cross-checks stay cheap.
FIELDS = [
    FieldName.NW_SRC, FieldName.NW_DST, FieldName.NW_TOS, FieldName.TP_DST
]


@st.composite
def field_match(draw, name):
    field = HEADER.field(name)
    kind = draw(st.sampled_from(["exact", "prefix", "wildcard"]))
    if kind == "wildcard":
        return None
    if kind == "exact":
        return FieldMatch.exact(
            field, draw(st.integers(0, min(field.max_value, 7)))
        )
    prefix_len = draw(st.integers(1, min(field.width, 6)))
    value = draw(st.integers(0, min(field.max_value, 63))) << (
        field.width - min(field.width, 6)
    )
    return FieldMatch.prefix(field, value, prefix_len)


@st.composite
def match_strategy(draw):
    fields = {}
    for name in FIELDS:
        fm = draw(field_match(name))
        if fm is not None:
            fields[name] = fm
    return Match(fields)


@st.composite
def header_strategy(draw):
    return {
        name: draw(st.integers(0, min(HEADER.field(name).max_value, 255)))
        << max(0, HEADER.field(name).width - 8)
        for name in FIELDS
    }


@settings(max_examples=200, deadline=None)
@given(match_strategy(), match_strategy())
def test_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@settings(max_examples=200, deadline=None)
@given(match_strategy(), header_strategy())
def test_bit_constraints_characterize_matches(match, header):
    """A header matches iff every fixed bit agrees."""
    packed = HEADER.pack(header)
    bits_agree = all(
        bool(packed >> (HEADER.total_bits - 1 - index) & 1) == required
        for index, required in match.bit_constraints()
    )
    assert match.matches(header) == bits_agree


@settings(max_examples=200, deadline=None)
@given(match_strategy(), match_strategy(), header_strategy())
def test_covers_implication(a, b, header):
    """If a covers b, every b-matching header matches a."""
    if a.covers(b) and b.matches(header):
        assert a.matches(header)


@settings(max_examples=200, deadline=None)
@given(match_strategy(), match_strategy(), header_strategy())
def test_common_header_implies_overlap(a, b, header):
    """A shared concrete header witnesses overlap."""
    if a.matches(header) and b.matches(header):
        assert a.overlaps(b)


@settings(max_examples=200, deadline=None)
@given(match_strategy())
def test_self_overlap_and_cover(match):
    assert match.overlaps(match)
    assert match.covers(match)
    assert Match.wildcard().covers(match)
    assert match.overlaps(Match.wildcard())


@settings(max_examples=100, deadline=None)
@given(match_strategy(), st.integers(0, 63))
def test_rewritten_by_pins_value(match, value):
    rewritten = match.rewritten_by({FieldName.NW_TOS: value & 0x3F})
    fm = rewritten.constraint(FieldName.NW_TOS)
    assert fm.matches(value & 0x3F)
    # Any other value of the pinned field no longer matches.
    other = (value + 1) & 0x3F
    if other != (value & 0x3F):
        assert not fm.matches(other)
