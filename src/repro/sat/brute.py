"""Exhaustive reference SAT solver.

Used only by the test suite: enumerates all assignments over the formula's
variables and reports the first model found.  Exponential by nature, so it
is guarded against formulas with more than 24 variables.
"""

from __future__ import annotations

from repro.sat.cnf import CNF

MAX_BRUTE_VARS = 24


def brute_force_solve(cnf: CNF) -> dict[int, bool] | None:
    """Return a satisfying assignment by enumeration, or None if UNSAT.

    Raises:
        ValueError: if the formula has too many variables to enumerate.
    """
    n = cnf.num_vars
    if n > MAX_BRUTE_VARS:
        raise ValueError(
            f"brute force limited to {MAX_BRUTE_VARS} vars, got {n}"
        )
    clause_list = list(cnf.clauses())
    for bits in range(1 << n):
        assignment = {
            var: bool(bits >> (var - 1) & 1) for var in range(1, n + 1)
        }
        ok = True
        for clause in clause_list:
            if not clause:
                return None  # empty clause: UNSAT regardless of assignment
            if not any((lit > 0) == assignment[abs(lit)] for lit in clause):
                ok = False
                break
        if ok:
            return assignment
    return None


def count_models(cnf: CNF) -> int:
    """Number of satisfying assignments (for encoding tests)."""
    n = cnf.num_vars
    if n > MAX_BRUTE_VARS:
        raise ValueError(
            f"model counting limited to {MAX_BRUTE_VARS} vars, got {n}"
        )
    clause_list = list(cnf.clauses())
    count = 0
    for bits in range(1 << n):
        assignment = {
            var: bool(bits >> (var - 1) & 1) for var in range(1, n + 1)
        }
        if all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clause_list
        ):
            count += 1
    return count
