"""Declarative fleet scenarios: spec in, metrics out.

:class:`ScenarioSpec` names a topology, a switch profile, a workload
mix, and a failure schedule; :func:`run_scenario` builds the
deployment, runs it on the discrete-event kernel, and returns a
:class:`ScenarioResult` with aggregated metrics — so examples and
benchmarks stop hand-rolling orchestration.

The module doubles as the ``repro-fleet`` console entry point::

    repro-fleet --topology ring --size 12 --duration 3 --drops 2 --churn 40

Environment: ``REPRO_BENCH_SCALE`` scales ``rules_per_switch`` (CI
smoke runs use 0.1), ``REPRO_BENCH_SEED`` overrides the default seed.
"""

from __future__ import annotations

import argparse
import json
import os
import time as _time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import networkx as nx

from repro.core.catching import CapacityError, ColoringAlgorithm
from repro.core.monitor import MonitorConfig
from repro.core.schedule import POLICIES as SCHEDULE_POLICIES
from repro.fleet.deployment import FleetDeployment
from repro.fleet.failures import (
    FailureSpec,
    Injection,
    LinkFailure,
    RuleCorruption,
    RuleDrop,
    schedule_failures,
)
from repro.fleet.metrics import FleetMetrics, collect_fleet_metrics
from repro.fleet.report import format_fleet_report
from repro.obs import NullObserver, Observer
from repro.fleet.workloads import (
    BackgroundTraffic,
    RuleChurn,
    SteadyRules,
    Workload,
)
from repro.switches.profiles import (
    DELL_8132F,
    DELL_S4810,
    HP_5406ZL,
    IDEAL,
    OVS,
    PICA8,
    SwitchProfile,
)
from repro.fleet.sharding import DEFAULT_SHARD_POLICY, SHARD_POLICIES
from repro.topology.corpus import topology_zoo_like_corpus
from repro.topology.generators import (
    fat_tree,
    islands,
    linear,
    ring,
    star,
    triangle,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.fleet.shardworker import WorkerCrash, WorkerHang


class ScenarioError(ValueError):
    """The scenario spec is inconsistent or unbuildable."""


def _zoo_topology(size: int) -> nx.Graph:
    """The first corpus graph with at least ``size`` nodes."""
    for graph in topology_zoo_like_corpus():
        if graph.number_of_nodes() >= size:
            return graph
    raise ScenarioError(f"no zoo-like graph with >= {size} nodes")


TOPOLOGIES: dict[str, Callable[[int], nx.Graph]] = {
    "ring": ring,
    "linear": linear,
    "star": star,
    "triangle": lambda size: triangle(),
    "fat_tree": fat_tree,
    "islands": islands,
    "zoo": _zoo_topology,
}

PROFILES: dict[str, SwitchProfile] = {
    "ovs": OVS,
    "hp5406zl": HP_5406ZL,
    "dell_s4810": DELL_S4810,
    "dell_8132f": DELL_8132F,
    "pica8": PICA8,
    "ideal": IDEAL,
}

ALGORITHMS = {a.value: a for a in ColoringAlgorithm}


@dataclass(frozen=True)
class ScenarioSpec:
    """One fleet scenario, fully determined by its fields + seed."""

    topology: str = "ring"
    size: int = 12
    profile: str = "ovs"
    duration: float = 3.0
    seed: int = 2015
    rules_per_switch: int = 20
    probe_rate: float = 500.0
    probe_timeout: float = 0.150
    #: Steady-state probe pipelining: concurrent in-flight probes per
    #: switch, each on a distinct reserved catch value.  ``1`` keeps
    #: the paper's one-in-flight cycle byte-for-byte; ``W`` cuts
    #: cycle-bound detection latency toward 1/W.  Clamped per
    #: deployment when the catch field can't hold W values per color.
    probe_window: int = 1
    update_deadline: float = 1.0
    dynamic: bool = True
    strategy: int = 1
    algorithm: str = "exact"
    workloads: tuple[Workload, ...] = ()
    failures: tuple[FailureSpec, ...] = ()
    max_events: int | None = None
    #: Dedupe probe-gen contexts across identical-table switches.
    share_contexts: bool = True
    #: Probe-cycle scheduling policy, fleet-wide (per-switch overrides
    #: go through :class:`~repro.fleet.deployment.FleetDeployment`
    #: directly): ``round_robin`` (§3 baseline), ``churn_first``
    #: (recently-churned rules jump the queue) or ``weighted``.
    probe_policy: str = "round_robin"
    #: Observability (:mod:`repro.obs`).  Tracing + live metrics turn
    #: on when ``observe`` is True or any output/interval below is
    #: set; the default leaves the NullObserver's no-op path in place.
    observe: bool = False
    #: Write the trace as JSONL / Chrome ``trace_event`` after the run.
    trace_out: str | None = None
    trace_chrome: str | None = None
    #: Write the Prometheus text exposition after the run.
    metrics_out: str | None = None
    #: Sim seconds between metric snapshots (the report's timeline
    #: granularity); None picks duration/10 when observing.
    obs_snapshot_interval: float | None = None
    #: Trace ring-buffer bound (events retained).
    trace_capacity: int = 65536
    #: Sharded runtime (:mod:`repro.fleet.coordinator`): split the
    #: fleet across this many worker processes, each with its own sim
    #: kernel.  ``1`` keeps the in-process path; ``"auto"`` sizes the
    #: fleet to this host's usable CPUs (scheduling affinity mask).
    workers: int | str = 1
    #: Shard planner policy (:data:`repro.fleet.sharding.
    #: SHARD_POLICIES`): ``locality`` keeps neighborhoods together to
    #: minimize cross-shard links; ``round_robin`` ignores links.
    shard_policy: str = DEFAULT_SHARD_POLICY
    #: Conservative-time barrier window (sim seconds) for scenarios
    #: whose shard cut crosses topology links; ``None`` derives one
    #: probe timeout.  Irrelevant for pure partitions (barrier-free).
    barrier_quantum: float | None = None
    #: Alarm hysteresis (:class:`~repro.core.monitor.MonitorConfig`):
    #: consecutive missing-probe strikes before a steady-state
    #: ``missing`` alarm fires.  ``1`` keeps the paper baseline
    #: (alarm on first timeout); ``2``+ rides out lossy control
    #: channels at the cost of one suspicion re-probe per strike.
    alarm_confirmations: int = 1
    #: Distinct suspect rules inside the quarantine window that
    #: downgrade a switch to best-effort monitoring (``0`` disables
    #: quarantine entirely — the default).
    quarantine_threshold: int = 0
    #: Worker chaos hooks (:class:`~repro.fleet.shardworker.
    #: WorkerCrash` / :class:`~repro.fleet.shardworker.WorkerHang`)
    #: exercising the self-healing coordinator; requires a sharded run.
    chaos: tuple = ()
    #: Per-shard respawn budget for the self-healing coordinator; a
    #: shard that dies more often than this is marked failed and the
    #: scenario completes degraded on the survivors.
    max_worker_restarts: int = 2
    #: Wall-clock seconds the coordinator waits for a worker reply
    #: before treating it as hung; ``None`` uses the coordinator
    #: default (60s).
    worker_timeout: float | None = None

    # ----- validation -----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency."""
        if self.topology not in TOPOLOGIES:
            raise ScenarioError(
                f"unknown topology {self.topology!r}; "
                f"choose from {sorted(TOPOLOGIES)}"
            )
        if self.profile not in PROFILES:
            raise ScenarioError(
                f"unknown profile {self.profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ScenarioError(
                f"unknown coloring algorithm {self.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        if self.strategy not in (1, 2):
            raise ScenarioError(
                f"strategy must be 1 or 2, not {self.strategy}"
            )
        if self.probe_policy not in SCHEDULE_POLICIES:
            raise ScenarioError(
                f"unknown probe policy {self.probe_policy!r}; "
                f"choose from {sorted(SCHEDULE_POLICIES)}"
            )
        if self.duration <= 0:
            raise ScenarioError(f"duration must be positive: {self.duration}")
        if self.probe_rate <= 0:
            raise ScenarioError(
                f"probe_rate must be positive: {self.probe_rate}"
            )
        if self.probe_window < 1:
            raise ScenarioError(
                f"probe_window must be >= 1: {self.probe_window}"
            )
        if self.probe_timeout <= 0 or self.update_deadline <= 0:
            raise ScenarioError("timeouts must be positive")
        if self.rules_per_switch < 0:
            raise ScenarioError(
                f"rules_per_switch must be >= 0: {self.rules_per_switch}"
            )
        if (
            self.obs_snapshot_interval is not None
            and self.obs_snapshot_interval < 0
        ):
            raise ScenarioError(
                f"obs_snapshot_interval must be >= 0: "
                f"{self.obs_snapshot_interval}"
            )
        if self.trace_capacity < 1:
            raise ScenarioError(
                f"trace_capacity must be >= 1: {self.trace_capacity}"
            )
        if self.size < 1:
            raise ScenarioError(f"size must be >= 1: {self.size}")
        if isinstance(self.workers, str):
            if self.workers != "auto":
                raise ScenarioError(
                    f"workers must be an int >= 1 or 'auto', "
                    f"not {self.workers!r}"
                )
        elif self.workers < 1:
            raise ScenarioError(f"workers must be >= 1: {self.workers}")
        if self.alarm_confirmations < 1:
            raise ScenarioError(
                f"alarm_confirmations must be >= 1: "
                f"{self.alarm_confirmations}"
            )
        if self.quarantine_threshold < 0:
            raise ScenarioError(
                f"quarantine_threshold must be >= 0: "
                f"{self.quarantine_threshold}"
            )
        if self.max_worker_restarts < 0:
            raise ScenarioError(
                f"max_worker_restarts must be >= 0: "
                f"{self.max_worker_restarts}"
            )
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ScenarioError(
                f"worker_timeout must be positive: {self.worker_timeout}"
            )
        if self.chaos:
            if self.workers == 1:
                raise ScenarioError(
                    "chaos hooks target shard workers; they require "
                    "workers > 1 (or 'auto')"
                )
            for hook in self.chaos:
                kind = getattr(hook, "kind", None)
                if kind not in ("kill", "hang"):
                    raise ScenarioError(
                        f"unknown chaos hook kind {kind!r} "
                        f"(expected WorkerCrash or WorkerHang)"
                    )
                if hook.shard < 0 or hook.window < 0:
                    raise ScenarioError(
                        f"chaos hook shard/window must be >= 0: {hook}"
                    )
        if self.shard_policy not in SHARD_POLICIES:
            raise ScenarioError(
                f"unknown shard policy {self.shard_policy!r}; "
                f"choose from {sorted(SHARD_POLICIES)}"
            )
        if self.barrier_quantum is not None and self.barrier_quantum <= 0:
            raise ScenarioError(
                f"barrier_quantum must be positive: {self.barrier_quantum}"
            )
        if self.resolved_workers() > 1 and self.metrics_out:
            raise ScenarioError(
                "metrics_out is incompatible with workers > 1: the "
                "Prometheus registry lives per worker process and its "
                "expositions cannot be merged (use --json-out, whose "
                "snapshots the coordinator does merge)"
            )
        if self.resolved_workers() > 1 and self.max_events is not None:
            raise ScenarioError(
                "max_events is incompatible with workers > 1: the "
                "event budget is per shard kernel, so a fleet-wide cap "
                "cannot be enforced"
            )
        graph = self.build_topology()
        nodes = set(graph.nodes)
        for spec in self.failures:
            if spec.at < 0 or spec.at >= self.duration:
                raise ScenarioError(
                    f"failure at t={spec.at} outside the scenario "
                    f"duration {self.duration}"
                )
            for attr in ("node", "u", "v", "toward"):
                if not hasattr(spec, attr):
                    continue
                value = getattr(spec, attr)
                if value is None:
                    # The None defaults exist only to satisfy dataclass
                    # inheritance; a spec without its switch is invalid.
                    raise ScenarioError(
                        f"{type(spec).__name__} at t={spec.at} is missing "
                        f"its {attr!r} switch"
                    )
                if value not in nodes:
                    raise ScenarioError(
                        f"failure references unknown switch {value!r} "
                        f"(topology {self.topology}-{self.size})"
                    )

    def build_topology(self) -> nx.Graph:
        """Instantiate the named topology at the requested size."""
        try:
            return TOPOLOGIES[self.topology](self.size)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from exc

    def resolved_workers(self) -> int:
        """``workers`` with ``"auto"`` resolved to this host's usable
        CPU count (the scheduling-affinity mask where available, which
        respects cgroup/taskset limits; raw ``cpu_count`` otherwise).
        """
        if self.workers == "auto":
            try:
                return len(os.sched_getaffinity(0))
            except (AttributeError, OSError):  # pragma: no cover
                return os.cpu_count() or 1
        return self.workers

    def monitor_config(self) -> MonitorConfig:
        """The MonitorConfig all fleet Monitors share."""
        return MonitorConfig(
            probe_rate=self.probe_rate,
            probe_timeout=self.probe_timeout,
            probe_window=self.probe_window,
            update_deadline=self.update_deadline,
            alarm_confirmations=self.alarm_confirmations,
            quarantine_threshold=self.quarantine_threshold,
        )

    @property
    def wants_observer(self) -> bool:
        """Does this spec need live tracing + metrics?"""
        return bool(
            self.observe
            or self.trace_out
            or self.trace_chrome
            or self.metrics_out
            or self.obs_snapshot_interval
        )

    def build_observer(self) -> "Observer | None":
        """The spec's observer, or None for the NullObserver default."""
        if not self.wants_observer:
            return None
        interval = self.obs_snapshot_interval
        if interval is None:
            interval = self.duration / 10.0
        return Observer(
            trace_capacity=self.trace_capacity,
            snapshot_interval=interval or None,
        )


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    spec: ScenarioSpec
    #: The live deployment for in-process runs; ``None`` after a
    #: sharded run (the deployments lived in the worker processes).
    deployment: FleetDeployment | None
    injections: list[Injection]
    metrics: FleetMetrics
    #: The deployment's observer — an :class:`~repro.obs.Observer`
    #: when the spec asked for observability, else the NullObserver.
    observer: "Observer | NullObserver | None" = None
    #: Human-readable lines describing the artifacts :meth:`export`
    #: wrote (run_scenario exports once, right after collection).
    exported: list[str] = field(default_factory=list)
    #: Wall-clock phase timings (``run_seconds``: the simulation run,
    #: excluding deployment build).  Deliberately kept out of
    #: :meth:`FleetMetrics.to_json` and the report — those stay pure
    #: functions of the spec + seed; benchmarks read this field.
    timings: dict[str, float] = field(default_factory=dict)
    #: Self-healing summary for sharded runs: total worker respawns
    #: the coordinator performed (0 for in-process runs).
    restarts: int = 0
    #: True when a shard exhausted its restart budget: the result
    #: covers only the surviving shards — partial, but not an abort.
    degraded: bool = False

    def report(self) -> str:
        """The formatted fleet report."""
        return format_fleet_report(self.metrics)

    def export(self) -> list[str]:
        """Write the spec's requested artifacts; returns what was written."""
        written: list[str] = []
        spec = self.spec
        obs = self.observer
        if obs is None or not obs.enabled:
            return written
        if spec.trace_out:
            count = obs.trace.export_jsonl(spec.trace_out)
            written.append(f"{spec.trace_out} ({count} trace events)")
        if spec.trace_chrome:
            count = obs.trace.export_chrome(spec.trace_chrome)
            written.append(
                f"{spec.trace_chrome} (chrome trace, {count} events)"
            )
        if spec.metrics_out:
            text = obs.metrics.prometheus_text()
            with open(spec.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(text)
            written.append(f"{spec.metrics_out} (prometheus exposition)")
        self.exported = written
        return written


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Plan, deploy, inject, detect, report — one call.

    The full pipeline: validate the spec, compute the catching plan and
    instantiate a monitored switch per topology node, install the
    workload mix, arm the failure schedule, run the shared kernel for
    ``spec.duration`` simulated seconds, and aggregate fleet metrics.

    ``spec.workers > 1`` hands the scenario to the sharded runtime
    (:func:`~repro.fleet.coordinator.run_sharded_scenario`): same spec,
    same metrics bundle, per-shard worker processes instead of one
    kernel.
    """
    spec.validate()
    workers = spec.resolved_workers()
    if workers > 1:
        # Imported lazily: the coordinator imports this module for the
        # spec/result types, so a top-level import would be circular.
        from repro.fleet.coordinator import run_sharded_scenario

        if spec.workers != workers:
            spec = replace(spec, workers=workers)
        return run_sharded_scenario(spec)
    if spec.workers != 1:
        # "auto" resolved to a single CPU: plain in-process run (worker
        # chaos hooks have no workers to bite).
        spec = replace(spec, workers=1, chaos=())
    observer = spec.build_observer()
    try:
        deployment = FleetDeployment(
            spec.build_topology(),
            profiles=PROFILES[spec.profile],
            config=spec.monitor_config(),
            dynamic=spec.dynamic,
            seed=spec.seed,
            strategy=spec.strategy,
            algorithm=ALGORITHMS[spec.algorithm],
            share_contexts=spec.share_contexts,
            probe_policy=spec.probe_policy,
            obs=observer,
        )
    except CapacityError as exc:
        raise ScenarioError(str(exc)) from exc

    workloads: list[Workload] = [SteadyRules(spec.rules_per_switch)]
    workloads.extend(spec.workloads)
    for workload in workloads:
        workload.setup(deployment)

    injections = schedule_failures(deployment, spec.failures)
    deployment.start_monitoring()
    run_started = _time.perf_counter()
    deployment.run(spec.duration, max_events=spec.max_events)
    run_seconds = _time.perf_counter() - run_started

    metrics = collect_fleet_metrics(
        deployment,
        injections=injections,
        workloads=workloads,
        duration=spec.duration,
    )
    result = ScenarioResult(
        spec=spec,
        deployment=deployment,
        injections=injections,
        metrics=metrics,
        observer=deployment.obs,
        timings={"run_seconds": run_seconds},
    )
    result.export()
    return result


# ----- command-line entry point -------------------------------------------


def _default_failures(
    spec: ScenarioSpec, drops: int, corruptions: int, link_failures: int
) -> tuple[FailureSpec, ...]:
    """Spread the requested failures over distinct switches and times."""
    graph = spec.build_topology()
    nodes = sorted(graph.nodes, key=repr)
    edges = sorted(graph.edges, key=lambda e: (repr(e[0]), repr(e[1])))
    total = drops + corruptions + link_failures
    if total == 0:
        return ()
    window = spec.duration / 2.0
    step = window / total
    failures: list[FailureSpec] = []
    when = spec.duration / 4.0
    for i in range(drops):
        failures.append(
            RuleDrop(at=when, node=nodes[i % len(nodes)], rule_index=i)
        )
        when += step
    for i in range(corruptions):
        failures.append(
            RuleCorruption(
                at=when,
                node=nodes[(drops + i) % len(nodes)],
                # Offset past the drop indices so a drop and a
                # corruption landing on the same switch never pick the
                # same victim rule.
                rule_index=drops + i,
            )
        )
        when += step
    for i in range(link_failures):
        u, v = edges[i % len(edges)]
        failures.append(LinkFailure(at=when, u=u, v=v))
        when += step
    return tuple(failures)


def _workers_arg(text: str) -> int | str:
    """``--workers``: a positive int or the literal ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _chaos_arg(text: str) -> "WorkerCrash | WorkerHang":
    """``--chaos kill:SHARD[@WINDOW]`` / ``hang:SHARD[@WINDOW]``."""
    from repro.fleet.shardworker import WorkerCrash, WorkerHang

    kind, _, rest = text.partition(":")
    shard_text, _, window_text = rest.partition("@")
    try:
        shard = int(shard_text)
        window = int(window_text) if window_text else 0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected kill:SHARD[@WINDOW] or hang:SHARD[@WINDOW], "
            f"got {text!r}"
        ) from None
    if kind == "kill":
        return WorkerCrash(shard=shard, window=window)
    if kind == "hang":
        return WorkerHang(shard=shard, window=window)
    raise argparse.ArgumentTypeError(
        f"unknown chaos kind {kind!r} (kill or hang)"
    )


def main(argv: list[str] | None = None) -> int:
    """``repro-fleet``: run one scenario and print the fleet report.

    Returns a non-zero exit code when an injected failure went
    undetected or any healthy switch raised a false alarm, so CI smoke
    runs fail loudly in both directions.
    """
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Run a network-wide Monocle monitoring scenario.",
    )
    parser.add_argument(
        "--topology", default="ring", choices=sorted(TOPOLOGIES)
    )
    parser.add_argument("--size", type=int, default=12)
    parser.add_argument("--profile", default="ovs", choices=sorted(PROFILES))
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--rules", type=int, default=20,
                        help="production rules per switch")
    parser.add_argument("--probe-rate", type=float, default=500.0)
    parser.add_argument("--probe-window", type=int, default=1,
                        metavar="W",
                        help="concurrent in-flight probes per switch "
                             "(pipelining; 1 = paper baseline, W cuts "
                             "cycle-bound detection latency toward "
                             "1/W)")
    parser.add_argument("--strategy", type=int, default=1, choices=(1, 2))
    parser.add_argument("--algorithm", default="exact",
                        choices=sorted(ALGORITHMS))
    parser.add_argument("--static", action="store_true",
                        help="disable dynamic update confirmation")
    parser.add_argument("--probe-policy", default="round_robin",
                        choices=sorted(SCHEDULE_POLICIES),
                        help="probe-cycle scheduling policy")
    parser.add_argument("--workers", type=_workers_arg, default=1,
                        metavar="N|auto",
                        help="shard the fleet across this many worker "
                             "processes (1 = in-process, auto = usable "
                             "CPU count)")
    parser.add_argument("--shard-policy", default=DEFAULT_SHARD_POLICY,
                        choices=sorted(SHARD_POLICIES),
                        help="topology partitioning policy for --workers")
    parser.add_argument("--barrier-quantum", type=float, default=None,
                        metavar="SECONDS",
                        help="cross-shard barrier window (default: one "
                             "probe timeout)")
    parser.add_argument("--alarm-confirmations", type=int, default=1,
                        metavar="K",
                        help="missing-probe strikes before a steady "
                             "alarm fires (hysteresis; 1 = paper "
                             "baseline)")
    parser.add_argument("--quarantine-threshold", type=int, default=0,
                        metavar="N",
                        help="distinct suspect rules that quarantine a "
                             "switch to best-effort (0 = disabled)")
    parser.add_argument("--chaos", type=_chaos_arg, action="append",
                        default=None, metavar="KIND:SHARD[@WINDOW]",
                        help="kill or hang a shard worker mid-run "
                             "(kill:0@1 / hang:2); repeatable, needs "
                             "--workers > 1")
    parser.add_argument("--max-worker-restarts", type=int, default=2,
                        metavar="N",
                        help="per-shard respawn budget for the "
                             "self-healing coordinator")
    parser.add_argument("--worker-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock reply deadline before a shard "
                             "worker counts as hung (default 60)")
    parser.add_argument("--churn", type=float, default=0.0,
                        help="rule-churn FlowMods/s across the fleet")
    parser.add_argument("--traffic", type=int, default=0,
                        help="background data-plane flows")
    parser.add_argument("--drops", type=int, default=1,
                        help="rule-drop failures to inject")
    parser.add_argument("--corruptions", type=int, default=0,
                        help="rule-corruption failures to inject")
    parser.add_argument("--link-failures", type=int, default=0,
                        help="link failures to inject")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the sim-time event trace as JSONL")
    parser.add_argument("--trace-chrome", default=None, metavar="PATH",
                        help="write a Chrome trace_event file "
                             "(chrome://tracing / ui.perfetto.dev)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the Prometheus text exposition")
    parser.add_argument("--obs-snapshot-interval", type=float,
                        default=None, metavar="SECONDS",
                        help="sim seconds between metric snapshots "
                             "(default: duration/10 when observing)")
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="dump the full FleetMetrics as JSON")
    args = parser.parse_args(argv)

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = (
        args.seed
        if args.seed is not None
        else int(os.environ.get("REPRO_BENCH_SEED", "2015"))
    )
    spec = ScenarioSpec(
        topology=args.topology,
        size=args.size,
        profile=args.profile,
        duration=args.duration,
        seed=seed,
        rules_per_switch=max(4, int(args.rules * scale)),
        probe_rate=args.probe_rate,
        probe_window=args.probe_window,
        dynamic=not args.static,
        strategy=args.strategy,
        algorithm=args.algorithm,
        probe_policy=args.probe_policy,
        workers=args.workers,
        shard_policy=args.shard_policy,
        barrier_quantum=args.barrier_quantum,
        alarm_confirmations=args.alarm_confirmations,
        quarantine_threshold=args.quarantine_threshold,
        chaos=tuple(args.chaos or ()),
        max_worker_restarts=args.max_worker_restarts,
        worker_timeout=args.worker_timeout,
        trace_out=args.trace_out,
        trace_chrome=args.trace_chrome,
        metrics_out=args.metrics_out,
        obs_snapshot_interval=args.obs_snapshot_interval,
    )
    workloads: list[Workload] = []
    if args.churn > 0:
        workloads.append(RuleChurn(rate=args.churn))
    if args.traffic > 0:
        workloads.append(BackgroundTraffic(flows=args.traffic))

    try:
        spec = replace(
            spec,
            workloads=tuple(workloads),
            failures=_default_failures(
                spec, args.drops, args.corruptions, args.link_failures
            ),
        )
        result = run_scenario(spec)
    except ScenarioError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover - parser.error raises SystemExit

    if result.deployment is not None:
        plan = result.deployment.plan
        reserved = f"{plan.num_reserved_values} reserved values"
        if plan.slots > 1:
            reserved += f" x {plan.slots} window slots"
    else:
        reserved = f"{result.spec.workers} shard workers"
    print(
        f"fleet scenario: {spec.topology}-{spec.size} x {spec.profile}, "
        f"{spec.rules_per_switch} rules/switch, strategy {spec.strategy} "
        f"({reserved}), "
        f"{spec.duration:.1f}s @ seed {spec.seed}"
    )
    print()
    print(result.report())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                result.metrics.to_json(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        result.exported.append(f"{args.json_out} (fleet metrics JSON)")
    for line in result.exported:
        print(f"wrote {line}")
    if (
        result.degraded
        or not result.metrics.all_detected
        or result.metrics.false_alarms
    ):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
