"""Tests for catching-rule planning (§6): strategies 1 and 2."""

import networkx as nx
import pytest

from repro.core.catching import (
    CATCH_PRIORITY,
    FILTER_PRIORITY,
    CapacityError,
    ColoringAlgorithm,
    plan_catching_rules,
)
from repro.openflow.actions import CONTROLLER_PORT
from repro.openflow.fields import FieldName


def triangle():
    return nx.Graph([("a", "b"), ("b", "c"), ("a", "c")])


class TestStrategy1:
    def test_triangle_needs_three_values(self):
        plan = plan_catching_rules(triangle(), strategy=1)
        assert plan.num_reserved_values == 3

    def test_star_needs_two_values(self):
        plan = plan_catching_rules(nx.star_graph(6), strategy=1)
        assert plan.num_reserved_values == 2

    def test_adjacent_switches_differ(self):
        graph = nx.erdos_renyi_graph(20, 0.2, seed=4)
        plan = plan_catching_rules(graph, strategy=1)
        for u, v in graph.edges:
            assert plan.value1(u) != plan.value1(v)

    def test_catching_rules_cover_other_colors(self):
        plan = plan_catching_rules(triangle(), strategy=1)
        rules = plan.catching_rules("a")
        assert len(rules) == plan.num_reserved_values - 1
        for rule in rules:
            assert rule.priority == CATCH_PRIORITY
            assert rule.forwarding_set() == {CONTROLLER_PORT}
            # Own value is never caught at the switch itself.
            own = plan.value1("a")
            fm = rule.match.constraint(FieldName.DL_VLAN)
            assert not fm.matches(own)

    def test_probe_match_is_own_value(self):
        plan = plan_catching_rules(triangle(), strategy=1)
        match = plan.probe_match("a", "b")
        fm = match.constraint(plan.field1)
        assert fm.matches(plan.value1("a"))

    def test_probe_caught_downstream_not_at_probed(self):
        plan = plan_catching_rules(triangle(), strategy=1)
        header = {plan.field1: plan.value1("a")}
        # No catching rule at "a" matches the probe...
        assert not any(
            r.match.matches(header) for r in plan.catching_rules("a")
        )
        # ...but one at the downstream neighbor does.
        assert any(r.match.matches(header) for r in plan.catching_rules("b"))

    def test_no_coloring_gives_one_value_per_switch(self):
        graph = nx.path_graph(9)
        plan = plan_catching_rules(
            graph, strategy=1, algorithm=ColoringAlgorithm.NONE
        )
        assert plan.num_reserved_values == 9


class TestStrategy2:
    def test_common_neighbor_forces_distinct(self):
        # Star: all leaves share the hub, so every leaf needs its own id.
        graph = nx.star_graph(5)
        plan = plan_catching_rules(graph, strategy=2)
        leaf_values = {plan.value1(n) for n in range(1, 6)}
        assert len(leaf_values) == 5

    def test_rule_structure(self):
        plan = plan_catching_rules(triangle(), strategy=2)
        rules = plan.catching_rules("a")
        catch = [r for r in rules if r.priority == CATCH_PRIORITY]
        filters = [r for r in rules if r.priority == FILTER_PRIORITY]
        assert len(catch) == 1
        assert catch[0].forwarding_set() == {CONTROLLER_PORT}
        assert len(filters) == plan.num_reserved_values - 1
        for rule in filters:
            assert rule.forwarding_set() == frozenset()

    def test_probe_match_pins_both_fields(self):
        plan = plan_catching_rules(triangle(), strategy=2)
        match = plan.probe_match("a", "b")
        assert plan.field1 in match.fields
        assert plan.field2 in match.fields

    def test_probe_delivered_only_by_downstream(self):
        from repro.openflow.table import FlowTable

        plan = plan_catching_rules(triangle(), strategy=2)
        header = {
            plan.field1: plan.value1("a"),
            plan.field2: plan.value2("b"),
        }

        def outcome_at(node):
            table = FlowTable(check_overlap=False)
            for rule in plan.catching_rules(node):
                table.install(rule)
            return table.process(header)

        # Probed switch "a": no monitoring rule touches the probe.
        assert not any(
            r.match.matches(header) for r in plan.catching_rules("a")
        )
        # Downstream "b": the catch rule wins (it may overlap a filter,
        # which is why it has the higher priority).
        assert outcome_at("b").ports() == {CONTROLLER_PORT}
        # Other neighbor "c": the filter drops the probe, so the
        # controller sees it exactly once.
        assert outcome_at("c").is_drop()

    def test_same_color_downstream_rejected(self):
        # Two far-apart path nodes can share a color; probe_match must
        # refuse such a pairing.
        graph = nx.path_graph(8)
        plan = plan_catching_rules(graph, strategy=2)
        same = [
            (u, v)
            for u in graph.nodes
            for v in graph.nodes
            if u != v and plan.color_of[u] == plan.color_of[v]
        ]
        if same:
            with pytest.raises(ValueError):
                plan.probe_match(*same[0])

    def test_capacity_error_on_tiny_field(self):
        # nw_tos has 6 bits = 64 values; a 70-leaf star needs 70 ids in
        # strategy 2.
        graph = nx.star_graph(70)
        with pytest.raises(CapacityError):
            plan_catching_rules(graph, strategy=2, base2=0)


class TestAlgorithms:
    @pytest.mark.parametrize(
        "algorithm",
        [
            ColoringAlgorithm.EXACT,
            ColoringAlgorithm.DSATUR,
            ColoringAlgorithm.LARGEST_FIRST,
        ],
    )
    def test_all_algorithms_yield_valid_plans(self, algorithm):
        graph = nx.erdos_renyi_graph(15, 0.25, seed=9)
        plan = plan_catching_rules(graph, strategy=1, algorithm=algorithm)
        for u, v in graph.edges:
            assert plan.value1(u) != plan.value1(v)

    def test_exact_minimizes(self):
        graph = nx.cycle_graph(9)  # odd cycle: chromatic number 3
        exact = plan_catching_rules(graph, algorithm=ColoringAlgorithm.EXACT)
        assert exact.num_reserved_values == 3

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            plan_catching_rules(triangle(), strategy=3)

    def test_reserved_values_set(self):
        plan = plan_catching_rules(triangle(), strategy=1, base1=0xF00)
        assert plan.reserved_values1() == {0xF00, 0xF01, 0xF02}
