"""Network-wide catching-rule planning (paper §6).

To collect probes, every switch pre-installs *catching rules* matching
reserved values of otherwise-unused header fields.  Reserved values are
switch identifiers; vertex coloring shrinks the identifier space:

* **Strategy 1** — one reserved field ``H``.  A switch with color ``c``
  installs, for every other color ``c'``, a top-priority rule
  ``match(H=value(c')) -> controller``.  A probe for switch ``i`` sets
  ``H = value(color(i))``: it passes through ``i`` (no catching rule for
  its own color there) and is caught by any neighbor (adjacent switches
  have different colors).
* **Strategy 2** — two reserved fields ``H1`` (probed switch), ``H2``
  (intended downstream).  Each switch installs one catch rule
  ``match(H2=own) -> controller`` and, just below it, filter rules
  ``match(H1=other) -> drop``, so a probe is delivered to the controller
  exactly once — by the intended downstream switch.  Correctness needs
  distinct identifiers within every 2-neighborhood: coloring of the
  squared graph.

The planner returns a :class:`CatchingPlan` that yields the concrete
rules per switch and the reserved-field requirements for probes
(used as the Collect match by the probe generator).

**Probe pipelining (window slots).**  One reserved value per switch
supports exactly one probe in flight; a window of W concurrent probes
needs W values per switch so the catching fabric can tell them apart.
The plan therefore carries ``slots``: slot ``s`` of a switch with color
``c`` uses value ``base + s * stride + c`` where ``stride`` is the
number of colors, so slot 0 reproduces the classic single-value layout
and distinct (slot, color) pairs map to globally distinct values.
Every switch installs its catch (and strategy-2 filter) rules for all
*other* colors at *all* slots — slot 0 first, keeping the slots=1 rule
set byte-identical to the pre-pipelining plan.  ``slots`` is clamped
to the reserved field's capacity by :func:`plan_catching_rules`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.coloring import (
    GreedyOrder,
    exact_coloring,
    greedy_coloring,
    is_proper_coloring,
    square_graph,
)
from repro.openflow.actions import ActionList, Drop, Forward, CONTROLLER_PORT
from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule

#: Priorities reserved for the monitoring rules; production rules must
#: stay below CATCH-levels (the paper requires catching rules to have
#: the highest priority among all rules).
CATCH_PRIORITY = 0xFFFF
FILTER_PRIORITY = 0xFFFE


class ColoringAlgorithm(str, enum.Enum):
    """Which coloring solver the planner uses."""

    EXACT = "exact"
    DSATUR = "dsatur"
    LARGEST_FIRST = "largest_first"
    NONE = "none"  # one distinct identifier per switch (no coloring)


class CapacityError(ValueError):
    """The reserved field cannot hold the required number of identifiers."""


@dataclass
class CatchingPlan:
    """A concrete catching-rule assignment for one network.

    Attributes:
        strategy: 1 or 2 (see module docstring).
        color_of: switch -> color (0-based).
        field1: the reserved field ``H`` (strategy 1) / ``H1``.
        field2: the reserved field ``H2`` (strategy 2 only).
        base1 / base2: reserved values are ``base + color``; production
            traffic must avoid these values.
        slots: reserved values per switch in ``field1`` (the probe
            window budget); slot ``s`` uses ``base1 + s*stride + color``.
    """

    strategy: int
    color_of: dict
    field1: FieldName
    field2: FieldName | None
    base1: int
    base2: int
    slots: int = 1

    @property
    def num_reserved_values(self) -> int:
        """Identifiers needed = colors used (the Figure 9 metric)."""
        if not self.color_of:
            return 0
        return len(set(self.color_of.values()))

    @property
    def color_stride(self) -> int:
        """Value-space distance between consecutive slots."""
        if not self.color_of:
            return 0
        return max(self.color_of.values()) + 1

    def value1(self, switch, slot: int = 0) -> int:
        """Reserved value of ``field1`` for this switch (given slot)."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} outside 0..{self.slots - 1}")
        return self.base1 + slot * self.color_stride + self.color_of[switch]

    def probe_values(self, switch) -> tuple[int, ...]:
        """All ``field1`` values this switch's probes may carry, slot
        order — the per-switch in-flight reserved-value pool."""
        return tuple(
            self.value1(switch, slot) for slot in range(self.slots)
        )

    def value2(self, switch) -> int:
        """Reserved value of ``field2`` for this switch (strategy 2)."""
        if self.strategy != 2:
            raise ValueError("value2 only exists for strategy 2")
        return self.base2 + self.color_of[switch]

    def reserved_values1(self) -> set[int]:
        """All reserved values of field1 across the network (all slots)."""
        stride = self.color_stride
        return {
            self.base1 + slot * stride + c
            for slot in range(self.slots)
            for c in set(self.color_of.values())
        }

    def catching_rules(self, switch) -> list[Rule]:
        """The monitoring rules this switch must pre-install.

        Slot 0 comes first so the ``slots=1`` rule list (and therefore
        every pre-pipelining expected table) is byte-identical.
        """
        rules: list[Rule] = []
        own_color = self.color_of[switch]
        stride = self.color_stride
        if self.strategy == 1:
            for slot in range(self.slots):
                for color in sorted(set(self.color_of.values())):
                    if color == own_color:
                        continue
                    rules.append(
                        Rule(
                            priority=CATCH_PRIORITY,
                            match=Match.build(
                                **{
                                    self.field1.value: self.base1
                                    + slot * stride
                                    + color
                                }
                            ),
                            actions=ActionList((Forward(CONTROLLER_PORT),)),
                        )
                    )
            return rules
        # Strategy 2: one catch rule on H2=own, filters on H1=other.
        # H2 names the downstream switch (one identifier regardless of
        # window depth); only the H1 filters replicate per slot.
        assert self.field2 is not None
        rules.append(
            Rule(
                priority=CATCH_PRIORITY,
                match=Match.build(
                    **{self.field2.value: self.base2 + own_color}
                ),
                actions=ActionList((Forward(CONTROLLER_PORT),)),
            )
        )
        for slot in range(self.slots):
            for color in sorted(set(self.color_of.values())):
                if color == own_color:
                    continue
                rules.append(
                    Rule(
                        priority=FILTER_PRIORITY,
                        match=Match.build(
                            **{
                                self.field1.value: self.base1
                                + slot * stride
                                + color
                            }
                        ),
                        actions=ActionList((Drop(),)),
                    )
                )
        return rules

    def value_pool(self, switch) -> "ReservedValuePool":
        """The in-flight reserved-value pool for one switch's probes."""
        return ReservedValuePool(self.field1, self.probe_values(switch))

    def probe_match(self, probed_switch, downstream_switch) -> Match:
        """Reserved-field values a probe must carry (the Collect match).

        Strategy 1: ``H = value(color(probed))`` — not caught at the
        probed switch, caught at any neighbor.  Strategy 2 additionally
        pins ``H2`` to the downstream switch's identifier.
        """
        if self.strategy == 1:
            return Match.build(
                **{self.field1.value: self.value1(probed_switch)}
            )
        assert self.field2 is not None
        if self.color_of[probed_switch] == self.color_of[downstream_switch]:
            raise ValueError(
                "probed and downstream switch share a color; the squared-"
                "graph coloring should have prevented this"
            )
        return Match.build(
            **{
                self.field1.value: self.value1(probed_switch),
                self.field2.value: self.value2(downstream_switch),
            }
        )


class ReservedValuePool:
    """Per-switch pool of in-flight reserved header values.

    A probe window of W concurrent probes needs W distinct values so
    the catching fabric (and a human reading a packet capture) can
    tell in-flight probes apart; the Monitor allocates one per launch
    and releases it when the probe confirms, times out or is
    invalidated.  Allocation is lowest-value-first, so slot 0 — the
    canonical value every generated probe header already carries — is
    preferred and the single-probe case never rewrites anything.

    Exhaustion is not an error: :meth:`allocate` returns ``None`` and
    counts an overflow, and the caller falls back to the canonical
    value (the probe nonce still disambiguates; only the wire-level
    distinctness degrades).
    """

    def __init__(self, field: FieldName, values: tuple[int, ...]) -> None:
        if not values:
            raise ValueError("a reserved-value pool needs >= 1 value")
        self.field = field
        self.values = tuple(values)
        self._free = sorted(self.values, reverse=True)
        self.overflows = 0

    @property
    def canonical(self) -> int:
        """The slot-0 value probe generation pins into every header."""
        return self.values[0]

    @property
    def size(self) -> int:
        return len(self.values)

    @property
    def in_use(self) -> int:
        return len(self.values) - len(self._free)

    def allocate(self) -> int | None:
        """Take the lowest free value; None (counted) when exhausted."""
        if not self._free:
            self.overflows += 1
            return None
        return self._free.pop()

    def release(self, value: int) -> None:
        """Return a value to the pool."""
        if value not in self.values:
            raise ValueError(f"{value:#x} is not from this pool")
        if value in self._free:
            raise ValueError(f"{value:#x} released twice")
        self._free.append(value)
        self._free.sort(reverse=True)

    def __repr__(self) -> str:
        return (
            f"ReservedValuePool({self.field.value}, size={self.size}, "
            f"in_use={self.in_use})"
        )


def plan_catching_rules(
    topology: nx.Graph,
    strategy: int = 1,
    algorithm: ColoringAlgorithm = ColoringAlgorithm.EXACT,
    field1: FieldName = FieldName.DL_VLAN,
    field2: FieldName = FieldName.NW_TOS,
    base1: int = 0xF00,
    base2: int = 0x20,
    slots: int = 1,
) -> CatchingPlan:
    """Compute a catching plan for a topology.

    Args:
        topology: switch-level graph (nodes = switches, edges = links).
        strategy: 1 (single reserved field) or 2 (two fields).
        algorithm: coloring solver; ``NONE`` assigns each switch its own
            identifier (the paper's non-optimized baseline).
        field1 / field2: reserved header fields.
        base1 / base2: first reserved value in each field.
        slots: requested reserved values per switch (the probe-window
            budget).  Clamped — never errored — to what ``field1`` can
            hold above ``base1``: a too-narrow field degrades to a
            smaller effective window, surfaced via ``plan.slots``.

    Raises:
        CapacityError: if the identifiers do not fit the fields even at
            a single slot per switch.
    """
    if strategy not in (1, 2):
        raise ValueError(f"unknown strategy {strategy}")

    graph = topology if strategy == 1 else square_graph(topology)

    if algorithm is ColoringAlgorithm.NONE:
        coloring = {
            node: i for i, node in enumerate(sorted(topology.nodes, key=repr))
        }
    elif algorithm is ColoringAlgorithm.EXACT:
        coloring = exact_coloring(graph)
    elif algorithm is ColoringAlgorithm.DSATUR:
        coloring = greedy_coloring(graph, GreedyOrder.DSATUR)
    else:
        coloring = greedy_coloring(graph, GreedyOrder.LARGEST_FIRST)

    if algorithm is not ColoringAlgorithm.NONE and not is_proper_coloring(
        graph, coloring
    ):
        raise AssertionError("coloring solver produced an improper coloring")

    if slots < 1:
        raise ValueError(f"slots must be >= 1: {slots}")
    colors_used = len(set(coloring.values())) if coloring else 0
    stride = (max(coloring.values()) + 1) if coloring else 0
    if base1 + colors_used - 1 > HEADER.field(field1).max_value:
        raise CapacityError(
            f"{colors_used} identifiers exceed {field1} capacity "
            f"starting at {base1:#x}"
        )
    if stride > 0:
        # One slot always fits (checked above); extra window slots are
        # clamped to the field's remaining headroom, not errored.
        capacity = HEADER.field(field1).max_value - base1 + 1
        slots = max(1, min(slots, capacity // stride))
    if strategy == 2 and base2 + colors_used - 1 > HEADER.field(
        field2
    ).max_value:
        raise CapacityError(
            f"{colors_used} identifiers exceed {field2} capacity "
            f"starting at {base2:#x}"
        )

    return CatchingPlan(
        strategy=strategy,
        color_of=coloring,
        field1=field1,
        field2=field2 if strategy == 2 else None,
        base1=base1,
        base2=base2,
        slots=slots,
    )
