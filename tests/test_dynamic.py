"""Tests for dynamic (reconfiguration) monitoring: update confirmation,
transient tolerance, overlap queueing, deletions, modifications and
drop-postponing (§4)."""


from repro.core.dynamic import UpdateAck
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import drop, output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.kernel import Simulator
from repro.switches.profiles import HP_5406ZL, OVS, PICA8
from repro.topology.generators import triangle


def setup(probed_profile=HP_5406ZL, seed=7, **config_kwargs):
    sim = Simulator()
    def profiles(n):
        return probed_profile if n == "s3" else OVS

    net = Network(sim, triangle(), profiles=profiles, seed=seed)
    acks = []
    system = MonocleSystem(
        net,
        config=MonitorConfig(**config_kwargs),
        dynamic=True,
        controller_handler=lambda node, msg: acks.append((sim.now, node, msg))
        if isinstance(msg, UpdateAck)
        else None,
    )
    return sim, net, system, acks


def add_mod(net, dst, to="s1", priority=100):
    port = net.port_toward["s3"][to]
    return FlowMod(
        command=FlowModCommand.ADD,
        match=Match.build(nw_dst=dst),
        priority=priority,
        actions=output(port),
    )


class TestAddConfirmation:
    def test_ack_after_real_dataplane_install(self):
        sim, net, system, acks = setup()
        switch = net.switch("s3")
        install_times = []
        original = switch._apply_to_dataplane
        switch._apply_to_dataplane = lambda m: (
            install_times.append(sim.now),
            original(m),
        )[1]
        mod = add_mod(net, 0x0A000001)
        system.send_to_switch("s3", mod)
        sim.run_for(2.0)
        assert len(acks) == 1
        assert acks[0][2].flowmod_xid == mod.xid
        # The ack came AFTER the data plane actually installed the rule.
        assert acks[0][0] >= install_times[0]
        # ... and within "several ms" of it.
        assert acks[0][0] - install_times[0] < 0.020

    def test_transient_absence_not_alarmed(self):
        sim, net, system, acks = setup()
        system.send_to_switch("s3", add_mod(net, 0x0A000001))
        sim.run_for(2.0)
        assert system.monitor("s3").alarms == []

    def test_reordering_switch_confirmations(self):
        sim, net, system, acks = setup(probed_profile=PICA8)
        mods = [add_mod(net, 0x0A000000 + i) for i in range(10)]
        for mod in mods:
            system.send_to_switch("s3", mod)
        sim.run_for(5.0)
        assert len(acks) == 10
        assert system.dynamics["s3"].updates_confirmed == 10

    def test_multiple_nonoverlapping_updates_in_parallel(self):
        sim, net, system, acks = setup()
        for i in range(5):
            system.send_to_switch("s3", add_mod(net, 0x0A000000 + i))
        # All five forwarded immediately (no queueing): distinct dsts.
        assert system.dynamics["s3"].queue == []
        sim.run_for(3.0)
        assert len(acks) == 5


class TestOverlapQueueing:
    def test_overlapping_update_queued_until_confirmed(self):
        sim, net, system, acks = setup()
        base = add_mod(net, 0x0A000001, priority=100)
        # Overlapping: wildcard dst covers the first rule's match.
        overlapping = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.wildcard(),
            priority=50,
            actions=output(net.port_toward["s3"]["s2"]),
        )
        system.send_to_switch("s3", base)
        system.send_to_switch("s3", overlapping)
        dynamic = system.dynamics["s3"]
        assert len(dynamic.queue) == 1
        # The queued FlowMod must not have reached the switch yet.
        sim.run_for(0.010)
        assert net.switch("s3").control_table.get(50, Match.wildcard()) is None
        sim.run_for(5.0)
        assert dynamic.queue == []
        assert len(acks) == 2
        assert net.switch(
            "s3"
        ).control_table.get(50, Match.wildcard()) is not None

    def test_queue_respects_pairwise_overlaps(self):
        sim, net, system, acks = setup()
        system.send_to_switch("s3", add_mod(net, 0x0A000001, priority=100))
        # Two queued mods that overlap each other: release order must
        # keep the second queued until the first confirms.
        for priority in (50, 60):
            system.send_to_switch(
                "s3",
                FlowMod(
                    command=FlowModCommand.ADD,
                    match=Match.wildcard(),
                    priority=priority,
                    actions=output(net.port_toward["s3"]["s2"]),
                ),
            )
        assert len(system.dynamics["s3"].queue) == 2
        sim.run_for(8.0)
        assert len(acks) == 3


class TestDeletion:
    def test_delete_confirmed_when_dataplane_updates(self):
        sim, net, system, acks = setup()
        mod = add_mod(net, 0x0A000001)
        system.send_to_switch("s3", mod)
        sim.run_for(2.0)
        assert len(acks) == 1
        delete = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=mod.match,
            priority=mod.priority,
        )
        system.send_to_switch("s3", delete)
        sim.run_for(3.0)
        assert len(acks) == 2
        assert net.switch("s3").dataplane.get(mod.priority, mod.match) is None

    def test_delete_of_unknown_rule_acked_immediately(self):
        sim, net, system, acks = setup()
        delete = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=Match.build(nw_dst=0x0BADBEEF),
            priority=77,
        )
        system.send_to_switch("s3", delete)
        sim.run_for(1.0)
        assert len(acks) == 1


class TestModification:
    def test_modify_confirmed_on_new_actions(self):
        sim, net, system, acks = setup()
        mod = add_mod(net, 0x0A000001, to="s1")
        system.send_to_switch("s3", mod)
        sim.run_for(2.0)
        modify = FlowMod(
            command=FlowModCommand.MODIFY_STRICT,
            match=mod.match,
            priority=mod.priority,
            actions=output(net.port_toward["s3"]["s2"]),
        )
        system.send_to_switch("s3", modify)
        sim.run_for(3.0)
        assert len(acks) == 2
        dataplane_rule = net.switch(
            "s3"
        ).dataplane.get(mod.priority, mod.match)
        assert dataplane_rule.forwarding_set() == {
            net.port_toward["s3"]["s2"]
        }


class TestDropPostponing:
    def test_drop_rule_positively_confirmed_and_finalized(self):
        sim = Simulator()
        def profiles(n):
            return HP_5406ZL if n == "s3" else OVS

        net = Network(sim, triangle(), profiles=profiles, seed=11)
        acks = []
        system = MonocleSystem(
            net,
            dynamic=True,
            use_drop_postponing=True,
            controller_handler=lambda node, msg: acks.append(msg)
            if isinstance(msg, UpdateAck)
            else None,
        )
        # Pre-install the neighbor tag-drop rules (deployment step).
        from repro.core.droppostpone import tag_drop_rule

        for node in ("s1", "s2", "s3"):
            system.preinstall_production_rule(node, tag_drop_rule())

        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=0x0A000009),
            priority=100,
            actions=drop(),
        )
        system.send_to_switch("s3", mod)
        sim.run_for(5.0)
        assert len(acks) == 1
        # After finalization the dataplane rule must be a real drop.
        final = net.switch("s3").dataplane.get(100, mod.match)
        assert final is not None
        assert final.forwarding_set() == frozenset()
