"""Tests for cross-switch shared probe-generation contexts.

Covers table fingerprinting, registry dedup/acquire semantics, the
replicated-churn operation log, per-switch rule/cookie overlays, and —
most importantly — the byte-equivalence property: a deduped fleet must
produce exactly the probes per-switch independent generation would
have produced, across randomized churn, including the copy-on-churn
fork path (where a diverging switch leaves without affecting its
siblings).
"""

import random

import pytest

from repro.core.probegen import ProbeGenContext, ProbeGenerator, verify_probe
from repro.core.shared import (
    SharedContextRegistry,
    generator_key,
    table_fingerprint,
)
from repro.openflow.actions import drop, output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule

CATCH = Match.build(dl_vlan=0xF03)


def _generator() -> ProbeGenerator:
    return ProbeGenerator(catch_match=CATCH)


def _rule(priority: int, dst: int, actions=None) -> Rule:
    return Rule(
        priority=priority,
        match=Match.build(nw_dst=dst),
        actions=actions if actions is not None else output(1),
    )


def _probe_bytes(result):
    """The per-switch-visible identity of a probe result."""
    return (
        result.ok,
        result.reason,
        result.packet,
        None
        if result.header is None
        else tuple(sorted(result.header.items())),
        result.outcome_present,
        result.outcome_absent,
    )


class TestFingerprint:
    def test_cookie_free(self):
        a = [_rule(10, 0x0A000001), _rule(20, 0x0A000002)]
        b = [
            Rule(priority=r.priority, match=r.match, actions=r.actions)
            for r in a
        ]
        assert all(x.cookie != y.cookie for x, y in zip(a, b))
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_sensitive_to_priority_match_actions(self):
        base = [_rule(10, 0x0A000001)]
        assert table_fingerprint(base) != table_fingerprint(
            [_rule(11, 0x0A000001)]
        )
        assert table_fingerprint(base) != table_fingerprint(
            [_rule(10, 0x0A000002)]
        )
        assert table_fingerprint(base) != table_fingerprint(
            [_rule(10, 0x0A000001, actions=output(2))]
        )
        assert table_fingerprint(base) != table_fingerprint(
            [_rule(10, 0x0A000001, actions=drop())]
        )

    def test_generator_key_separates_configs(self):
        assert generator_key(_generator()) == generator_key(_generator())
        other = ProbeGenerator(catch_match=Match.build(dl_vlan=0xF04))
        assert generator_key(_generator()) != generator_key(other)
        ported = ProbeGenerator(catch_match=CATCH, valid_in_ports=(1, 2))
        assert generator_key(_generator()) != generator_key(ported)


class TestRegistry:
    def test_identical_acquires_share(self):
        registry = SharedContextRegistry()
        rules = [_rule(10, 0x0A000001)]
        h1 = registry.acquire(_generator(), rules=rules)
        h2 = registry.acquire(_generator(), rules=list(rules))
        assert h1.table is h2.table
        assert h1.is_shared and h2.is_shared
        assert registry.stats.contexts_created == 1
        assert registry.stats.contexts_deduped == 1

    def test_different_tables_do_not_share(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator(), rules=[_rule(10, 0x0A000001)])
        h2 = registry.acquire(_generator(), rules=[_rule(10, 0x0A000002)])
        assert h1.table is not h2.table
        assert registry.stats.contexts_created == 2

    def test_churned_entry_is_not_joinable(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h1.add_rule(_rule(10, 0x0A000001))
        h2 = registry.acquire(_generator())
        assert h1.table is not h2.table
        assert registry.stats.contexts_created == 2

    def test_replicated_ops_stay_shared(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        for handle in (h1, h2):
            handle.add_rule(_rule(10, 0x0A000001))
        assert h1.is_shared and h2.is_shared
        assert len(h1.table) == 1
        assert registry.stats.contexts_forked == 0
        # Per-switch stats both record the install.
        assert h1.stats.rules_added == h2.stats.rules_added == 1

    def test_divergent_op_forks_diverger_and_rewinds_for_sibling(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        shared_table = h1.table
        rule = _rule(10, 0x0A000001)
        h1.add_rule(rule)
        h2.add_rule(rule)
        h2.add_rule(_rule(20, 0x0A000002))  # private op at the head
        # A mere read never sees h2's private rule (and never forks):
        # the sibling serves its own table while behind.
        assert len(h1.table) == 1
        assert not h1.forked and not h2.forked
        # Persistent behind-ness resolves the divergence: the rewind
        # machinery warm-forks h2 off and rolls its private op back.
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(rule)
        assert h2.forked and not h1.forked
        assert h2.table is not shared_table
        assert h1.table is shared_table
        assert len(h1.table) == 1 and len(h2.table) == 2
        assert registry.stats.contexts_forked == 1
        assert registry.stats.warm_forks == 1
        assert registry.stats.rewinds == 1
        # The forked switch keeps evolving independently.
        h2.add_rule(_rule(30, 0x0A000003))
        assert len(h1.table) == 1 and len(h2.table) == 3

    def test_behind_divergent_op_rewinds_and_keeps_sharing(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        h1.add_rule(_rule(10, 0x0A000001))
        h1.add_rule(_rule(20, 0x0A000002))
        # h2 never applied h1's ops; its first op diverges while
        # behind.  h1 (the ahead replica) is at the head, so it
        # warm-forks away and the shared context rewinds for h2.
        h2.add_rule(_rule(30, 0x0A000003))
        assert h1.forked and not h2.forked
        assert [r.priority for r in h2.table] == [30]
        assert [r.priority for r in h1.table] == [20, 10]
        assert registry.stats.warm_forks == 1
        assert registry.stats.rewinds == 1

    def test_staggered_divergence_warm_forks_the_behind_diverger(self):
        """A behind handle diverging while a sibling sits mid-log — a
        staggered divergence the shared rewind cannot untangle — used
        to cold-fork from the handle's table; the undo-based fork now
        clones the shared context (keeping its solver warm) and rolls
        the foreign operations back on the private copy."""
        registry = SharedContextRegistry()
        a = registry.acquire(_generator())
        b = registry.acquire(_generator())
        c = registry.acquire(_generator())
        base = _rule(10, 0x0A000001)
        for handle in (a, b, c):
            handle.add_rule(base)
        a.probe_for(base)
        # Pin demonstrable solver warmth (lemma counts are workload-
        # dependent); a cold fork starts from an empty solver.
        shared_context = a._entry.context
        shared_context.solver._kept_lemmas.append([1])
        op1 = _rule(20, 0x0A000002)
        a.add_rule(op1)
        c.add_rule(op1)
        op2 = _rule(30, 0x0A000003)
        a.add_rule(op2)
        # Positions: a at the head, c one behind, b two behind — c is
        # the staggered sibling that makes a shared rewind illegal.
        b.add_rule(_rule(40, 0x0A000004))
        assert b.forked and not a.forked and not c.forked
        assert registry.stats.contexts_forked == 1
        assert registry.stats.warm_forks == 1
        assert registry.stats.rewinds == 0
        assert b._own is not None
        assert b._own.solver.lemma_count() >= 1
        # The undo reconstruction rebuilt exactly b's view: the base
        # rule plus the private one, none of the foreign ops.
        assert [r.priority for r in b.table] == [40, 10]
        assert [r.priority for r in a.table] == [30, 20, 10]
        # Siblings keep sharing, and c still converges to the head.
        assert a.is_shared and c.is_shared
        c.add_rule(op2)
        assert c.table is a.table
        # The fork's probes are byte-equal to independent generation.
        independent = ProbeGenContext(_generator())
        independent.add_rule(base)
        independent.add_rule(_rule(40, 0x0A000004))
        for rule in list(b.table):
            assert _probe_bytes(b.probe_for(rule)) == _probe_bytes(
                independent.probe_for(independent.table.get(*rule.key()))
            )

    def test_behind_reads_and_probes_never_fork_an_inflight_wave(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        rule = _rule(10, 0x0A000001)
        for handle in (h1, h2):
            handle.add_rule(rule)
        # h1 runs ahead with a wave op; h2 reads and probes before
        # applying it — private view, from-scratch probe, NO fork.
        wave = _rule(20, 0x0A000002)
        h1.add_rule(wave)
        assert [r.priority for r in h2.table] == [10]
        result = h2.probe_for(rule)
        assert result.ok
        assert not h1.forked and not h2.forked
        assert h1.is_shared and h2.is_shared
        # The wave lands on h2: replicas re-converge, still sharing,
        # zero forks — the scenario read-triggered rewinds used to
        # destroy.
        h2.add_rule(wave)
        assert registry.stats.contexts_forked == 0
        assert registry.stats.rewinds == 0
        assert len(h2.table) == 2 and h2.table is h1.table

    def test_cookie_overlay_preserves_per_switch_identity(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        r1 = _rule(10, 0x0A000001)
        r2 = Rule(priority=10, match=r1.match, actions=r1.actions)
        h1.add_rule(r1)
        h2.add_rule(r2)
        # The shared table holds h1's object; each handle's probe
        # result must still carry its *own* rule (cookie attribution).
        table_rule = h2.table.get(10, r1.match)
        assert table_rule.cookie == r1.cookie
        result2 = h2.probe_for(table_rule)
        assert result2.rule.cookie == r2.cookie
        result1 = h1.probe_for(table_rule)
        assert result1.rule.cookie == r1.cookie
        # ... and beyond the rule identity the probes are the same.
        assert _probe_bytes(result1) == _probe_bytes(result2)

    def test_sibling_cache_hits_are_counted_per_switch(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        rule = _rule(10, 0x0A000001)
        for handle in (h1, h2):
            handle.add_rule(rule)
        h1.probe_for(rule)
        h2.probe_for(rule)
        assert h1.stats.probes_generated == 1
        assert h2.stats.probes_generated == 0
        assert h2.stats.cache_hits == 1


def _random_ops(rng, pool):
    """One random churn operation as (op-kind, spec) on the rule pool."""
    kind = rng.choice(("add", "remove", "modify"))
    dst = 0x0A000000 + rng.choice(pool)
    priority = 100 + (dst % 7) * 10
    if kind == "add":
        actions = output(1, nw_tos=8 * rng.randint(0, 3)) \
            if rng.random() < 0.7 else drop()
        return ("add", priority, dst, actions)
    if kind == "remove":
        return ("remove", priority, dst, None)
    return ("modify", priority, dst, output(1, nw_tos=8 * rng.randint(0, 3)))


class TestRededupe:
    """Re-convergence after forks: churn-quiescence re-fingerprinting."""

    def _forked_pair(self, registry):
        """Two shared handles, then h2 forks via a private op."""
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        base = _rule(10, 0x0A000001)
        h1.add_rule(base)
        h2.add_rule(base)
        private = _rule(20, 0x0A000002)
        h2.add_rule(private)
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(base)
        assert h2.forked and not h1.forked
        return h1, h2, base, private

    def test_reversed_divergence_remerges_into_shared_entry(self):
        registry = SharedContextRegistry()
        h1, h2, base, private = self._forked_pair(registry)
        # Tables differ: a sweep must not merge anything.
        assert registry.rededupe() == 0
        assert h2.forked
        # h2 reverses its private op — tables are identical again.
        h2.remove_rule(private)
        assert h2.fingerprint() == h1.fingerprint()
        assert registry.rededupe() == 1
        assert not h2.forked
        assert h1.is_shared and h2.is_shared
        assert h1.table is h2.table
        assert registry.stats.contexts_remerged == 1
        assert registry.forked == []
        # The re-attached handle serves probes from the shared context
        # with its own rule identity, and can fork again on divergence.
        result = h2.probe_for(base)
        assert result.ok and result.rule == base
        h2.add_rule(_rule(30, 0x0A000003))
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(base)
        assert h2.forked and not h1.forked

    def test_two_forked_handles_remerge_with_each_other(self):
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        h3 = registry.acquire(_generator())
        base = _rule(10, 0x0A000001)
        for handle in (h1, h2, h3):
            handle.add_rule(base)
        extra = _rule(20, 0x0A000002)
        # h2 and h3 both diverge with the SAME private rule; h1 stays.
        h2.add_rule(extra)
        assert not h2.forked  # h2 is ahead, not yet resolved
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(base)
        assert h2.forked
        h3.add_rule(extra)
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(base)
        assert h3.forked
        assert h2.fingerprint() == h3.fingerprint() != h1.fingerprint()
        merged = registry.rededupe()
        assert merged == 1  # h3 joined the entry promoted from h2
        assert h2.is_shared and h3.is_shared
        assert h2.table is h3.table
        assert h1.table is not h2.table
        # Replicated churn on the re-merged pair stays deduped.
        wave = _rule(30, 0x0A000003)
        h2.add_rule(wave)
        h3.add_rule(wave)
        assert h2.table is h3.table and len(h2.table) == 3

    def test_warm_remerge_merges_probe_caches(self):
        """A fork's probe cache survives re-attachment: results the
        fork paid for are served as cache hits from the shared entry."""
        registry = SharedContextRegistry()
        h1 = registry.acquire(_generator())
        h2 = registry.acquire(_generator())
        base = _rule(10, 0x0A000001)
        extra = _rule(10, 0x0A000002)
        for handle in (h1, h2):
            handle.add_rule(base)
            handle.add_rule(extra)
        private = _rule(20, 0x0A000003)
        h2.add_rule(private)
        for _ in range(h1.MAX_BEHIND_PROBES + 1):
            h1.probe_for(base)
        assert h2.forked and not h1.forked
        # The fork pays a solve for a rule the shared entry never
        # probed; disjoint dsts keep the entry fresh when the private
        # rule is reversed below.
        fork_context = h2._own
        assert fork_context is not None
        h2.probe_for(extra)
        assert fork_context.stats.probes_generated >= 1
        h2.remove_rule(private)
        assert registry.rededupe() == 1
        assert h1.table is h2.table
        assert registry.stats.cache_entries_merged >= 1
        # Post-rededupe, either sibling gets the fork's result from the
        # cache — no fresh solve anywhere.
        entry = h1._entry
        assert entry is not None
        solves = entry.context.stats.probes_generated
        hits_before = h1.stats.cache_hits
        result = h1.probe_for(extra)
        assert result.ok
        assert entry.context.stats.probes_generated == solves
        assert h1.stats.cache_hits == hits_before + 1

    def test_warm_remerge_keeps_richer_solver(self):
        """When the fork's solver holds more learned lemmas than the
        shared entry's, re-attachment adopts the fork's context instead
        of dropping it (and grafts the entry's cache onto it)."""
        registry = SharedContextRegistry()
        h1, h2, base, private = self._forked_pair(registry)
        fork_context = h2._own
        assert fork_context is not None
        # Make the fork's solver demonstrably warmer (lemma counts are
        # workload-dependent; pin them for determinism).
        fork_context.solver._kept_lemmas.append([1])
        assert (
            fork_context.solver.lemma_count()
            > h1._entry.context.solver.lemma_count()
        )
        entry_cache_key = base.key()
        assert entry_cache_key in h1._entry.context._cache
        h2.remove_rule(private)
        assert registry.rededupe() == 1
        entry = h1._entry
        assert entry is not None
        assert entry.context is fork_context
        assert registry.stats.solvers_kept_on_remerge == 1
        # The entry's cached probe was grafted onto the adopted context.
        assert entry_cache_key in fork_context._cache
        solves = fork_context.stats.probes_generated
        assert h1.probe_for(base).ok
        assert fork_context.stats.probes_generated == solves
        # Replicated churn on the re-merged pair still stays deduped.
        wave = _rule(30, 0x0A000004)
        h1.add_rule(wave)
        h2.add_rule(wave)
        assert h1.table is h2.table

    def test_order_sensitive_identity_blocks_false_merges(self):
        """Equal fingerprints with different within-priority order must
        not share state (probe generation consumes table order)."""
        registry = SharedContextRegistry()
        a = _rule(10, 0x0A000001)
        b = _rule(10, 0x0A000002)
        h1 = registry.acquire(_generator(), rules=[a, b])
        h2 = registry.acquire(_generator(), rules=[b, a])
        assert h1.fingerprint() == h2.fingerprint()
        assert h1.table is not h2.table
        assert registry.stats.contexts_created == 2

    def test_fingerprint_collision_keeps_both_orders_joinable(self):
        """An order-collision on the multiset fingerprint must not
        evict either pristine entry: later replicas of each order still
        dedupe onto their exact match."""
        registry = SharedContextRegistry()
        a = _rule(10, 0x0A000001)
        b = _rule(10, 0x0A000002)
        h1 = registry.acquire(_generator(), rules=[a, b])
        h2 = registry.acquire(_generator(), rules=[b, a])
        h3 = registry.acquire(_generator(), rules=[a, b])
        h4 = registry.acquire(_generator(), rules=[b, a])
        assert h3.table is h1.table
        assert h4.table is h2.table
        assert registry.stats.contexts_created == 2
        assert registry.stats.contexts_deduped == 2


def _apply_spec(target, spec):
    kind, priority, dst, actions = spec
    match = Match.build(nw_dst=dst)
    if kind == "add":
        target.add_rule(
            Rule(priority=priority, match=match, actions=actions)
        )
    elif kind == "remove":
        target.remove_rule(
            Rule(priority=priority, match=match, actions=drop())
        )
    else:
        target.apply_flowmod(
            FlowMod(
                command=FlowModCommand.MODIFY,
                match=match,
                priority=priority,
                actions=actions,
            )
        )


class TestEquivalenceProperty:
    """Deduped generation == independent generation, byte for byte."""

    NUM_SWITCHES = 3

    def _run(self, seed: int, steps: int, diverge_at: int | None = None):
        rng = random.Random(seed)
        pool = [rng.randrange(1, 1 << 20) for _ in range(12)]
        hot = Rule(
            priority=5000,
            match=Match.build(nw_dst=(0x0A000000, 8)),
            actions=output(1),
        )

        registry = SharedContextRegistry()
        handles = [
            registry.acquire(_generator()) for _ in range(self.NUM_SWITCHES)
        ]
        independents = [
            ProbeGenContext(_generator()) for _ in range(self.NUM_SWITCHES)
        ]
        for target in handles + independents:
            target.add_rule(hot)

        def check_probes():
            for index in range(self.NUM_SWITCHES):
                rules = handles[index].table.rules()
                assert (
                    [r.key() for r in rules]
                    == [r.key() for r in independents[index].table.rules()]
                )
                for rule in rules:
                    # Probe each context with its *own* table's rule
                    # object so both sides exercise their caches the
                    # same way (cache identity includes the cookie).
                    solo_rule = independents[index].table.get(*rule.key())
                    shared_result = handles[index].probe_for(rule)
                    solo_result = independents[index].probe_for(solo_rule)
                    assert _probe_bytes(shared_result) == _probe_bytes(
                        solo_result
                    ), (seed, index, rule)
                    if shared_result.ok:
                        valid, why = verify_probe(
                            handles[index].table,
                            rule,
                            shared_result.header,
                            CATCH,
                        )
                        assert valid, why

        check_probes()
        for step in range(steps):
            if diverge_at is not None and step == diverge_at:
                # One switch receives its own private operation.
                spec = ("add", 4000, 0x0A0F0000 + step, output(1))
                _apply_spec(handles[-1], spec)
                _apply_spec(independents[-1], spec)
            spec = _random_ops(rng, pool)
            for index in range(self.NUM_SWITCHES):
                _apply_spec(handles[index], spec)
                _apply_spec(independents[index], spec)
            check_probes()
        return registry, handles

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_replicated_churn_byte_equivalence(self, seed):
        registry, handles = self._run(seed, steps=12)
        assert registry.stats.contexts_forked == 0
        assert all(handle.is_shared for handle in handles)
        # The dedup actually saved solver work: siblings hit the cache.
        total_hits = sum(h.stats.cache_hits for h in handles)
        assert total_hits > 0

    @pytest.mark.parametrize("seed", [5, 6])
    def test_divergence_forks_and_stays_byte_equivalent(self, seed):
        registry, handles = self._run(seed, steps=10, diverge_at=4)
        assert registry.stats.contexts_forked == 1
        assert registry.stats.warm_forks == 1  # diverged at the log head
        assert handles[-1].forked
        # Siblings keep sharing, untouched by the fork.
        assert all(h.is_shared for h in handles[:-1])
