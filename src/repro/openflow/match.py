"""OpenFlow 1.0 match structures.

A :class:`Match` is a set of per-field ``(value, mask)`` constraints over
the abstract header.  A header bit participates in matching iff the
corresponding mask bit is 1, which uniformly covers:

* exact matches (mask = all ones),
* wildcards (mask = 0, the field is absent from the match),
* CIDR prefixes on ``nw_src``/``nw_dst`` (mask = high ``k`` bits).

Two matches *overlap* iff some packet satisfies both — equivalently, their
fixed bits agree wherever both masks care.  This test powers the paper's
§5.4 optimization (only overlapping rules need to enter the SAT instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.openflow.fields import HEADER, Field, FieldName


@dataclass(frozen=True)
class FieldMatch:
    """A single field's ``(value, mask)`` constraint.

    ``mask`` selects the bits that must equal the corresponding bits of
    ``value``; bits outside the mask are wildcarded.  ``value`` must be
    zero outside the mask so that equality of two FieldMatches is
    canonical.
    """

    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.value & ~self.mask:
            raise ValueError(
                f"value {self.value:#x} has bits outside mask {self.mask:#x}"
            )

    @classmethod
    def exact(cls, field: Field, value: int) -> "FieldMatch":
        """Match the field exactly."""
        if not field.contains(value):
            raise ValueError(f"{field.name}={value:#x} out of range")
        return cls(value=value, mask=field.max_value)

    @classmethod
    def prefix(cls, field: Field, value: int, prefix_len: int) -> "FieldMatch":
        """Match the top ``prefix_len`` bits (CIDR-style)."""
        if not 0 <= prefix_len <= field.width:
            raise ValueError(f"prefix length {prefix_len} out of range")
        mask = ((1 << prefix_len) - 1) << (field.width - prefix_len)
        return cls(value=value & mask, mask=mask)

    def matches(self, value: int) -> bool:
        """Does a concrete field value satisfy this constraint?"""
        return (value & self.mask) == self.value

    def overlaps(self, other: "FieldMatch") -> bool:
        """Does some value satisfy both constraints?"""
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def covers(self, other: "FieldMatch") -> bool:
        """Does every value matching ``other`` also match ``self``?"""
        if self.mask & ~other.mask:
            return False  # self cares about a bit other wildcards
        return (other.value & self.mask) == self.value

    def is_wildcard(self) -> bool:
        """True when the constraint accepts every value."""
        return self.mask == 0


class Match:
    """A full OpenFlow 1.0 match: per-field constraints over the header.

    Construct with keyword-style field constraints::

        Match.build(nw_src=("10.0.0.0", 24), dl_type=0x0800)

    Integer values mean exact matches; ``(value, prefix_len)`` tuples mean
    prefix matches (only sensible on ``nw_src``/``nw_dst`` but allowed on
    any field); omitted fields are wildcarded.
    """

    __slots__ = ("_fields", "_hash", "_packed")

    def __init__(
        self, fields: Mapping[FieldName, FieldMatch] | None = None
    ) -> None:
        cleaned: dict[FieldName, FieldMatch] = {}
        if fields:
            for name, fm in fields.items():
                if not fm.is_wildcard():
                    cleaned[name] = fm
        self._fields = cleaned
        self._hash = hash(frozenset(self._fields.items()))
        self._packed: tuple[int, int] | None = None

    @classmethod
    def wildcard(cls) -> "Match":
        """The match-everything match."""
        return cls()

    @classmethod
    def build(cls, **kwargs: int | tuple[int, int]) -> "Match":
        """Build a match from keyword field constraints.

        Keyword names are :class:`FieldName` values (e.g. ``nw_src``).
        """
        fields: dict[FieldName, FieldMatch] = {}
        for key, spec in kwargs.items():
            name = FieldName(key)
            field = HEADER.field(name)
            if isinstance(spec, tuple):
                value, prefix_len = spec
                fields[name] = FieldMatch.prefix(field, value, prefix_len)
            else:
                fields[name] = FieldMatch.exact(field, spec)
        return cls(fields)

    @property
    def fields(self) -> Mapping[FieldName, FieldMatch]:
        """Read-only view of the non-wildcard field constraints."""
        return self._fields

    def constraint(self, name: FieldName) -> FieldMatch:
        """The constraint on ``name`` (wildcard if unconstrained)."""
        return self._fields.get(name, FieldMatch(0, 0))

    def is_wildcard(self) -> bool:
        """True when every field is wildcarded."""
        return not self._fields

    def matches(self, header_values: Mapping[FieldName, int]) -> bool:
        """Does a concrete header (dict of field values) match?"""
        for name, fm in self._fields.items():
            if not fm.matches(header_values.get(name, 0)):
                return False
        return True

    def matches_packed(self, header: int) -> bool:
        """Does a packed abstract header integer match?"""
        return self.matches(HEADER.unpack(header))

    def packed(self) -> tuple[int, int]:
        """``(value, mask)`` over the whole abstract header as bigints.

        Bit ``i`` of the header maps to bit ``HEADER_BITS-1-i`` of the
        integers.  Enables the one-op overlap test used by the §5.4
        pre-filter on large tables.
        """
        if self._packed is None:
            value = 0
            mask = 0
            total = HEADER.total_bits
            for name, fm in self._fields.items():
                field = HEADER.field(name)
                shift = total - field.offset - field.width
                value |= fm.value << shift
                mask |= fm.mask << shift
            self._packed = (value, mask)
        return self._packed

    def overlaps(self, other: "Match") -> bool:
        """Does some packet match both?  (§5.4 overlap test.)

        Two matches overlap iff their fixed bits agree wherever both
        masks care — a single bigint expression on the packed forms.
        """
        v1, m1 = self.packed()
        v2, m2 = other.packed()
        return not ((v1 ^ v2) & m1 & m2)

    def covers(self, other: "Match") -> bool:
        """Does every packet matching ``other`` also match ``self``?"""
        for name, fm in self._fields.items():
            other_fm = other._fields.get(name, FieldMatch(0, 0))
            if not fm.covers(other_fm):
                return False
        return True

    def rewritten_by(self, rewrites: Mapping[FieldName, int]) -> "Match":
        """The match with rewritten fields pinned to their new values.

        Used when reasoning about what a packet looks like after a rule's
        SetField actions run.
        """
        fields = dict(self._fields)
        for name, value in rewrites.items():
            field = HEADER.field(name)
            fields[name] = FieldMatch.exact(field, value)
        return Match(fields)

    def constrained_field_names(self) -> list[FieldName]:
        """Names of fields with a non-wildcard constraint, layout order."""
        return [f.name for f in HEADER if f.name in self._fields]

    def bit_constraints(self) -> Iterable[tuple[int, bool]]:
        """Yield ``(abs_bit_index, required_value)`` for every fixed bit.

        This is the bridge to the SAT encoding: ``Matches(P, R)`` is the
        conjunction of these per-bit requirements (paper Table 3).
        """
        for name, fm in self._fields.items():
            field = HEADER.field(name)
            for bit_in_field in range(field.width):
                bit_mask = 1 << (field.width - 1 - bit_in_field)
                if fm.mask & bit_mask:
                    yield (
                        field.offset + bit_in_field,
                        bool(fm.value & bit_mask),
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._fields:
            return "Match(*)"
        parts = []
        for field in HEADER:
            fm = self._fields.get(field.name)
            if fm is None:
                continue
            if fm.mask == field.max_value:
                parts.append(f"{field.name}={fm.value:#x}")
            else:
                parts.append(f"{field.name}={fm.value:#x}/{fm.mask:#x}")
        return f"Match({', '.join(parts)})"
