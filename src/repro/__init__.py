"""Monocle: dynamic, fine-grained data plane monitoring — reproduction.

A full Python reproduction of *Monocle* (Peresini, Kuzniar, Kostic,
CoNEXT 2015): SAT-based per-rule probe generation, steady-state and
dynamic data-plane monitoring, catching-rule planning via vertex
coloring, and the complete simulated substrate (OpenFlow 1.0 data
model, packet crafting, CDCL SAT solver, switch/network simulators)
the evaluation needs.

Quickstart::

    from repro import FlowTable, Match, Rule, ProbeGenerator
    from repro.openflow.actions import output

    table = FlowTable()
    table.install(Rule(priority=10,
                       match=Match.build(nw_src=0x0A000001),
                       actions=output(1)))
    generator = ProbeGenerator(catch_match=Match.build(dl_vlan=3))
    probe = generator.generate(table, table.rules()[0])
    assert probe.ok

See ``examples/`` for full scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.openflow import FlowTable, Match, Rule
from repro.core.probegen import ProbeGenerator, ProbeResult, verify_probe
from repro.core.monitor import Monitor, MonitorConfig
from repro.core.dynamic import DynamicMonitor, UpdateAck
from repro.core.multiplexer import MonocleSystem
from repro.core.catching import plan_catching_rules, CatchingPlan
from repro.sim import Simulator
from repro.network import Network

__version__ = "1.0.0"

__all__ = [
    "FlowTable",
    "Match",
    "Rule",
    "ProbeGenerator",
    "ProbeResult",
    "verify_probe",
    "Monitor",
    "MonitorConfig",
    "DynamicMonitor",
    "UpdateAck",
    "MonocleSystem",
    "plan_catching_rules",
    "CatchingPlan",
    "Simulator",
    "Network",
    "__version__",
]
