"""Graph vertex coloring for catching-rule minimization (paper §6, §8.3.2).

The number of reserved header values (and of catching rules per switch)
equals the number of colors in a proper vertex coloring:

* **Strategy 1** (single reserved field): adjacent switches need distinct
  identifiers — plain vertex coloring of the topology.
* **Strategy 2** (two reserved fields): additionally, any two switches
  with a common neighbor need distinct identifiers — coloring of the
  *square* of the graph (built by adding a clique over each node's
  neighborhood, as the paper describes).

Solvers provided:

* :func:`greedy_coloring` — largest-first and DSATUR orders,
* :func:`exact_coloring` — branch-and-bound optimal coloring (the
  paper's ILP stand-in; exact like the ILP, feasible for Topology-Zoo
  sized graphs),
* :func:`square_graph` — the strategy-2 transform.
"""

from repro.coloring.greedy import greedy_coloring, GreedyOrder
from repro.coloring.exact import exact_coloring
from repro.coloring.square import square_graph
from repro.coloring.validate import is_proper_coloring, num_colors

__all__ = [
    "greedy_coloring",
    "GreedyOrder",
    "exact_coloring",
    "square_graph",
    "is_proper_coloring",
    "num_colors",
]
