"""Switch performance profiles (calibration for §8.3.1 and Figures 6-8).

Each profile fixes the serial control-plane costs and data-plane install
latencies of one switch model.  The maximum PacketOut/PacketIn rates are
taken directly from the paper's measurements; FlowMod rates and install
latencies are calibrated from the companion study [16] ("What You Need
to Know About SDN Flow Tables") so the normalized Figure 6/7 curves and
the Figure 5 blackhole windows reproduce.

The control plane is modelled as a single server: processing a message
of type ``t`` costs ``1 / max_rate(t)`` seconds.  PacketIns mostly
travel a separate path (line cards -> CPU) and only *interfere* with
FlowMod processing by a profile-specific factor; beyond the maximum
PacketIn rate the switch drops them, which is exactly what the paper
observed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SwitchProfile:
    """Control- and data-plane performance model of one switch.

    Attributes:
        name: display name.
        flowmod_rate: sustained FlowMods/s with mixed priorities.
        packetout_rate: max PacketOut/s (paper §8.3.1).
        packetin_rate: max PacketIn/s before drops (paper §8.3.1).
        packetin_interference: fraction of FlowMod capacity consumed
            when the PacketIn path is saturated (Figure 7 calibration).
        install_latency: mean extra seconds between the control plane
            accepting a FlowMod and the data plane honouring it.
        install_jitter: relative jitter on ``install_latency``.
        premature_ack: acknowledges barriers before the data plane
            caught up (HP 5406zl and Pica8 per [16]).
        reorders: may apply FlowMods to the data plane out of order
            (Pica8 per [16]).
    """

    name: str
    flowmod_rate: float
    packetout_rate: float
    packetin_rate: float
    packetin_interference: float
    install_latency: float
    install_jitter: float
    premature_ack: bool
    reorders: bool

    @property
    def flowmod_cost(self) -> float:
        """Control-plane seconds consumed by one FlowMod."""
        return 1.0 / self.flowmod_rate

    @property
    def packetout_cost(self) -> float:
        """Control-plane seconds consumed by one PacketOut."""
        return 1.0 / self.packetout_rate

    @property
    def barrier_cost(self) -> float:
        """Barriers are cheap: a fraction of a FlowMod."""
        return self.flowmod_cost / 10.0


#: HP ProCurve 5406zl: 7006 PacketOut/s and 5531 PacketIn/s measured by
#: the paper; acks rules before the data plane installs them.
HP_5406ZL = SwitchProfile(
    name="HP 5406zl",
    flowmod_rate=275.0,
    packetout_rate=7006.0,
    packetin_rate=5531.0,
    packetin_interference=0.05,
    install_latency=0.030,
    install_jitter=0.5,
    premature_ack=True,
    reorders=False,
)

#: Dell S4810 (production-grade): 850 PacketOut/s, 401 PacketIn/s.
DELL_S4810 = SwitchProfile(
    name="Dell S4810",
    flowmod_rate=48.0,
    packetout_rate=850.0,
    packetin_rate=401.0,
    packetin_interference=0.10,
    install_latency=0.025,
    install_jitter=0.4,
    premature_ack=False,
    reorders=False,
)

#: Dell S4810 with all rules at equal priority (the paper's "**"
#: configuration): much higher baseline FlowMod rate, hence much more
#: sensitive to control-channel competition.
DELL_S4810_SAME_PRIO = SwitchProfile(
    name="Dell S4810**",
    flowmod_rate=970.0,
    packetout_rate=850.0,
    packetin_rate=401.0,
    packetin_interference=0.60,
    install_latency=0.010,
    install_jitter=0.4,
    premature_ack=False,
    reorders=False,
)

#: Dell 8132F with experimental OpenFlow: 9128 PacketOut/s, 1105 PacketIn/s.
DELL_8132F = SwitchProfile(
    name="Dell 8132F",
    flowmod_rate=750.0,
    packetout_rate=9128.0,
    packetin_rate=1105.0,
    packetin_interference=0.08,
    install_latency=0.015,
    install_jitter=0.4,
    premature_ack=False,
    reorders=False,
)

#: Pica8 behaviour per [16]: reorders FlowMods and answers barriers
#: prematurely; update speed comparable to HP but with heavier tails.
PICA8 = SwitchProfile(
    name="Pica8 (emulated)",
    flowmod_rate=300.0,
    packetout_rate=5000.0,
    packetin_rate=3000.0,
    packetin_interference=0.05,
    install_latency=0.040,
    install_jitter=1.0,
    premature_ack=True,
    reorders=True,
)

#: OpenVSwitch: software switch, near-instant and truthful.
OVS = SwitchProfile(
    name="OpenVSwitch",
    flowmod_rate=20000.0,
    packetout_rate=50000.0,
    packetin_rate=50000.0,
    packetin_interference=0.01,
    install_latency=0.0002,
    install_jitter=0.2,
    premature_ack=False,
    reorders=False,
)

#: The "ideal switch with reliable acknowledgments" of §8.4: like OVS
#: but with hardware-scale FlowMod throughput for a fair Figure 8
#: comparison.
IDEAL = SwitchProfile(
    name="Ideal",
    flowmod_rate=2000.0,
    packetout_rate=50000.0,
    packetin_rate=50000.0,
    packetin_interference=0.0,
    install_latency=0.0005,
    install_jitter=0.1,
    premature_ack=False,
    reorders=False,
)

ALL_PROFILES = (
    HP_5406ZL,
    DELL_S4810,
    DELL_S4810_SAME_PRIO,
    DELL_8132F,
    PICA8,
    OVS,
    IDEAL,
)
