"""Ablation: SAT-solver features on probe-generation instances.

The paper found general SMT solvers 3-5x slower than a purpose-built
plain-SAT pipeline because probe instances are small and easy.  This
bench measures what the CDCL machinery contributes on exactly these
instances: full CDCL vs no clause learning vs no VSIDS.
"""

import random

from repro.analysis import format_table
from repro.core.constraints import ConstraintCompiler
from repro.datasets import stanford_table
from repro.openflow.match import Match
from repro.sat.solver import SatSolver

from .conftest import bench_seed, print_header

CATCH = Match.build(dl_vlan=0xF03)
SAMPLE = 40

VARIANTS = [
    ("full CDCL", {}),
    ("no learning", {"enable_learning": False}),
    ("no VSIDS", {"enable_vsids": False}),
]


def build_instances():
    """Compile real probe-generation CNFs from the Stanford table."""
    table = stanford_table()
    rng = random.Random(bench_seed())
    rules = rng.sample(table.rules(), SAMPLE)
    instances = []
    for rule in rules:
        candidates = [
            r for r in table.overlapping(rule.match) if r.key() != rule.key()
        ]
        higher = [r for r in candidates if r.priority > rule.priority]
        lower = [r for r in candidates if r.priority < rule.priority]
        compiler = ConstraintCompiler()
        compiler.assert_matches(rule.match)
        for other in higher:
            compiler.assert_not_matches(other.match)
        compiler.assert_matches(CATCH)
        compiler.assert_distinguish(rule, lower)
        instances.append(compiler.cnf)
    return instances


def solve_all(instances, **solver_kwargs):
    import time

    verdicts = []
    conflicts = 0
    start = time.perf_counter()
    for cnf in instances:
        result = SatSolver(cnf.copy(), **solver_kwargs).solve()
        verdicts.append(result.satisfiable)
        conflicts += result.conflicts
    elapsed = (time.perf_counter() - start) * 1000.0
    return verdicts, conflicts, elapsed


def test_ablation_sat_features(benchmark):
    instances = build_instances()

    rows = []
    verdict_sets = []
    for label, kwargs in VARIANTS:
        verdicts, conflicts, elapsed = solve_all(instances, **kwargs)
        verdict_sets.append(verdicts)
        rows.append(
            [label, f"{elapsed / len(instances):.3f}", conflicts]
        )

    print_header(
        f"Ablation — SAT features on {len(instances)} probe instances "
        "(Stanford)"
    )
    print(format_table(["variant", "avg ms/solve", "total conflicts"], rows))
    print(
        "\nprobe instances are small and heavily unit-driven (the paper's\n"
        "observation: heavyweight solver machinery is overkill here), so\n"
        "the variants should be within the same order of magnitude."
    )

    # Every variant must agree on satisfiability.
    assert verdict_sets[0] == verdict_sets[1] == verdict_sets[2]

    benchmark.pedantic(
        lambda: solve_all(instances[:10]), rounds=3, iterations=1
    )
