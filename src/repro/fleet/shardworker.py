"""The per-shard worker process of the sharded fleet runtime.

Each worker owns one shard of the topology and its own discrete-event
kernel, switches, Monitors, and (shard-local)
:class:`~repro.core.shared.SharedContextRegistry`.  The worker builds
the **full** topology — identical port numbers, switch numbers,
catching plan, and per-switch RNG streams on every worker, whatever the
worker count — but only its owned switches get Monitors, production
rules, and workload activity.  Unowned switches exist as passive
mirrors holding just their catching rules, which is exactly what an
owned switch's probes need from an unowned downstream neighbor: probe
transit never crosses the process boundary.

What *does* cross (via :mod:`repro.fleet.coordinator`'s pipes):

* envelopes announcing cut-crossing failure injections, applied by the
  peer shard at the next barrier with the announcer's fire time;
* fingerprint-gossip advertisements, export payloads, and imports
  (cross-shard probe-cache shipping between identical-table switches).
"""

from __future__ import annotations

import os
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from repro.core.probegen import ProbeGenContext
from repro.core.shared import _rule_sig, generator_key
from repro.fleet.deployment import FleetDeployment
from repro.fleet.failures import (
    FailureSpec,
    Injection,
    failure_rng,
    inject_now,
)
from repro.fleet.metrics import FleetMetrics, collect_fleet_metrics
from repro.fleet.sharding import Digest, GossipPayload, ShardPlan, spec_nodes
from repro.fleet.workloads import RuleChurn, SteadyRules, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from multiprocessing.connection import Connection

    from repro.fleet.runner import ScenarioSpec


@dataclass(frozen=True)
class WorkerCrash:
    """Chaos hook: kill one shard's worker process mid-scenario.

    Fires just before the worker executes its ``window``-th ``run``
    command (0-indexed), exiting the process without ceremony — the
    coordinator sees a pipe EOF, exactly like a real crash.  By
    default only ``incarnation`` 0 (the original process) dies, so the
    respawned replacement replays cleanly; ``incarnation=None`` kills
    every incarnation, which exhausts the restart budget and exercises
    the degraded-result path.
    """

    shard: int
    window: int = 0
    incarnation: int | None = 0

    kind = "kill"


@dataclass(frozen=True)
class WorkerHang:
    """Chaos hook: wedge one shard's worker instead of killing it.

    Sleeps ``sleep`` wall-clock seconds before the ``window``-th run
    command, so the coordinator's reply deadline expires and the
    missed-heartbeat path (terminate + respawn) runs instead of the
    pipe-EOF path.
    """

    shard: int
    window: int = 0
    incarnation: int | None = 0
    sleep: float = 3600.0

    kind = "hang"


def _maybe_chaos(
    hooks: "list[WorkerCrash | WorkerHang]", window: int, incarnation: int
) -> None:
    for hook in hooks:
        if hook.window != window:
            continue
        if hook.incarnation is not None and hook.incarnation != incarnation:
            continue
        if hook.kind == "kill":
            # A real crash, not an exception: no "error" message, no
            # atexit, just a dead pipe for the coordinator to find.
            os._exit(13)
        else:
            _time.sleep(hook.sleep)


@dataclass
class ShardResult:
    """Everything one worker ships home after its final window."""

    shard: int
    metrics: FleetMetrics
    #: Global failure-spec index of each entry in ``metrics.detections``
    #: (a cut-crossing spec yields one record per adjacent shard; the
    #: coordinator merges them by this index).
    injection_indices: list[int] = field(default_factory=list)
    #: Raw churn confirmation latencies — the coordinator re-summarizes
    #: the fleet-wide distribution (Summary objects cannot be merged).
    confirmation_latencies: list[float] = field(default_factory=list)
    #: Raw trace-ring rows (``TraceRecorder.raw_events`` format) and
    #: the ring's lifetime emit count, for the merged recorder.
    trace_rows: list[tuple] = field(default_factory=list)
    trace_emitted: int = 0
    gossip_entries_imported: int = 0


def _announcer(plan: ShardPlan, nodes: list[Hashable]) -> int:
    """The shard that fires a cut-crossing spec: owner of the
    smallest-``repr`` referenced node (deterministic on every worker).
    """
    return plan.owner(min(nodes, key=repr))


class ShardWorker:
    """One shard's deployment plus its barrier-window state machine."""

    def __init__(
        self, spec: "ScenarioSpec", plan: ShardPlan, shard: int
    ) -> None:
        from repro.fleet.runner import ALGORITHMS, PROFILES

        self.spec = spec
        self.plan = plan
        self.shard = shard
        self.owned = set(plan.shards[shard])
        self.deployment = FleetDeployment(
            spec.build_topology(),
            profiles=PROFILES[spec.profile],
            config=spec.monitor_config(),
            dynamic=spec.dynamic,
            seed=spec.seed,
            strategy=spec.strategy,
            algorithm=ALGORITHMS[spec.algorithm],
            share_contexts=spec.share_contexts,
            probe_policy=spec.probe_policy,
            obs=spec.build_observer(),
            monitored_nodes=self.owned,
        )
        self.workloads: list[Workload] = [
            SteadyRules(spec.rules_per_switch)
        ]
        self.workloads.extend(spec.workloads)
        for workload in self.workloads:
            workload.setup(self.deployment)
        #: Global spec index -> live Injection record on this shard.
        self.injections: dict[int, Injection] = {}
        #: Cut-crossing specs announced elsewhere, applied on delivery.
        self.pending_remote: dict[int, FailureSpec] = {}
        #: Envelopes fired this window: ``(fire time, spec index)``.
        self.outbox: list[tuple[float, int]] = []
        self.gossip_imported = 0
        self._arm_failures()
        self.deployment.start_monitoring()

    # ----- failure classification --------------------------------------

    def _arm_failures(self) -> None:
        for index, fspec in enumerate(self.spec.failures):
            nodes = spec_nodes(fspec)
            owners = {self.plan.owner(node) for node in nodes}
            if self.shard not in owners:
                continue
            record = Injection(
                kind=fspec.kind, time=fspec.at, chaos=fspec.chaos
            )
            self.injections[index] = record
            if len(owners) == 1 or _announcer(self.plan, nodes) == self.shard:
                announce = len(owners) > 1
                self.deployment.sim.at(
                    fspec.at,
                    lambda fspec=fspec, record=record, index=index,
                    announce=announce: self._fire(
                        fspec, record, index, announce
                    ),
                )
            else:
                # A peer shard announces; we apply our half when the
                # envelope lands at the next barrier.
                self.pending_remote[index] = fspec

    def _fire(
        self,
        fspec: FailureSpec,
        record: Injection,
        index: int,
        announce: bool,
    ) -> None:
        inject_now(
            self.deployment,
            fspec,
            record,
            rng=failure_rng(self.deployment, index),
        )
        if announce:
            self.outbox.append((record.time, index))

    # ----- gossip -------------------------------------------------------

    def _contexts_by_digest(self) -> dict[Digest, ProbeGenContext]:
        """Digest -> underlying context, one entry per distinct context.

        Monitors on a shared entry resolve to the same base context;
        the first (sorted node order) wins on a within-shard digest
        collision, matching the registry's own dedup preference.
        """
        by_digest: dict[Digest, ProbeGenContext] = {}
        seen: set[int] = set()
        for node in self.deployment.monitored_nodes:
            monitor = self.deployment.monitor(node)
            context = monitor.probe_context
            base = (
                context.base_context()
                if hasattr(context, "base_context")
                else context
            )
            if id(base) in seen:
                continue
            seen.add(id(base))
            digest: Digest = (
                generator_key(monitor.generator),
                base.table.fingerprint(),
            )
            by_digest.setdefault(digest, base)
        return by_digest

    def gossip_advertisement(self) -> dict[Digest, int]:
        """``{digest: fresh-cache size}`` for this barrier window."""
        return {
            digest: base.cache_size()
            for digest, base in self._contexts_by_digest().items()
        }

    def fulfill_exports(
        self, requests: list[Digest]
    ) -> dict[Digest, GossipPayload]:
        """Ship the probe caches the coordinator asked this shard for.

        A request is only honored while the digest still matches (the
        table may have churned since the advertisement); the payload
        carries the exact rule-signature sequence so the importer can
        verify order-sensitive identity, not just the commutative
        fingerprint.
        """
        by_digest = self._contexts_by_digest()
        exports: dict[Digest, GossipPayload] = {}
        for digest in requests:
            base = by_digest.get(digest)
            if base is None:
                continue
            signatures = tuple(_rule_sig(rule) for rule in base.table)
            exports[digest] = (signatures, base.export_cache())
        return exports

    def apply_imports(
        self, imports: dict[Digest, GossipPayload]
    ) -> None:
        """Adopt shipped probe caches into matching local contexts."""
        by_digest = self._contexts_by_digest()
        for digest, (signatures, entries) in imports.items():
            base = by_digest.get(digest)
            if base is None:
                continue
            if tuple(_rule_sig(rule) for rule in base.table) != signatures:
                continue
            self.gossip_imported += base.import_cache(entries)

    # ----- barrier windows ----------------------------------------------

    def run_window(
        self, until: float, deliveries: dict[str, Any]
    ) -> dict[str, Any]:
        """Apply deliveries, advance to ``until``, report the window.

        Deliveries land at the window *start* (one barrier quantum
        after announcement at worst — the latency bound the sharding
        tests pin); the reply carries this window's envelopes, gossip
        advertisement, fulfilled exports, and the next pending event
        time so the coordinator can fast-forward idle stretches.
        """
        for time, index in sorted(deliveries.get("envelopes", [])):
            fspec = self.pending_remote.pop(index, None)
            if fspec is None:
                continue
            inject_now(
                self.deployment,
                fspec,
                self.injections[index],
                time=time,
                rng=failure_rng(self.deployment, index),
            )
        self.apply_imports(deliveries.get("imports", {}))
        exports = self.fulfill_exports(
            deliveries.get("export_requests", [])
        )
        self.deployment.sim.run(until)
        emitted, self.outbox = self.outbox, []
        return {
            "emitted": emitted,
            "digests": self.gossip_advertisement(),
            "exports": exports,
            "next_event": self.deployment.sim.next_event_time(),
        }

    # ----- final collection ---------------------------------------------

    def result(self) -> ShardResult:
        """Collect this shard's metrics bundle after the last window."""
        indices = sorted(self.injections)
        metrics = collect_fleet_metrics(
            self.deployment,
            injections=[self.injections[i] for i in indices],
            workloads=self.workloads,
            duration=self.spec.duration,
        )
        latencies: list[float] = []
        for workload in self.workloads:
            if isinstance(workload, RuleChurn):
                latencies.extend(workload.confirmation_latencies())
        trace_rows: list[tuple] = []
        trace_emitted = 0
        obs = self.deployment.obs
        if obs.enabled:
            trace_rows = obs.trace.raw_events()
            trace_emitted = obs.trace.emitted
        return ShardResult(
            shard=self.shard,
            metrics=metrics,
            injection_indices=indices,
            confirmation_latencies=latencies,
            trace_rows=trace_rows,
            trace_emitted=trace_emitted,
            gossip_entries_imported=self.gossip_imported,
        )


def worker_main(
    conn: "Connection",
    spec: "ScenarioSpec",
    plan: ShardPlan,
    shard: int,
    incarnation: int = 0,
) -> None:
    """Process entry point: build, handshake, serve barrier windows.

    Protocol (coordinator side in :mod:`repro.fleet.coordinator`):

    * -> ``("ready",)`` once the shard deployment is built;
    * <- ``("run", until, deliveries)`` / -> ``("window", payload)``;
    * <- ``("finish",)`` / -> ``("result", ShardResult)``;
    * -> ``("error", traceback)`` on any exception, then exit.

    ``incarnation`` counts respawns: the coordinator passes 0 for the
    original process and N for the Nth replacement, so chaos hooks can
    target (or spare) replays deterministically.
    """
    try:
        chaos = [
            hook
            for hook in getattr(spec, "chaos", ())
            if hook.shard == shard
        ]
        worker = ShardWorker(spec, plan, shard)
        conn.send(("ready",))
        windows = 0
        while True:
            command = conn.recv()
            if command[0] == "run":
                _, until, deliveries = command
                _maybe_chaos(chaos, windows, incarnation)
                windows += 1
                conn.send(("window", worker.run_window(until, deliveries)))
            elif command[0] == "finish":
                conn.send(("result", worker.result()))
                return
            else:  # pragma: no cover - protocol misuse is a bug
                raise RuntimeError(f"unknown command {command[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()
