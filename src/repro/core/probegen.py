"""Probe generation (paper §3 + §5).

Given the expected flow table of a switch, a rule to probe and the
catching-rule match, :class:`ProbeGenerator` produces a
:class:`ProbeResult` containing the abstract probe header, the crafted
raw packet, and the expected observable outcomes with/without the rule —
or an :class:`UnmonitorableReason` when no probe exists (§3.5).

Pipeline (Figure 2):

1. filter the table to rules overlapping the probed rule (§5.4 lemma),
2. compile Hit / Distinguish / Collect to CNF
   (:class:`~repro.core.constraints.ConstraintCompiler`),
3. run the CDCL solver,
4. decode the assignment into abstract header values,
5. normalize for wire validity (§5.2: spare values, conditional fields),
6. craft the raw packet and compute expected outcomes.

:func:`verify_probe` is the independent, simulation-based checker used by
the test suite: it re-derives Table 1 semantics by actually processing
the probe against the table with and without the probed rule.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.core.constraints import ConstraintCompiler, DistinguishEncoding
from repro.openflow.fields import FieldName, HEADER
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable
from repro.packets.craft import CraftError, craft_packet, normalize_abstract_header
from repro.sat.solver import SatSolver


class UnmonitorableReason(str, enum.Enum):
    """Why no probe exists for a rule (§3.5)."""

    #: Higher-priority rules cover the probed rule completely (e.g. a
    #: backup rule shadowed by its primary), or the catching match is
    #: incompatible with the rule's match.
    UNSATISFIABLE = "unsatisfiable"
    #: A probe satisfying the bit constraints exists, but none of them
    #: can be turned into a wire-valid packet (limited-domain dead end).
    UNCRAFTABLE = "uncraftable"
    #: The solver exhausted its conflict budget (should not happen on
    #: realistic tables; reported separately for honesty).
    BUDGET_EXCEEDED = "budget_exceeded"


@dataclass
class ProbeResult:
    """Outcome of one probe-generation attempt.

    Attributes:
        rule: the probed rule.
        ok: True when a probe was produced.
        reason: set when ``ok`` is False.
        header: normalized abstract header values of the probe.
        packet: crafted raw packet bytes.
        outcome_present: expected observable outcome when the rule is in
            the data plane.
        outcome_absent: expected outcome when it is missing.
        generation_time: wall-clock seconds spent generating.
        cnf_vars / cnf_clauses: size of the SAT instance.
        overlapping_rules: how many rules survived the §5.4 filter.
    """

    rule: Rule
    ok: bool
    reason: UnmonitorableReason | None = None
    header: dict[FieldName, int] | None = None
    packet: bytes | None = None
    outcome_present: RuleOutcome | None = None
    outcome_absent: RuleOutcome | None = None
    generation_time: float = 0.0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    overlapping_rules: int = 0
    solver_conflicts: int = 0

    def expects_return(self) -> bool:
        """Will the probe come back to Monocle when the rule is healthy?

        False for drop rules (negative probing, §3.3).
        """
        assert self.outcome_present is not None
        return not self.outcome_present.is_drop()


@dataclass
class ProbeGenerator:
    """Generates probes for rules of one switch's flow table.

    Attributes:
        catch_match: match of the downstream catching rule the probe
            must satisfy (Collect constraint).  The reserved fields it
            pins must not be rewritten by table rules — validated at
            compile time.
        valid_in_ports: if given, the probe's in_port is constrained to
            this set (ports that physically exist / have an upstream
            injector).
        encoding: Distinguish-chain encoding (ablation knob).
        max_conflicts: CDCL conflict budget per probe.
        overlap_filter: the §5.4 optimization; disable only for the
            ablation benchmark.
    """

    catch_match: Match
    valid_in_ports: tuple[int, ...] | None = None
    encoding: DistinguishEncoding = DistinguishEncoding.ASSERTED_CHAIN
    max_conflicts: int | None = 100_000
    overlap_filter: bool = True
    miss_rule: Rule | None = None
    _reserved_fields: frozenset[FieldName] = field(init=False)

    def __post_init__(self) -> None:
        self._reserved_fields = frozenset(self.catch_match.fields)

    # ----- public API -----------------------------------------------------

    def generate(self, table: FlowTable, rule: Rule) -> ProbeResult:
        """Generate a probe for ``rule``, assumed present in ``table``.

        ``table`` is the *expected* table (control-plane view); the rule
        itself must be part of it so priority relations are well defined.
        """
        start = time.perf_counter()
        result = self._generate(table, rule)
        result.generation_time = time.perf_counter() - start
        return result

    def _generate(self, table: FlowTable, rule: Rule) -> ProbeResult:
        if self.overlap_filter:
            candidates = table.overlapping(rule.match)
        else:
            candidates = table.rules()
        candidates = [r for r in candidates if r.key() != rule.key()]
        # The §3.2 no-rewriting-reserved-fields assumption only needs to
        # hold on rules this probe can interact with; use
        # :meth:`validate_table` for a whole-table audit.
        self._check_reserved_fields([rule] + candidates)
        higher = [r for r in candidates if r.priority > rule.priority]
        lower = [r for r in candidates if r.priority < rule.priority]

        compiler = ConstraintCompiler(encoding=self.encoding)
        # Hit
        compiler.assert_matches(rule.match)
        for other in higher:
            compiler.assert_not_matches(other.match)
        # Collect
        compiler.assert_matches(self.catch_match)
        # Distinguish
        compiler.assert_distinguish(rule, lower, miss_rule=self.miss_rule)
        # Wire-level domain restriction for in_port, which unlike the
        # other limited-domain fields cannot be fixed after solving
        # (rules commonly match on it exactly).
        if self.valid_in_ports is not None:
            compiler.assert_value_in(FieldName.IN_PORT, self.valid_in_ports)

        solver = SatSolver(compiler.cnf)
        sat = solver.solve(max_conflicts=self.max_conflicts)

        result = ProbeResult(
            rule=rule,
            ok=False,
            cnf_vars=compiler.cnf.num_vars,
            cnf_clauses=compiler.cnf.num_clauses,
            overlapping_rules=len(candidates),
            solver_conflicts=sat.conflicts,
        )
        if sat.satisfiable is None:
            result.reason = UnmonitorableReason.BUDGET_EXCEEDED
            return result
        if not sat.satisfiable:
            result.reason = UnmonitorableReason.UNSATISFIABLE
            return result

        raw_values = compiler.decode_assignment(sat.assignment)
        # The §5.2 substitution lemma only needs the matches the probe
        # can interact with: by the §5.4 non-overlap lemma, a probe that
        # matches the probed rule can never match a non-overlapping rule
        # regardless of what value the substituted field takes.
        relevant = (
            [rule.match]
            + [r.match for r in candidates]
            + [self.catch_match]
        )
        try:
            header = normalize_abstract_header(raw_values, relevant)
            packet = craft_packet(header)
        except CraftError:
            result.reason = UnmonitorableReason.UNCRAFTABLE
            return result

        result.ok = True
        result.header = header
        result.packet = packet
        result.outcome_present, result.outcome_absent = _candidate_outcomes(
            rule, candidates, header
        )
        return result

    # ----- validation ------------------------------------------------------

    def _check_reserved_fields(self, rules) -> None:
        """Reject rules that rewrite the probe-reserved fields.

        §3.2 lists two failure modes if this assumption is violated; the
        generator refuses rather than producing unsound probes.
        """
        for rule in rules:
            rewritten = rule.actions.rewritten_fields()
            bad = rewritten & self._reserved_fields
            if bad:
                raise ValueError(
                    f"rule {rule!r} rewrites probe-reserved field(s) "
                    f"{sorted(f.value for f in bad)}"
                )

    def validate_table(self, table: FlowTable) -> None:
        """Audit a whole table against the reserved-field assumption."""
        self._check_reserved_fields(table)


def _candidate_outcomes(
    rule: Rule, candidates: list[Rule], header: dict[FieldName, int]
) -> tuple[RuleOutcome, RuleOutcome]:
    """Expected with/without outcomes using only the overlap candidates.

    Sound by the §5.4 lemma: the probe cannot match any rule outside the
    candidate set, so the highest-priority match is decided within it.
    """
    ordered = sorted(candidates + [rule], key=lambda r: -r.priority)
    present: RuleOutcome | None = None
    absent: RuleOutcome | None = None
    for candidate in ordered:
        if not candidate.match.matches(header):
            continue
        if present is None:
            present = RuleOutcome.from_rule(candidate, header)
        if absent is None and candidate.key() != rule.key():
            absent = RuleOutcome.from_rule(candidate, header)
        if present is not None and absent is not None:
            break
    if present is None:
        present = RuleOutcome.dropped()
    if absent is None:
        absent = RuleOutcome.dropped()
    return present, absent


def expected_outcomes(
    table: FlowTable, rule: Rule, header: dict[FieldName, int]
) -> tuple[RuleOutcome, RuleOutcome]:
    """Expected outcome of the probe with/without the probed rule.

    ECMP uncertainty is preserved (the returned outcomes keep the ecmp
    flag so the monitor accepts any of the possible ports).
    """
    present = full_outcome(table, header)
    without = table.copy()
    without.remove(rule)
    absent = full_outcome(without, header)
    return present, absent


def full_outcome(table: FlowTable, header: dict[FieldName, int]) -> RuleOutcome:
    """Outcome of processing ``header``, keeping ECMP alternatives."""
    matched = table.lookup(header)
    if matched is None:
        return RuleOutcome.dropped()
    return RuleOutcome.from_rule(matched, header)


def verify_probe(
    table: FlowTable,
    rule: Rule,
    header: dict[FieldName, int],
    catch_match: Match,
) -> tuple[bool, str]:
    """Independent, simulation-based check of Table 1.

    Returns ``(valid, explanation)``.  Used by tests and by paranoid
    callers; the generator's constraints should make this always pass
    for generated probes.
    """
    hit = table.lookup(header)
    if hit is None or hit.key() != rule.key():
        return False, f"probe is processed by {hit!r}, not the probed rule"

    if not catch_match.matches(header):
        return False, "probe does not match the catching rule"

    present, absent = expected_outcomes(table, rule, header)
    if not present.distinguishable_from(absent):
        return False, (
            f"outcomes are not distinguishable: present={present}, "
            f"absent={absent}"
        )
    return True, "ok"
