"""Tests for network wiring: links, channels, hosts, topology maps."""


from repro.network import ControlChannel, Link, Network
from repro.network.traffic import (
    FlowSpec,
    TrafficGenerator,
    decode_flow_payload,
    encode_flow_payload,
)
from repro.openflow.actions import output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.messages import EchoRequest
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.topology.generators import triangle


class TestLink:
    def test_delivery_with_latency(self):
        sim = Simulator()
        link = Link(sim, latency=0.005)
        arrived = []
        link.connect(
            lambda raw: None, lambda raw: arrived.append((sim.now, raw))
        )
        link.send_from_a(b"x")
        sim.run()
        assert arrived == [(0.005, b"x")]

    def test_bidirectional(self):
        sim = Simulator()
        link = Link(sim)
        a_got, b_got = [], []
        link.connect(a_got.append, b_got.append)
        link.send_from_a(b"to-b")
        link.send_from_b(b"to-a")
        sim.run()
        assert a_got == [b"to-a"]
        assert b_got == [b"to-b"]

    def test_failure_drops_both_directions(self):
        sim = Simulator()
        link = Link(sim)
        got = []
        link.connect(got.append, got.append)
        link.fail()
        link.send_from_a(b"x")
        link.send_from_b(b"y")
        sim.run()
        assert got == []
        assert link.dropped == 2
        link.restore()
        link.send_from_a(b"z")
        sim.run()
        assert got == [b"z"]


class TestControlChannel:
    def test_both_directions_with_latency(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=0.002)
        down, up = [], []
        channel.down_handler = lambda m: down.append((sim.now, m))
        channel.up_handler = lambda m: up.append((sim.now, m))
        msg = EchoRequest()
        channel.send_down(msg)
        channel.send_up(msg)
        sim.run()
        assert down[0][0] == 0.002
        assert up[0][0] == 0.002
        assert channel.messages_down == 1
        assert channel.messages_up == 1


class TestNetwork:
    def make(self):
        sim = Simulator()
        return sim, Network(sim, triangle(), seed=1)

    def test_switches_created(self):
        _, net = self.make()
        assert set(net.switches) == {"s1", "s2", "s3"}
        assert len(net.links) == 3

    def test_port_maps_consistent(self):
        _, net = self.make()
        for u, v in net.topology.edges:
            port_u = net.port_toward[u][v]
            assert net.neighbor_on_port[u][port_u] == v

    def test_packet_crosses_link(self):
        from repro.packets.craft import craft_packet

        sim, net = self.make()
        s1, s2 = net.switch("s1"), net.switch("s2")
        s1.install_directly(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=output(net.port_toward["s1"]["s2"]),
            )
        )
        raw = craft_packet(
            {FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 6}, b"x"
        )
        s1.inject(raw, in_port=net.port_toward["s1"]["s3"])
        sim.run_for(0.1)
        # s2 received and (having no rules) dropped it.
        assert s2.stats.packets_dropped == 1

    def test_fail_link(self):
        from repro.packets.craft import craft_packet

        sim, net = self.make()
        net.fail_link("s1", "s2")
        s1, s2 = net.switch("s1"), net.switch("s2")
        s1.install_directly(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=output(net.port_toward["s1"]["s2"]),
            )
        )
        raw = craft_packet({FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 6})
        s1.inject(raw, in_port=net.port_toward["s1"]["s3"])
        sim.run_for(0.1)
        assert s2.stats.packets_dropped == 0  # nothing arrived

    def test_hosts(self):
        sim, net = self.make()
        h1 = net.add_host("h1", "s1")
        h2 = net.add_host("h2", "s2")
        s1, s2 = net.switch("s1"), net.switch("s2")
        s1.install_directly(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=output(net.port_toward["s1"]["s2"]),
            )
        )
        s2.install_directly(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=output(net.port_toward["s2"]["h2"]),
            )
        )
        h1.send(
            nw_dst=0x0A000002, dl_type=0x0800, nw_proto=17, payload=b"hello"
        )
        sim.run_for(0.1)
        assert len(h2.received) == 1
        assert h2.received[0].payload == b"hello"

    def test_switch_facing_ports_exclude_hosts(self):
        _, net = self.make()
        net.add_host("h1", "s1")
        facing = net.switch_facing_ports("s1")
        host_port = net.port_toward["s1"]["h1"]
        assert host_port not in facing
        assert len(facing) == 2

    def test_upstream_options(self):
        _, net = self.make()
        options = net.upstream_options("s1")
        port_from_s2 = net.port_toward["s1"]["s2"]
        assert options[port_from_s2] == ("s2", net.port_toward["s2"]["s1"])

    def test_duplicate_host_rejected(self):
        import pytest

        _, net = self.make()
        net.add_host("h1", "s1")
        with pytest.raises(ValueError):
            net.add_host("h1", "s2")

    def test_switch_numbers_stable(self):
        _, net = self.make()
        numbers = [net.switch_number(n) for n in ("s1", "s2", "s3")]
        assert numbers == [1, 2, 3]


class TestTraffic:
    def test_flow_payload_roundtrip(self):
        payload = encode_flow_payload(42, 1000)
        assert decode_flow_payload(payload) == (42, 1000)
        assert decode_flow_payload(b"junk") is None

    def test_generator_rate(self):
        sim = Simulator()
        net = Network(sim, triangle(), seed=1)
        host = net.add_host("h1", "s1")
        spec = FlowSpec(
            flow_id=1,
            header_fields=(
                ("dl_type", 0x0800), ("nw_proto", 17), ("nw_dst", 5)
            ),
        )
        gen = TrafficGenerator(sim, host, spec, rate=100.0)
        gen.start()
        sim.run_for(0.5)
        # ~50 packets in 0.5 s at 100/s (first fires at t=0).
        assert 48 <= host.sent_count <= 52

    def test_generator_stop(self):
        sim = Simulator()
        net = Network(sim, triangle(), seed=1)
        host = net.add_host("h1", "s1")
        spec = FlowSpec(
            flow_id=1, header_fields=(("dl_type", 0x0800), ("nw_proto", 17))
        )
        gen = TrafficGenerator(sim, host, spec, rate=100.0)
        gen.start()
        sim.run_for(0.1)
        gen.stop()
        count = host.sent_count
        sim.run_for(0.5)
        assert host.sent_count <= count + 1
