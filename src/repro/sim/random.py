"""Seeded randomness helpers for reproducible experiments.

Every experiment in the benchmark harness takes a seed; all stochastic
choices (which rule to fail, install latencies, ECMP port selection, ...)
flow through a :class:`DeterministicRandom` so that a run is a pure
function of its seed.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A thin, explicitly-seeded wrapper over :mod:`random.Random`.

    The wrapper exists so call sites read as intent
    (``rng.choose(rules)``) and so we can add domain helpers such as
    latency jitter without leaking distribution choices everywhere.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRandom":
        """Derive an independent stream; used to decouple subsystems."""
        return DeterministicRandom(hash((self.seed, salt)) & 0x7FFFFFFF)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        """Uniform integer of the given bit width."""
        if bits <= 0:
            return 0
        return self._rng.getrandbits(bits)

    def choose(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Pick ``k`` distinct elements uniformly."""
        return self._rng.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/s)."""
        return self._rng.expovariate(rate)

    def jittered(self, base: float, fraction: float = 0.1) -> float:
        """``base`` +/- ``fraction`` relative uniform jitter, floored at 0."""
        low = base * (1.0 - fraction)
        high = base * (1.0 + fraction)
        return max(0.0, self._rng.uniform(low, high))
