"""Discrete-event simulation kernel.

All timed behaviour in the reproduction (switch control planes, link
latencies, Monocle probing cycles, traffic generators) runs on top of this
kernel.  It provides a deterministic event loop with a virtual clock, timer
scheduling, and cooperative processes.

The kernel is deliberately small: a binary-heap scheduler plus a couple of
convenience wrappers.  Determinism matters more than raw throughput here —
the paper's experiments are about *orderings* of control-plane and
data-plane events, and a deterministic kernel makes those orderings
reproducible and testable.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "DeterministicRandom",
]
