"""Ablation: the §5.4 overlap filter.

The paper calls restricting constraints to overlapping rules "a
powerful optimization, as typically rules only overlap with a handful
of other rules".  This bench quantifies it: probe-generation time and
SAT-instance size with and without the filter, on the Stanford-like
ACL table.
"""

import random

from repro.analysis import format_table
from repro.core.probegen import ProbeGenerator, verify_probe
from repro.datasets import stanford_table
from repro.openflow.match import Match

from .conftest import bench_seed, print_header

CATCH = Match.build(dl_vlan=0xF03)
SAMPLE = 40


def run(table, rules, overlap_filter):
    generator = ProbeGenerator(
        catch_match=CATCH, overlap_filter=overlap_filter
    )
    times, clauses, found = [], [], 0
    for rule in rules:
        result = generator.generate(table, rule)
        times.append(result.generation_time * 1000.0)
        clauses.append(result.cnf_clauses)
        if result.ok:
            found += 1
    return times, clauses, found


def test_ablation_overlap_filter(benchmark):
    table = stanford_table()
    rng = random.Random(bench_seed())
    rules = rng.sample(table.rules(), SAMPLE)

    with_times, with_clauses, with_found = run(table, rules, True)
    without_times, without_clauses, without_found = run(table, rules, False)

    rows = [
        [
            "with filter (§5.4)",
            f"{sum(with_times) / SAMPLE:.2f}",
            f"{sum(with_clauses) / SAMPLE:.0f}",
            with_found,
        ],
        [
            "without filter",
            f"{sum(without_times) / SAMPLE:.2f}",
            f"{sum(without_clauses) / SAMPLE:.0f}",
            without_found,
        ],
    ]
    print_header(
        f"Ablation — overlap filtering on Stanford ({len(table)} rules, "
        f"{SAMPLE} probes)"
    )
    print(format_table(["variant", "avg ms", "avg clauses", "found"], rows))
    speedup = (sum(without_times) / SAMPLE) / (sum(with_times) / SAMPLE)
    print(f"\nspeedup from the filter: {speedup:.1f}x")

    # Same verdicts, dramatically smaller instances.
    assert with_found == without_found
    assert sum(with_clauses) < sum(without_clauses) / 5
    assert speedup > 2.0

    # Results must be equivalent, not just equicountable: both filtered
    # and unfiltered probes verify against the full table.
    generator = ProbeGenerator(catch_match=CATCH, overlap_filter=True)
    for rule in rules[:10]:
        result = generator.generate(table, rule)
        if result.ok:
            assert verify_probe(table, rule, result.header, CATCH)[0]

    benchmark.pedantic(
        lambda: run(table, rules[:10], True), rounds=2, iterations=1
    )
