"""Probe metadata carried in packet payloads (paper §4.2).

Monocle probes many rules in parallel.  A caught probe must be matched
back to the rule it was testing, so each probe carries metadata in its
payload — a part of the packet no OpenFlow 1.0 switch can touch.  The
metadata records the probed switch, the rule under test (its cookie), a
per-probe nonce and the expected outcome category.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Magic prefix distinguishing Monocle probes from stray traffic.
PROBE_MAGIC = b"MNCL"

_FORMAT = "!4sQQIB"
_LEN = struct.calcsize(_FORMAT)


@dataclass(frozen=True)
class ProbeMetadata:
    """Metadata embedded in every probe packet's payload.

    Attributes:
        switch_id: the switch whose rule is being probed.
        rule_cookie: cookie of the rule under test.
        nonce: distinguishes probe generations; stale in-flight probes
            (invalidated by a newer table state, §4.2) carry old nonces
            and are discarded on receipt.
        expected_drop: True when the probe should *not* come back
            (negative probing for drop rules, §3.3).
    """

    switch_id: int
    rule_cookie: int
    nonce: int
    expected_drop: bool = False

    def encode(self) -> bytes:
        """Serialize to payload bytes."""
        return struct.pack(
            _FORMAT,
            PROBE_MAGIC,
            self.switch_id,
            self.rule_cookie,
            self.nonce,
            1 if self.expected_drop else 0,
        )

    @classmethod
    def decode(cls, payload: bytes) -> "ProbeMetadata | None":
        """Parse payload bytes; None when this is not a Monocle probe."""
        if len(payload) < _LEN:
            return None
        magic, switch_id, cookie, nonce, flags = struct.unpack(
            _FORMAT, payload[:_LEN]
        )
        if magic != PROBE_MAGIC:
            return None
        return cls(
            switch_id=switch_id,
            rule_cookie=cookie,
            nonce=nonce,
            expected_drop=bool(flags & 1),
        )
