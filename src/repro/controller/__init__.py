"""Reference SDN controller.

The paper's evaluation drives switches with a controller performing path
installation and two-phase consistent updates ([19]); Monocle's value is
giving that controller *truthful* installation feedback.  This package
provides:

* :class:`~repro.controller.controller.SdnController` — rule and path
  installation with three confirmation modes: none, OpenFlow barriers,
  or Monocle acknowledgments.
* :class:`~repro.controller.updates.ConsistentPathUpdate` — the §8.1.2
  two-phase reroute: install the new downstream rule(s), wait for
  confirmation, then flip the ingress rule.
"""

from repro.controller.controller import ConfirmMode, SdnController
from repro.controller.updates import ConsistentPathUpdate

__all__ = ["ConfirmMode", "SdnController", "ConsistentPathUpdate"]
