"""Exact (optimal) vertex coloring via branch and bound.

The paper computes optimal colorings with an ILP; a DFS branch-and-bound
with clique lower bounds and symmetry breaking is its exact equivalent
here and handles Topology-Zoo-scale graphs in well under the "couple of
minutes" the paper reports for all 271 topologies.
"""

from __future__ import annotations

import sys

import networkx as nx

from repro.coloring.greedy import GreedyOrder, greedy_coloring


def exact_coloring(
    graph: nx.Graph, node_budget: int | None = 2_000_000
) -> dict:
    """Optimal proper coloring; returns node -> color (0-based).

    Args:
        graph: the graph to color (isolated nodes allowed).
        node_budget: cap on search-tree nodes; when exceeded the best
            coloring found so far (at worst the DSATUR one) is returned.
            ``None`` searches exhaustively.
    """
    if graph.number_of_nodes() == 0:
        return {}

    # The DFS recurses once per node; large corpus graphs exceed the
    # default interpreter limit.
    needed = 3 * graph.number_of_nodes() + 1000
    old_limit = sys.getrecursionlimit()
    if needed > old_limit:
        sys.setrecursionlimit(needed)
    try:
        # Work per connected component; chromatic number is the max.
        coloring: dict = {}
        for component in nx.connected_components(graph):
            sub = graph.subgraph(component)
            coloring.update(_color_component(sub, node_budget))
        return coloring
    finally:
        if needed > old_limit:
            sys.setrecursionlimit(old_limit)


def _color_component(graph: nx.Graph, node_budget: int | None) -> dict:
    best = greedy_coloring(graph, GreedyOrder.DSATUR)
    best_k = max(best.values()) + 1

    # Lower bound: a greedily-found clique.
    clique = _greedy_clique(graph)
    lower = len(clique)
    if best_k == lower:
        return best

    # Branch and bound, trying to beat best_k - 1, then -2, ...
    nodes = _branching_order(graph, clique)
    budget = [node_budget if node_budget is not None else -1]

    while best_k > lower:
        target = best_k - 1
        assignment = _search(graph, nodes, clique, target, budget)
        if assignment is None:
            break
        best = assignment
        best_k = max(best.values()) + 1
    return best


def _greedy_clique(graph: nx.Graph) -> list:
    """A maximal clique grown greedily from the highest-degree node."""
    nodes = sorted(graph.nodes, key=lambda n: -graph.degree[n])
    clique: list = []
    for node in nodes:
        if all(graph.has_edge(node, member) for member in clique):
            clique.append(node)
    return clique


def _branching_order(graph: nx.Graph, clique: list) -> list:
    """Clique nodes first (pre-colored), then by descending degree."""
    clique_set = set(clique)
    rest = sorted(
        (n for n in graph.nodes if n not in clique_set),
        key=lambda n: (-graph.degree[n], repr(n)),
    )
    return clique + rest


def _search(
    graph: nx.Graph,
    nodes: list,
    clique: list,
    max_colors: int,
    budget: list,
) -> dict | None:
    """DFS for a proper coloring with at most ``max_colors`` colors."""
    if len(clique) > max_colors:
        return None
    colors: dict = {node: i for i, node in enumerate(clique)}
    index = len(clique)

    # Precompute neighbor lists for speed.
    neighbors = {node: list(graph.neighbors(node)) for node in nodes}

    def dfs(i: int, used: int) -> bool:
        if budget[0] == 0:
            return False
        if budget[0] > 0:
            budget[0] -= 1
        if i == len(nodes):
            return True
        node = nodes[i]
        forbidden = {
            colors[nbr] for nbr in neighbors[node] if nbr in colors
        }
        # Symmetry breaking: allow at most one brand-new color.
        limit = min(max_colors, used + 1)
        for color in range(limit):
            if color in forbidden:
                continue
            colors[node] = color
            if dfs(i + 1, max(used, color + 1)):
                return True
            del colors[node]
        return False

    if dfs(index, len(clique)):
        return dict(colors)
    return None
