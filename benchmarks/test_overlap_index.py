"""Benchmark: tuple-space overlap index vs linear packed scan.

PR 2/3 made the SAT side of probe generation ~30x incremental, leaving
the §5.4 overlap pre-filter itself — an O(N) packed scan per probed
rule — as the dominant steady-state cost on production-scale tables.
This benchmark measures :meth:`FlowTable.overlapping` and
:meth:`FlowTable.lookup` two ways on the same ClassBench-style ACL
tables (constant overlap *density*, so bigger tables mean more
universes, not denser nesting — the realistic large-network regime):

* **linear** — ``FlowTable(use_index=False)``: the packed row cache,
  one bigint expression per rule (the pre-PR-4 behaviour, though the
  cache itself is now incrementally maintained);
* **indexed** — the default tuple-space index: signature buckets,
  staged anchor hashes, value-bound pruning.

Churn maintenance is measured too: per remove+re-add µs while queries
keep flowing, asserting the engines are maintained incrementally
(``packed_builds``/``index_builds`` stay at 1 — no wholesale rebuild).

A **dense-overlap guard** reruns the comparison on the adversarial
incremental-churn table (every rule overlapping the probed one): the
index must degrade gracefully to the packed scan there, not regress.

Scale: sizes are ``(4096, 16384, 65536) * REPRO_BENCH_SCALE`` (0.25 in
CI exercises 1k/4k/16k; the default 1.0 runs the full sweep).

Writes ``BENCH_overlap.json`` and **fails** unless the indexed path is
>= 5x faster than linear per overlap query on every measured size from
the second one up — this is the CI performance gate for the index.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import print_header, write_bench_artifact
from repro.datasets import sized_acl_table
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.actions import output
from repro.openflow.table import FlowTable
from repro.sim.random import DeterministicRandom

SIZES = (4096, 16384, 65536)
SAMPLE = 48
CHURN_STEPS = 200
GATE_SPEEDUP = 5.0


def _sample_rules(rules, count, rng):
    return [rules[i] for i in rng.sample(range(len(rules)), count)]


def _time_overlap(table, probes) -> float:
    """Median per-query ms of ``table.overlapping`` over the probes."""
    times = []
    for rule in probes:
        start = time.perf_counter()
        table.overlapping(rule.match)
        times.append(1e3 * (time.perf_counter() - start))
    return statistics.median(times)


def _time_lookup(table, headers) -> float:
    times = []
    for header in headers:
        start = time.perf_counter()
        table.lookup(header)
        times.append(1e3 * (time.perf_counter() - start))
    return statistics.median(times)


def test_overlap_index_sparse_acl(scale, seed):
    sizes = [max(512, int(n * scale)) for n in SIZES]
    rng = DeterministicRandom(seed).fork(0x7013)

    print_header(
        "Tuple-space overlap index vs linear scan "
        "(sparse ACL tables, per-query ms)"
    )
    print(
        f"{'rules':>7} {'tuples':>7} {'overlap lin':>12} {'overlap idx':>12} "
        f"{'speedup':>8} {'lookup lin':>11} {'lookup idx':>11} "
        f"{'churn us':>9}"
    )

    rows = []
    for num_rules in sizes:
        table = sized_acl_table(num_rules, seed=seed)
        rules = table.rules()
        linear = FlowTable(rules, check_overlap=False, use_index=False)
        probes = _sample_rules(rules, min(SAMPLE, len(rules)), rng)
        headers = [
            {name: fm.value for name, fm in rule.match.fields.items()}
            for rule in probes
        ]

        # Warm both engines and check result equivalence on the sample.
        for rule in probes:
            indexed_hit = table.overlapping(rule.match)
            linear_hit = linear.overlapping(rule.match)
            assert [r.key() for r in indexed_hit] == [
                r.key() for r in linear_hit
            ]
        overlap_lin = _time_overlap(linear, probes)
        overlap_idx = _time_overlap(table, probes)
        lookup_lin = _time_lookup(linear, headers)
        lookup_idx = _time_lookup(table, headers)

        # Incremental churn maintenance: remove + re-add while querying.
        victims = _sample_rules(
            rules, min(CHURN_STEPS, len(rules) // 2), rng
        )
        start = time.perf_counter()
        for victim in victims:
            table.remove(victim)
            table.install(victim)
        churn_us = 1e6 * (time.perf_counter() - start) / (2 * len(victims))
        # No wholesale rebuild: both engines were built exactly once.
        assert table.index_builds == 1
        assert linear.packed_builds == 1
        # Post-churn queries still match the linear engine.
        check = probes[0]
        linear.remove(check)
        linear.install(check)
        assert [r.key() for r in table.overlapping(check.match)] == [
            r.key() for r in linear.overlapping(check.match)
        ]

        row = {
            "rules": num_rules,
            "tuples": table._index.num_tuples,
            "overlap_linear_ms": round(overlap_lin, 4),
            "overlap_indexed_ms": round(overlap_idx, 4),
            "lookup_linear_ms": round(lookup_lin, 4),
            "lookup_indexed_ms": round(lookup_idx, 4),
            "churn_us_per_op": round(churn_us, 2),
        }
        row["overlap_speedup"] = (
            round(overlap_lin / overlap_idx, 2)
            if overlap_idx > 0
            else float("inf")
        )
        row["lookup_speedup"] = (
            round(lookup_lin / lookup_idx, 2)
            if lookup_idx > 0
            else float("inf")
        )
        rows.append(row)
        print(
            f"{row['rules']:>7} {row['tuples']:>7} "
            f"{row['overlap_linear_ms']:>12.3f} "
            f"{row['overlap_indexed_ms']:>12.3f} "
            f"{row['overlap_speedup']:>7.1f}x "
            f"{row['lookup_linear_ms']:>11.3f} "
            f"{row['lookup_indexed_ms']:>11.3f} "
            f"{row['churn_us_per_op']:>9.1f}"
        )

    path = write_bench_artifact(
        "overlap",
        {
            "bench": "tuple_space_overlap_index_vs_linear",
            "unit": "ms_per_query_median",
            "rows": rows,
        },
    )
    print(f"\nartifact: {path}")

    # CI gate: sublinear indexing must beat the linear scan by >= 5x on
    # sparse tables once they are big enough for O(N) to matter.
    for row in rows[1:]:
        assert row["overlap_speedup"] >= GATE_SPEEDUP, (
            f"overlap index speedup {row['overlap_speedup']:.1f}x below "
            f"{GATE_SPEEDUP}x at {row['rules']} rules"
        )


def _dense_table(num_rules: int, rng: DeterministicRandom):
    """The incremental-churn adversarial table: everything overlaps the
    hot /8 rule, fillers are pairwise-disjoint exact matches."""
    hot = Rule(
        priority=5000,
        match=Match.build(nw_dst=(0x0A000000, 8)),
        actions=output(1),
    )
    rules = [hot]
    for i, suffix in enumerate(rng.sample(range(1, 1 << 22), num_rules - 1)):
        rules.append(
            Rule(
                priority=(5001 + i) if i % 2 == 0 else (1 + i),
                match=Match.build(nw_dst=0x0A000000 + suffix),
                actions=output(2 + i % 3),
            )
        )
    return rules, hot


def test_overlap_index_dense_degrades_gracefully(scale, seed):
    """When every rule overlaps the query, the index must fall back to
    (per-bucket) packed scanning and stay within 2x of the linear scan."""
    num_rules = max(512, int(4096 * scale))
    rng = DeterministicRandom(seed).fork(0xDE45E)
    rules, hot = _dense_table(num_rules, rng)
    indexed = FlowTable(rules, check_overlap=False, use_index=True)
    linear = FlowTable(rules, check_overlap=False, use_index=False)

    assert [r.key() for r in indexed.overlapping(hot.match)] == [
        r.key() for r in linear.overlapping(hot.match)
    ]
    repeats = 20
    start = time.perf_counter()
    for _ in range(repeats):
        linear.overlapping(hot.match)
    linear_ms = 1e3 * (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        indexed.overlapping(hot.match)
    indexed_ms = 1e3 * (time.perf_counter() - start) / repeats

    print_header("Dense-overlap guard (all rules overlap the query)")
    print(
        f"{num_rules} rules: linear {linear_ms:.3f} ms, "
        f"indexed {indexed_ms:.3f} ms"
    )
    assert indexed_ms <= 2.0 * linear_ms + 0.5, (
        f"index regressed the dense-overlap case: {indexed_ms:.3f}ms vs "
        f"linear {linear_ms:.3f}ms"
    )
