"""Benchmark: fleet-wide probe generation with shared solver contexts.

Replicated configurations are the common case at fleet scale: the same
ACL pushed to every edge switch.  This benchmark deploys a star with
``>= 8`` leaves carrying *identical* flow tables, drives an identical
(replicated) churn + re-probe workload through every leaf's Monitor,
and measures total probe-generation wall-clock two ways:

* **independent** — ``share_contexts=False``: every switch owns its
  own :class:`~repro.core.probegen.ProbeGenContext` (the PR-2
  behaviour); N replicas pay N solver warm-ups and N solves per probe.
* **shared** — ``share_contexts=True``: the registry fingerprints the
  tables, dedupes the replicas into one context, and replays the
  replicated churn through the shared operation log, so the fleet pays
  for one solver and the siblings take cache hits.

Both modes must produce byte-identical probes (same deterministic
solver, same per-switch operation sequences); the benchmark asserts
this for every (switch, rule) pair as a safety net on top of the
dedicated equivalence property test.

Writes ``BENCH_fleet.json`` and **fails** if the shared registry is
less than 3x faster fleet-wide — this is the CI performance gate for
cross-switch context sharing.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header, write_bench_artifact
from repro.fleet.deployment import FleetDeployment
from repro.openflow.actions import drop, output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule
from repro.sim.random import DeterministicRandom
from repro.topology.generators import star

LEAVES = 8
HOT_PRIORITY = 5000
SPEEDUP_GATE = 3.0


def _leaf_rule_specs(num_rules: int, rng: DeterministicRandom):
    """(priority, match, actions) triples of one replicated leaf table.

    Same adversarial shape as the per-switch churn benchmark: one hot
    /8 rule whose probe interacts with everything, fillers half above
    (Hit constraints) and half below (Distinguish chain).
    """
    specs = [
        (HOT_PRIORITY, Match.build(nw_dst=(0x0A000000, 8)), output(1))
    ]
    suffixes = rng.sample(range(1, 1 << 22), num_rules - 1)
    for i, suffix in enumerate(suffixes):
        above = i % 2 == 0
        specs.append(
            (
                HOT_PRIORITY + 1 + i if above else 1 + i,
                Match.build(nw_dst=0x0A000000 + suffix),
                drop(),  # deny entries, ACL-style: distinguishable
            )
        )
    return specs


def _deploy(share: bool, specs, seed: int):
    """A star fleet whose leaves all carry the replicated table."""
    deployment = FleetDeployment(
        star(LEAVES), seed=seed, dynamic=False, share_contexts=share
    )
    leaves = [n for n in deployment.nodes if n != "hub"]
    assert len(leaves) >= 8, "gate requires >= 8 duplicate-table switches"
    for leaf in leaves:
        for priority, match, actions in specs:
            deployment.install_production_rule(
                leaf, Rule(priority=priority, match=match, actions=actions)
            )
    return deployment, leaves


def _drive(deployment, leaves, specs, churn_specs) -> dict:
    """The replicated workload: full probe sweep, then churn rounds.

    Every leaf probes every rule (steady-state warm-up), then each
    churn round modifies one filler on *every* leaf (the replicated
    FlowMod wave) and re-probes the hot rule plus the victim on every
    leaf.  Returns per-(switch, rule-key) probe bytes for the
    cross-mode equivalence check and the elapsed generation seconds.
    """
    probes: dict = {}

    def probe(leaf, priority, match):
        monitor = deployment.monitor(leaf)
        rule = monitor.expected.get(priority, match)
        assert rule is not None
        result = monitor.probe_for_rule(rule)
        # Shadowed deny entries are legitimately unmonitorable (§3.5);
        # the equivalence check still covers them via (ok, reason).
        probes[(leaf, priority, match)] = (
            result.ok,
            result.reason,
            result.packet,
            None
            if result.header is None
            else tuple(sorted(result.header.items())),
            result.outcome_present,
            result.outcome_absent,
        )
        return result

    start = time.perf_counter()
    hot_ok = 0
    for leaf in leaves:
        for priority, match, _actions in specs:
            result = probe(leaf, priority, match)
            if priority == HOT_PRIORITY and result.ok:
                hot_ok += 1
    assert hot_ok == len(leaves), "hot rule must be monitorable everywhere"
    for round_index, (priority, match, actions) in enumerate(churn_specs):
        for leaf in leaves:
            deployment.monitor(leaf).observe_flowmod(
                FlowMod(
                    command=FlowModCommand.MODIFY_STRICT,
                    match=match,
                    priority=priority,
                    actions=actions,
                )
            )
        for leaf in leaves:
            probe(leaf, HOT_PRIORITY, specs[0][1])
            probe(leaf, priority, match)
    elapsed = time.perf_counter() - start
    return {"probes": probes, "seconds": elapsed}


def test_fleet_shared_context_churn(scale, seed):
    rng = DeterministicRandom(seed).fork(0xF1EE7C)
    num_rules = max(16, int(round(96 * min(scale, 1.0))))
    rounds = max(3, int(round(12 * min(scale, 1.0))))
    specs = _leaf_rule_specs(num_rules, rng.fork(1))

    # Churn: flip a below-the-hot-rule deny filler to a rewriting
    # forward each round (a real table change — chain retraction +
    # re-solve on the first replica, shared-log replay on the rest).
    fillers = [s for s in specs[1:] if s[0] < HOT_PRIORITY]
    churn_specs = []
    for i in range(rounds):
        priority, match, _actions = fillers[i % len(fillers)]
        churn_specs.append(
            (priority, match, output(1, nw_tos=0x10 + 8 * (i % 2)))
        )

    print_header(
        "Fleet-wide probe generation: shared vs independent contexts "
        f"({LEAVES} duplicate-table leaves)"
    )

    dep_ind, leaves = _deploy(False, specs, seed)
    independent = _drive(dep_ind, leaves, specs, churn_specs)

    dep_shr, leaves_s = _deploy(True, specs, seed)
    assert leaves_s == leaves
    shared = _drive(dep_shr, leaves_s, specs, churn_specs)

    # Byte-equivalence: deduped generation must produce the exact same
    # probes as per-switch independent generation.
    assert shared["probes"].keys() == independent["probes"].keys()
    for key, probe in independent["probes"].items():
        assert shared["probes"][key] == probe, (
            f"shared probe diverged from independent generation at {key}"
        )

    ind_stats = dep_ind.probegen_stats()
    shr_stats = dep_shr.probegen_stats()
    registry = dep_shr.shared_context_stats()
    speedup = (
        independent["seconds"] / shared["seconds"]
        if shared["seconds"] > 0
        else float("inf")
    )

    row = {
        "switches": LEAVES + 1,
        "duplicate_switches": len(leaves),
        "rules_per_switch": num_rules,
        "churn_rounds": rounds,
        "independent_s": round(independent["seconds"], 4),
        "shared_s": round(shared["seconds"], 4),
        "speedup": round(speedup, 2),
        "independent_solves": ind_stats.probes_generated,
        "shared_solves": shr_stats.probes_generated,
        "shared_cache_hits": shr_stats.cache_hits,
        "tables_fingerprinted": registry.tables_fingerprinted,
        "contexts_created": registry.contexts_created,
        "contexts_deduped": registry.contexts_deduped,
        "contexts_forked": registry.contexts_forked,
    }
    print(
        f"independent: {row['independent_s'] * 1e3:8.1f} ms "
        f"({row['independent_solves']} solves)"
    )
    print(
        f"shared:      {row['shared_s'] * 1e3:8.1f} ms "
        f"({row['shared_solves']} solves, "
        f"{row['shared_cache_hits']} cache hits, "
        f"{row['contexts_deduped']} tables deduped)"
    )
    print(f"speedup:     {row['speedup']:8.1f}x (gate: >= {SPEEDUP_GATE}x)")

    path = write_bench_artifact(
        "fleet",
        {
            "bench": "fleet_shared_context_churn",
            "unit": "seconds_total_probegen",
            "gate_speedup": SPEEDUP_GATE,
            "rows": [row],
        },
    )
    print(f"\nartifact: {path}")

    # Sanity on the dedup machinery itself.
    assert registry.contexts_deduped >= len(leaves) - 1
    assert registry.contexts_forked == 0, "replicated churn must not fork"
    assert shr_stats.probes_generated < ind_stats.probes_generated

    # CI gate: the whole point of fleet-wide sharing.
    assert speedup >= SPEEDUP_GATE, (
        f"shared-context fleet probegen speedup {speedup:.2f}x "
        f"below the {SPEEDUP_GATE}x gate"
    )
