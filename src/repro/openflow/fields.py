"""The OpenFlow 1.0 match fields and the abstract header layout.

Monocle formulates probe constraints over an *abstract packet view*: the
packet is a flat vector of bits obtained by concatenating the OpenFlow 1.0
match fields in a fixed order (paper §5.1).  This module is the single
source of truth for that layout — the matcher, the SAT encoder and the
packet crafting library all index bits through :data:`HEADER`.

Field semantics beyond raw bits (which values are valid, which fields are
conditionally included) live here too, because both probe decoding
(§5.2) and rule validation need them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class FieldName(str, enum.Enum):
    """Names of the OpenFlow 1.0 12-tuple match fields."""

    IN_PORT = "in_port"
    DL_SRC = "dl_src"
    DL_DST = "dl_dst"
    DL_TYPE = "dl_type"
    DL_VLAN = "dl_vlan"
    DL_VLAN_PCP = "dl_vlan_pcp"
    NW_SRC = "nw_src"
    NW_DST = "nw_dst"
    NW_PROTO = "nw_proto"
    NW_TOS = "nw_tos"
    TP_SRC = "tp_src"
    TP_DST = "tp_dst"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Ethertypes and IP protocol numbers the reproduction understands.  These
# are the "limited domains" of §5.2: a raw packet can only be crafted if
# dl_type / nw_proto take one of these values.
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
VALID_ETHERTYPES = (ETHERTYPE_IPV4, ETHERTYPE_ARP)

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17
VALID_IP_PROTOS = (IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP)

# dl_vlan value meaning "no VLAN tag present" (OpenFlow 1.0 OFP_VLAN_NONE
# is 0xffff; we model the 12-bit tag with 0xfff as the untagged marker).
VLAN_NONE = 0xFFF


@dataclass(frozen=True)
class Field:
    """One abstract header field.

    Attributes:
        name: the field's :class:`FieldName`.
        width: bit width of the field in the abstract header.
        offset: bit offset of the field's most significant bit within the
            abstract header (bit 0 of the header is the MSB of the first
            field, mirroring the paper's ``p1 p2 ... pn`` notation).
        valid_values: optional tuple of the only values a *real* packet
            may carry (the limited domain); None means any value is fine.
        parent: field that gates this field's presence (e.g. ``tp_src``
            is only present when ``nw_proto`` is TCP/UDP/ICMP), or None.
        parent_values: values of ``parent`` for which this field is
            present in a real packet.
    """

    name: FieldName
    width: int
    offset: int
    valid_values: tuple[int, ...] | None = None
    parent: FieldName | None = None
    parent_values: tuple[int, ...] | None = None

    @property
    def max_value(self) -> int:
        """Largest representable value for this field."""
        return (1 << self.width) - 1

    def bit_positions(self) -> range:
        """Absolute abstract-header bit indices covered by this field."""
        return range(self.offset, self.offset + self.width)

    def contains(self, value: int) -> bool:
        """Whether ``value`` fits in the field's bit width."""
        return 0 <= value <= self.max_value


class HeaderLayout:
    """The full abstract header: ordered fields plus offset bookkeeping."""

    def __init__(self, fields: list[Field]) -> None:
        self._fields = fields
        self._by_name = {f.name: f for f in fields}
        if len(self._by_name) != len(fields):
            raise ValueError("duplicate field in header layout")
        self.total_bits = sum(f.width for f in fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def field(self, name: FieldName) -> Field:
        """Look up a field by name."""
        return self._by_name[name]

    def names(self) -> list[FieldName]:
        """Field names in layout order."""
        return [f.name for f in self._fields]

    def pack(self, values: dict[FieldName, int]) -> int:
        """Pack per-field values into a single abstract-header integer.

        The integer's MSB corresponds to abstract bit 0.  Missing fields
        default to zero.
        """
        header = 0
        for field in self._fields:
            value = values.get(field.name, 0)
            if not field.contains(value):
                raise ValueError(
                    f"{field.name}={value:#x} exceeds width {field.width}"
                )
            header = (header << field.width) | value
        return header

    def unpack(self, header: int) -> dict[FieldName, int]:
        """Inverse of :meth:`pack`."""
        values: dict[FieldName, int] = {}
        remaining = header
        for field in reversed(self._fields):
            values[field.name] = remaining & field.max_value
            remaining >>= field.width
        if remaining:
            raise ValueError(f"header value too wide: {header:#x}")
        return values

    def bit_of(self, name: FieldName, bit_in_field: int) -> int:
        """Absolute header bit index of ``bit_in_field`` (0 = field MSB)."""
        field = self._by_name[name]
        if not 0 <= bit_in_field < field.width:
            raise ValueError(f"bit {bit_in_field} out of range for {name}")
        return field.offset + bit_in_field


def _build_layout() -> HeaderLayout:
    """Construct the canonical OpenFlow 1.0 abstract header layout."""
    spec: list[tuple[FieldName, int, dict]] = [
        (FieldName.IN_PORT, 16, {}),
        (FieldName.DL_SRC, 48, {}),
        (FieldName.DL_DST, 48, {}),
        (FieldName.DL_TYPE, 16, {"valid_values": VALID_ETHERTYPES}),
        (FieldName.DL_VLAN, 12, {}),
        (FieldName.DL_VLAN_PCP, 3, {}),
        (
            FieldName.NW_SRC,
            32,
            {
                "parent": FieldName.DL_TYPE,
                "parent_values": (ETHERTYPE_IPV4, ETHERTYPE_ARP),
            },
        ),
        (
            FieldName.NW_DST,
            32,
            {
                "parent": FieldName.DL_TYPE,
                "parent_values": (ETHERTYPE_IPV4, ETHERTYPE_ARP),
            },
        ),
        (
            FieldName.NW_PROTO,
            8,
            {
                "valid_values": VALID_IP_PROTOS,
                "parent": FieldName.DL_TYPE,
                "parent_values": (ETHERTYPE_IPV4,),
            },
        ),
        (
            FieldName.NW_TOS,
            6,
            {
                "parent": FieldName.DL_TYPE,
                "parent_values": (ETHERTYPE_IPV4,),
            },
        ),
        (
            FieldName.TP_SRC,
            16,
            {
                "parent": FieldName.NW_PROTO,
                "parent_values": (IPPROTO_TCP, IPPROTO_UDP, IPPROTO_ICMP),
            },
        ),
        (
            FieldName.TP_DST,
            16,
            {
                "parent": FieldName.NW_PROTO,
                "parent_values": (IPPROTO_TCP, IPPROTO_UDP, IPPROTO_ICMP),
            },
        ),
    ]
    fields = []
    offset = 0
    for name, width, extra in spec:
        fields.append(Field(name=name, width=width, offset=offset, **extra))
        offset += width
    return HeaderLayout(fields)


#: The canonical abstract header layout shared by the whole library.
HEADER: HeaderLayout = _build_layout()

#: Total abstract header width in bits (253 for the OF 1.0 12-tuple).
HEADER_BITS: int = HEADER.total_bits
