"""Fleet-wide metric aggregation.

Collects, from a finished :class:`~repro.fleet.deployment.FleetDeployment`:

* per-switch monitoring counters (probes/s, confirmations, timeouts,
  alarms, PacketOut/PacketIn overhead),
* one detection record per injected failure (first attributable alarm,
  detection latency),
* false alarms — alarms no injection explains, per healthy switch,
* update-confirmation latency distribution from churn records
  (reusing :mod:`repro.analysis.stats`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.analysis.stats import Summary, summarize
from repro.core.monitor import MonitorAlarm
from repro.fleet.deployment import FleetDeployment
from repro.fleet.failures import Injection
from repro.fleet.workloads import RuleChurn, Workload


@dataclass(frozen=True)
class SwitchMetrics:
    """Monitoring counters for one switch over the scenario."""

    node: Hashable
    rules_installed: int
    probes_sent: int
    probes_confirmed: int
    probes_timed_out: int
    alarms: int
    packetouts_processed: int
    packetins_sent: int
    flowmods_processed: int
    #: Incremental probe-generation engine counters: SAT solves actually
    #: run vs probes served from cache / cheap revalidation.
    probes_generated: int = 0
    probe_cache_hits: int = 0
    probe_revalidations: int = 0
    probegen_seconds: float = 0.0
    #: Cross-switch context sharing: is this switch currently deduped
    #: into a shared solver context, and did it fork off one
    #: (copy-on-churn) during the scenario?
    context_shared: bool = False
    context_forked: bool = False
    #: Probe-cycle scheduling: which policy served this switch, how
    #: many full cycle builds it paid (exactly 1 however much the
    #: scenario churned — the delta-maintenance invariant) and how many
    #: probes a priority-aware policy served ahead of the base cycle.
    probe_policy: str = "round_robin"
    cycle_rebuilds: int = 0
    scheduler_promotions: int = 0
    #: Alarm hysteresis: ``missing`` alarms swallowed by the suspicion
    #: state machine (below the strike threshold, or quarantined), how
    #: many times the switch entered quarantine, and whether it was
    #: still quarantined when the scenario ended.
    alarms_suppressed: int = 0
    quarantines: int = 0
    quarantined: bool = False
    #: Probe pipelining: the effective window this switch ran (1 = the
    #: paper's one-in-flight cycle), requested-but-unbacked slots (the
    #: catch field was too narrow), the deepest concurrent steady
    #: occupancy reached, and launches that found the reserved-value
    #: pool exhausted (fell back to the canonical value).
    probe_window: int = 1
    window_clamp: int = 0
    window_peak: int = 0
    reserved_overflows: int = 0

    def probe_rate(self, duration: float) -> float:
        """Achieved probes/s over the scenario."""
        if duration <= 0:
            return 0.0
        return self.probes_sent / duration


@dataclass
class DetectionRecord:
    """How one injected failure fared."""

    injection: Injection
    detected_at: float | None = None
    detected_on: Hashable | None = None
    alarm_kind: str | None = None

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def latency(self) -> float | None:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injection.time


@dataclass
class FleetMetrics:
    """Everything a fleet report needs, in one bundle."""

    duration: float
    per_switch: list[SwitchMetrics]
    detections: list[DetectionRecord]
    #: (node, alarm) pairs that no injection explains.
    false_alarms: list[tuple[Hashable, MonitorAlarm]]
    confirmation_latency: Summary | None
    updates_confirmed: int
    updates_given_up: int
    probes_routed: int
    probes_unroutable: int
    #: Cross-switch shared-context registry counters (zero when the
    #: deployment runs with per-switch independent contexts).
    tables_fingerprinted: int = 0
    contexts_created: int = 0
    contexts_deduped: int = 0
    contexts_forked: int = 0
    contexts_remerged: int = 0
    #: Sharded-runtime shape: worker count, planner policy, links cut
    #: by the shard boundary, and conservative-time barrier windows the
    #: coordinator ran (0 for in-process runs and pure partitions).
    workers: int = 1
    shard_policy: str | None = None
    cut_links: int = 0
    barriers: int = 0
    #: Cross-shard fingerprint gossip: digests advertised at barriers,
    #: cache entries shipped by exporters, entries actually adopted.
    gossip_digests_published: int = 0
    gossip_entries_shipped: int = 0
    gossip_entries_imported: int = 0
    #: Self-healing shard runtime: worker re-spawns the coordinator
    #: performed, shards abandoned after the restart budget ran out,
    #: and one status string per shard (``"ok"``, ``"restarted(n)"``,
    #: ``"failed"``) in shard order.
    worker_restarts: int = 0
    shards_failed: int = 0
    shard_status: list[str] = field(default_factory=list)
    #: Stable (time, node, kind, match) tuples for determinism checks.
    alarm_timeline: list[tuple[float, str, str, str]] = field(
        default_factory=list
    )
    #: Periodic sim-time metric snapshots from the deployment's
    #: observer (empty when observability is disabled); consecutive
    #: deltas are the probes/s / alarms/s time series the report's
    #: timeline section renders.
    obs_snapshots: list[dict[str, Any]] = field(default_factory=list)

    # ----- aggregates -----------------------------------------------------

    @property
    def probes_sent(self) -> int:
        return sum(m.probes_sent for m in self.per_switch)

    @property
    def probes_confirmed(self) -> int:
        return sum(m.probes_confirmed for m in self.per_switch)

    @property
    def packetout_total(self) -> int:
        return sum(m.packetouts_processed for m in self.per_switch)

    @property
    def packetin_total(self) -> int:
        return sum(m.packetins_sent for m in self.per_switch)

    @property
    def probes_generated(self) -> int:
        """Incremental SAT solves across the fleet."""
        return sum(m.probes_generated for m in self.per_switch)

    @property
    def probe_cache_hits(self) -> int:
        return sum(m.probe_cache_hits for m in self.per_switch)

    @property
    def probe_revalidations(self) -> int:
        return sum(m.probe_revalidations for m in self.per_switch)

    @property
    def probegen_seconds(self) -> float:
        return sum(m.probegen_seconds for m in self.per_switch)

    @property
    def cycle_rebuilds(self) -> int:
        """Full probe-cycle builds across the fleet (== switch count)."""
        return sum(m.cycle_rebuilds for m in self.per_switch)

    @property
    def scheduler_promotions(self) -> int:
        return sum(m.scheduler_promotions for m in self.per_switch)

    @property
    def all_detected(self) -> bool:
        """Every injected *fault* produced an attributable alarm.

        Chaos injections (channel degradation, control-plane flaps)
        perturb the substrate, not the data plane — there is nothing to
        detect, so they are excluded from coverage.
        """
        return all(
            d.detected for d in self.detections if not d.injection.chaos
        )

    @property
    def alarms_total(self) -> int:
        """Alarms raised across the fleet (true + false)."""
        return sum(m.alarms for m in self.per_switch)

    @property
    def true_alarms(self) -> int:
        """Raised alarms some injection explains."""
        return self.alarms_total - len(self.false_alarms)

    @property
    def alarms_suppressed(self) -> int:
        """``missing`` alarms swallowed by hysteresis across the fleet."""
        return sum(m.alarms_suppressed for m in self.per_switch)

    @property
    def quarantines(self) -> int:
        return sum(m.quarantines for m in self.per_switch)

    @property
    def switches_quarantined(self) -> int:
        """Switches still quarantined when the scenario ended."""
        return sum(1 for m in self.per_switch if m.quarantined)

    @property
    def probe_window(self) -> int:
        """Deepest effective probe window across the fleet."""
        return max((m.probe_window for m in self.per_switch), default=1)

    @property
    def window_clamps(self) -> int:
        """Requested window slots the catch field could not back."""
        return sum(m.window_clamp for m in self.per_switch)

    @property
    def window_peak(self) -> int:
        """Deepest concurrent steady occupancy any switch reached."""
        return max((m.window_peak for m in self.per_switch), default=0)

    @property
    def reserved_overflows(self) -> int:
        return sum(m.reserved_overflows for m in self.per_switch)

    @property
    def detection_latencies(self) -> list[float]:
        return [
            latency
            for d in self.detections
            if (latency := d.latency) is not None
        ]

    # ----- machine-readable export ----------------------------------------

    def to_json(self) -> dict[str, Any]:
        """The full metrics bundle as a JSON-ready dict.

        Everything the prose report renders (per-switch rows, detection
        records, aggregates) plus the raw material it summarizes, so
        downstream tooling consumes ``repro-fleet --json-out`` instead
        of parsing report text.  Nodes are ``repr()``-encoded, exactly
        as in the trace JSONL schema.
        """
        per_switch = []
        for m in self.per_switch:
            row = dataclasses.asdict(m)
            row["node"] = repr(m.node)
            row["probe_rate"] = m.probe_rate(self.duration)
            per_switch.append(row)
        detections = []
        for d in self.detections:
            injection = d.injection
            detections.append(
                {
                    "kind": injection.kind,
                    "injected_at": injection.time,
                    "nodes": sorted(repr(n) for n in injection.nodes),
                    "cookies": sorted(injection.cookies),
                    "broad": injection.broad,
                    "chaos": injection.chaos,
                    "description": injection.description,
                    "error": injection.error,
                    "detected": d.detected,
                    "detected_at": d.detected_at,
                    "detected_on": (
                        None
                        if d.detected_on is None
                        else repr(d.detected_on)
                    ),
                    "alarm_kind": d.alarm_kind,
                    "latency": d.latency,
                }
            )
        return {
            "duration": self.duration,
            "per_switch": per_switch,
            "detections": detections,
            "false_alarms": [
                {
                    "node": repr(node),
                    "time": alarm.time,
                    "kind": alarm.kind,
                    "match": repr(alarm.rule.match),
                    "priority": alarm.rule.priority,
                }
                for node, alarm in self.false_alarms
            ],
            "confirmation_latency": (
                None
                if self.confirmation_latency is None
                else dataclasses.asdict(self.confirmation_latency)
            ),
            "alarm_timeline": [list(row) for row in self.alarm_timeline],
            "obs_snapshots": self.obs_snapshots,
            "aggregates": {
                "probes_sent": self.probes_sent,
                "probes_confirmed": self.probes_confirmed,
                "packetout_total": self.packetout_total,
                "packetin_total": self.packetin_total,
                "probes_generated": self.probes_generated,
                "probe_cache_hits": self.probe_cache_hits,
                "probe_revalidations": self.probe_revalidations,
                "probegen_seconds": self.probegen_seconds,
                "cycle_rebuilds": self.cycle_rebuilds,
                "scheduler_promotions": self.scheduler_promotions,
                "probes_routed": self.probes_routed,
                "probes_unroutable": self.probes_unroutable,
                "updates_confirmed": self.updates_confirmed,
                "updates_given_up": self.updates_given_up,
                "tables_fingerprinted": self.tables_fingerprinted,
                "contexts_created": self.contexts_created,
                "contexts_deduped": self.contexts_deduped,
                "contexts_forked": self.contexts_forked,
                "contexts_remerged": self.contexts_remerged,
                "workers": self.workers,
                "shard_policy": self.shard_policy,
                "cut_links": self.cut_links,
                "barriers": self.barriers,
                "gossip_digests_published": self.gossip_digests_published,
                "gossip_entries_shipped": self.gossip_entries_shipped,
                "gossip_entries_imported": self.gossip_entries_imported,
                "alarms_total": self.alarms_total,
                "true_alarms": self.true_alarms,
                "false_alarms": len(self.false_alarms),
                "alarms_suppressed": self.alarms_suppressed,
                "probe_window": self.probe_window,
                "window_clamps": self.window_clamps,
                "window_peak": self.window_peak,
                "reserved_overflows": self.reserved_overflows,
                "quarantines": self.quarantines,
                "switches_quarantined": self.switches_quarantined,
                "worker_restarts": self.worker_restarts,
                "shards_failed": self.shards_failed,
                "shard_status": list(self.shard_status),
                "all_detected": self.all_detected,
                "detection_latencies": self.detection_latencies,
            },
        }


def collect_fleet_metrics(
    deployment: FleetDeployment,
    injections: list[Injection] | None = None,
    workloads: list[Workload] | tuple[Workload, ...] = (),
    duration: float | None = None,
) -> FleetMetrics:
    """Aggregate a finished deployment into a :class:`FleetMetrics`."""
    injections = injections or []
    if duration is None:
        duration = deployment.sim.now

    per_switch: list[SwitchMetrics] = []
    for node in deployment.monitored_nodes:
        monitor = deployment.monitor(node)
        stats = deployment.switch(node).stats
        context = monitor.probe_context
        genstats = context.stats
        per_switch.append(
            SwitchMetrics(
                node=node,
                rules_installed=len(deployment.production_rules[node]),
                probes_sent=monitor.probes_sent,
                probes_confirmed=monitor.probes_confirmed,
                probes_timed_out=monitor.probes_timed_out,
                alarms=len(monitor.alarms),
                packetouts_processed=stats.packetouts_processed,
                packetins_sent=stats.packetins_sent,
                flowmods_processed=stats.flowmods_processed,
                probes_generated=genstats.probes_generated,
                probe_cache_hits=genstats.cache_hits,
                probe_revalidations=genstats.revalidations,
                probegen_seconds=genstats.generation_seconds,
                context_shared=getattr(context, "is_shared", False),
                context_forked=getattr(context, "forked", False),
                probe_policy=monitor.scheduler.policy.name,
                cycle_rebuilds=monitor.scheduler.stats.cycle_rebuilds,
                scheduler_promotions=(
                    monitor.scheduler.stats.scheduler_promotions
                ),
                alarms_suppressed=monitor.alarms_suppressed,
                quarantines=monitor.quarantines,
                quarantined=monitor.quarantined,
                probe_window=monitor.window,
                window_clamp=monitor.window_clamp,
                window_peak=monitor.window_peak,
                reserved_overflows=monitor.reserved_overflows,
            )
        )

    detections = [DetectionRecord(injection=inj) for inj in injections]
    false_alarms: list[tuple[Hashable, MonitorAlarm]] = []
    timeline: list[tuple[float, str, str, str]] = []
    for node in deployment.monitored_nodes:
        for alarm in deployment.monitor(node).alarms:
            timeline.append(
                (alarm.time, repr(node), alarm.kind, repr(alarm.rule.match))
            )
            explained = False
            for record in detections:
                if record.injection.is_detection(node, alarm):
                    explained = True
                    if (
                        record.detected_at is None
                        or alarm.time < record.detected_at
                    ):
                        record.detected_at = alarm.time
                        record.detected_on = node
                        record.alarm_kind = alarm.kind
                elif record.injection.explains(node, alarm):
                    explained = True
            if not explained:
                false_alarms.append((node, alarm))
    timeline.sort()

    latencies: list[float] = []
    for workload in workloads:
        if isinstance(workload, RuleChurn):
            latencies.extend(workload.confirmation_latencies())
    confirmation = summarize(latencies) if latencies else None

    updates_confirmed = sum(
        d.updates_confirmed for d in deployment.system.dynamics.values()
    )
    updates_given_up = sum(
        d.updates_given_up for d in deployment.system.dynamics.values()
    )

    obs_snapshots: list[dict[str, Any]] = []
    if deployment.obs.enabled:
        # Final snapshot at collection time (runs the collect hooks, so
        # the registry is sync'd with the stats aggregated above), then
        # cross-check the two accounting paths against each other.
        deployment.obs.snapshot_now()
        obs_snapshots = list(deployment.obs.metrics.snapshots)
        if deployment.obs.enabled:
            h = deployment.obs.metrics.histogram(
                "monocle_detection_latency_seconds"
            )
            for record in detections:
                if (latency := record.latency) is not None:
                    h.observe(latency)
        _crosscheck_registry(deployment, per_switch)

    shared = deployment.shared_context_stats()
    return FleetMetrics(
        duration=duration,
        per_switch=per_switch,
        detections=detections,
        false_alarms=false_alarms,
        confirmation_latency=confirmation,
        updates_confirmed=updates_confirmed,
        updates_given_up=updates_given_up,
        probes_routed=deployment.system.multiplexer.probes_routed,
        probes_unroutable=deployment.system.multiplexer.probes_unroutable,
        tables_fingerprinted=shared.tables_fingerprinted,
        contexts_created=shared.contexts_created,
        contexts_deduped=shared.contexts_deduped,
        contexts_forked=shared.contexts_forked,
        contexts_remerged=shared.contexts_remerged,
        alarm_timeline=timeline,
        obs_snapshots=obs_snapshots,
    )


def merge_fleet_metrics(
    parts: list[FleetMetrics],
    *,
    detections: list[DetectionRecord],
    confirmation_latencies: list[float],
    duration: float,
) -> FleetMetrics:
    """Fuse per-shard :class:`FleetMetrics` into one fleet-wide bundle.

    Each worker collected over a disjoint shard, so per-switch rows,
    false alarms, and counters combine by concatenation/summation;
    the alarm timeline re-sorts into global sim-time order, matching a
    single-process run byte for byte on partitionable scenarios.
    ``detections`` arrive pre-merged (the coordinator matches shard
    records by global failure-spec index — a cut-crossing link failure
    yields one record per adjacent shard) and confirmation latencies
    arrive raw because :class:`~repro.analysis.stats.Summary` objects
    cannot be combined after the fact.
    """
    timeline = sorted(row for part in parts for row in part.alarm_timeline)
    false_alarms = sorted(
        ((node, alarm) for part in parts for node, alarm in part.false_alarms),
        key=lambda pair: (pair[1].time, repr(pair[0])),
    )
    per_switch = sorted(
        (row for part in parts for row in part.per_switch),
        key=lambda row: repr(row.node),
    )
    confirmation = (
        summarize(confirmation_latencies) if confirmation_latencies else None
    )
    return FleetMetrics(
        duration=duration,
        per_switch=per_switch,
        detections=detections,
        false_alarms=false_alarms,
        confirmation_latency=confirmation,
        updates_confirmed=sum(p.updates_confirmed for p in parts),
        updates_given_up=sum(p.updates_given_up for p in parts),
        probes_routed=sum(p.probes_routed for p in parts),
        probes_unroutable=sum(p.probes_unroutable for p in parts),
        tables_fingerprinted=sum(p.tables_fingerprinted for p in parts),
        contexts_created=sum(p.contexts_created for p in parts),
        contexts_deduped=sum(p.contexts_deduped for p in parts),
        contexts_forked=sum(p.contexts_forked for p in parts),
        contexts_remerged=sum(p.contexts_remerged for p in parts),
        alarm_timeline=timeline,
        obs_snapshots=merge_obs_snapshots([p.obs_snapshots for p in parts]),
    )


def merge_obs_snapshots(
    parts: list[list[dict[str, Any]]],
) -> list[dict[str, Any]]:
    """Sum per-shard observer snapshots on their common time grid.

    Snapshots ride each worker's dispatch hook, so shards may cross
    different grid points (an idle shard snapshots less often); only
    timestamps every shard captured are merged — on those, counters and
    gauges sum across shards (label sets are disjoint per shard except
    fleet-level series, which sum correctly too) and histograms sum
    their ``count``/``sum`` fields.
    """
    populated = [p for p in parts if p]
    if not populated:
        return []
    common = set(snap["ts"] for snap in populated[0])
    for part in populated[1:]:
        common &= {snap["ts"] for snap in part}
    merged: list[dict[str, Any]] = []
    for ts in sorted(common):
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for part in populated:
            snap = next(s for s in part if s["ts"] == ts)
            for key, value in snap["counters"].items():
                counters[key] = counters.get(key, 0.0) + value
            for key, value in snap["gauges"].items():
                gauges[key] = gauges.get(key, 0.0) + value
            for key, hist in snap["histograms"].items():
                into = histograms.setdefault(key, {"count": 0.0, "sum": 0.0})
                into["count"] += hist["count"]
                into["sum"] += hist["sum"]
        merged.append(
            {
                "ts": ts,
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
            }
        )
    return merged


def _crosscheck_registry(
    deployment: FleetDeployment, per_switch: list[SwitchMetrics]
) -> None:
    """Assert the live registry agrees with the post-mortem counters.

    Two independent accounting paths exist once observability is on:
    the metrics registry (synced by the deployment's collect hook) and
    this module's direct scrape of monitor/context stats.  They must
    agree exactly — a divergence means a publication site was missed
    or double-counted, which is precisely the failure mode a
    self-observing monitor must catch in itself.
    """
    registry = deployment.obs.metrics
    expected = {
        "monocle_probes_sent_total": sum(
            m.probes_sent for m in per_switch
        ),
        "monocle_probes_confirmed_total": sum(
            m.probes_confirmed for m in per_switch
        ),
        "monocle_probes_timed_out_total": sum(
            m.probes_timed_out for m in per_switch
        ),
        "monocle_alarms_total": sum(m.alarms for m in per_switch),
        "monocle_alarms_suppressed_total": sum(
            m.alarms_suppressed for m in per_switch
        ),
        "monocle_probegen_solves_total": sum(
            m.probes_generated for m in per_switch
        ),
        "monocle_probe_cache_hits_total": sum(
            m.probe_cache_hits for m in per_switch
        ),
        "monocle_reserved_overflows_total": sum(
            m.reserved_overflows for m in per_switch
        ),
        "monocle_updates_confirmed_total": sum(
            d.updates_confirmed
            for d in deployment.system.dynamics.values()
        ),
    }
    for family, total in expected.items():
        live = registry.family_total(family)
        if live != total:
            raise AssertionError(
                f"observability registry diverged from fleet metrics: "
                f"{family} is {live} live vs {total} scraped"
            )
