"""Boolean satisfiability subsystem.

The paper's probe generator converts the Hit/Distinguish/Collect
constraints into plain CNF and feeds them to PicoSAT, using a custom
Cython conversion and the DIMACS format (§7).  This package is the
pure-Python equivalent:

* :mod:`repro.sat.cnf` — a CNF container with variable allocation and
  flat one-dimensional clause storage (the paper found vector-of-vectors
  allocation to be the conversion bottleneck; we keep the flat layout),
  plus DIMACS read/write.
* :mod:`repro.sat.encode` — formula-level building blocks: conjunction,
  disjunction with Tseitin auxiliary variables, negation of clause lists,
  and the quadratic Velev if-then-else chain encoding from Appendix B.
* :mod:`repro.sat.solver` — a CDCL solver with two-watched-literal
  propagation, first-UIP clause learning, VSIDS-style activity and
  restarts (the PicoSAT stand-in), usable one-shot or incrementally.
* :mod:`repro.sat.incremental` — the persistent solver context:
  assumption-based solving, clause groups with retraction, learned
  lemma retention across calls, and database compaction.
* :mod:`repro.sat.brute` — exhaustive reference solver used by the test
  suite to validate the CDCL implementation on small instances.
"""

from repro.sat.cnf import CNF, Lit
from repro.sat.encode import (
    assert_ite_chain,
    at_most_one,
    clause_and,
    clause_or,
    ite_chain,
    negate_clause,
    negate_conjunction,
)
from repro.sat.solver import SatResult, SatSolver, solve
from repro.sat.incremental import IncrementalSolver, IncrementalStats
from repro.sat.brute import brute_force_solve

__all__ = [
    "CNF",
    "Lit",
    "assert_ite_chain",
    "at_most_one",
    "clause_and",
    "clause_or",
    "ite_chain",
    "negate_clause",
    "negate_conjunction",
    "SatResult",
    "SatSolver",
    "solve",
    "IncrementalSolver",
    "IncrementalStats",
    "brute_force_solve",
]
