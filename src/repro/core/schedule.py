"""Incremental, priority-aware probe scheduling (the §3 cycle).

Monocle's steady-state monitoring cycles through every monitorable
rule; detection latency is bounded by how fast that cycle turns.  Until
PR 5 the cycle list lived inside :class:`~repro.core.monitor.Monitor`
and was rebuilt from the whole expected table on every FlowMod — the
last O(N)-per-churn-op cost after the overlap structures went sublinear
in PR 4.  This module extracts cycle ownership into a subsystem:

* :class:`ProbeScheduler` maintains the monitorable-rule cycle
  **incrementally**: one full build at construction, then O(delta)
  add/remove of cycle keys per FlowMod, driven by the same affected-rule
  notifications the :class:`~repro.core.probegen.ProbeGenContext` delta
  API already produces.  ``stats.cycle_rebuilds`` counts full builds the
  way ``FlowTable.index_builds`` counts index builds — churn must never
  increment it past 1 (regression-tested).
* Probe *selection* is pluggable (:class:`SchedulePolicy`):

  - :class:`RoundRobinPolicy` — the paper's §3 baseline.  Byte-identical
    probe order to the historical rebuild-per-FlowMod loop (property-
    tested): keys in table order (priority descending, insertion order
    within a priority), a cursor that pre-increments and is *not*
    adjusted when churn inserts or deletes keys around it.
  - :class:`RecentChurnFirstPolicy` — the paper's dynamic-monitoring
    insight: rules touched by recent FlowMods are the ones most likely
    to be wrong, so they jump the queue.  Starvation is bounded (after
    ``max_burst`` consecutive promotions one base-cycle probe is
    served), so the full cycle still completes under sustained churn.
  - :class:`WeightedPolicy` — stride scheduling over per-rule weights
    fed by alarm history and unconfirmed-update proximity; weights are
    capped, so every rule is served at least once per
    ``max_weight * N`` ticks.

The scheduler is deliberately ignorant of tables and solvers: it holds
rule *keys* and resolves them against whatever expected table the
Monitor serves at probe time — which is exactly how shared-context
handles stay correct: a handle behind the shared log schedules against
its private view because ``Monitor.expected`` already is that view, and
the scheduler's key set is maintained from the handle's *own* operation
stream (never from foreign replicas' operations).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.openflow.messages import FlowMod
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable, RuleKey

__all__ = [
    "POLICIES",
    "ProbeScheduler",
    "RecentChurnFirstPolicy",
    "RoundRobinPolicy",
    "SchedulePolicy",
    "SchedulerStats",
    "WeightedPolicy",
    "make_policy",
]

#: Resolves a cycle key to the live rule (None when the key died).
Resolver = Callable[[RuleKey], "Rule | None"]
#: True when the key already has a probe in flight (skip it this tick).
BusyCheck = Callable[[RuleKey], bool]


@dataclass
class SchedulerStats:
    """Counters describing the scheduler's maintenance and selection.

    ``cycle_rebuilds`` mirrors the PR 4 ``index_builds`` contract: the
    one construction-time build is the only full expected-table
    iteration a scheduler ever pays; churn maintenance must keep it
    there (regression-tested and gated by ``BENCH_cycle.json``).
    """

    cycle_rebuilds: int = 0
    keys_added: int = 0
    keys_removed: int = 0
    #: Probes served ahead of the base cycle by a priority-aware policy
    #: (churn-first promotions, weighted picks of boosted rules).
    scheduler_promotions: int = 0
    churn_touches: int = 0
    update_touches: int = 0
    alarm_touches: int = 0


class SchedulePolicy:
    """Selection strategy over a :class:`ProbeScheduler`'s cycle keys.

    Policies see churn through the ``on_*`` hooks and serve probes
    through :meth:`select`; the scheduler owns the key set and its
    table order.
    """

    name = "policy"

    def __init__(self) -> None:
        self.scheduler: "ProbeScheduler | None" = None

    def bind(self, scheduler: "ProbeScheduler") -> None:
        self.scheduler = scheduler

    def on_add(self, key: RuleKey) -> None:
        """A key joined the cycle."""

    def on_remove(self, key: RuleKey) -> None:
        """A key left the cycle."""

    def on_touch(self, key: RuleKey, kind: str) -> None:
        """A live key was churned/updated/alarmed (recency signal)."""

    def on_rebuild(self) -> None:
        """The key set was rebuilt wholesale (construction time)."""

    def select(self, resolve: Resolver, busy: BusyCheck) -> "Rule | None":
        raise NotImplementedError


class RoundRobinPolicy(SchedulePolicy):
    """The §3 baseline: walk the cycle in table order.

    Byte-identical to the historical ``Monitor._rebuild_cycle`` +
    ``_next_cycle_rule`` pair: the cursor pre-increments modulo the
    current cycle length, skips dead and in-flight keys, gives up after
    one full lap — and is deliberately *not* adjusted when maintenance
    inserts or deletes keys around it, exactly as an index into a
    freshly rebuilt list never was.
    """

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self.position = 0

    def select(self, resolve: Resolver, busy: BusyCheck) -> "Rule | None":
        assert self.scheduler is not None
        keys = self.scheduler._keys
        if not keys:
            return None
        for _ in range(len(keys)):
            self.position = (self.position + 1) % len(keys)
            key = keys[self.position]
            rule = resolve(key)
            if rule is None:
                continue
            if busy(key):
                continue
            return rule
        return None


class RecentChurnFirstPolicy(SchedulePolicy):
    """Recently-churned rules jump the queue (dynamic monitoring, §4).

    A FlowMod that touches a rule is the strongest predictor that the
    rule is about to be wrong in the data plane; promoting it to the
    front of the probe order turns the fig4 detection latency from
    ~cycle/2 into ~one probe timeout.  Promotions are served from a
    FIFO of touched keys; after ``max_burst`` consecutive promotions
    one probe is served from the underlying round-robin cycle, so the
    full cycle completes at worst ``max_burst + 1`` times slower under
    sustained churn (bounded starvation).
    """

    name = "churn_first"

    def __init__(self, max_burst: int = 4) -> None:
        super().__init__()
        if max_burst < 1:
            raise ValueError(f"max_burst must be >= 1: {max_burst}")
        self.max_burst = max_burst
        self.base = RoundRobinPolicy()
        self._hot: deque[RuleKey] = deque()
        self._hot_set: set[RuleKey] = set()
        self._burst = 0

    def bind(self, scheduler: "ProbeScheduler") -> None:
        super().bind(scheduler)
        self.base.bind(scheduler)

    def on_touch(self, key: RuleKey, kind: str) -> None:
        if key not in self._hot_set:
            self._hot_set.add(key)
            self._hot.append(key)

    def on_remove(self, key: RuleKey) -> None:
        # Lazily dropped from the deque at selection time.
        self._hot_set.discard(key)

    def on_rebuild(self) -> None:
        self._hot.clear()
        self._hot_set.clear()
        self._burst = 0

    def _pop_hot(self, resolve: Resolver, busy: BusyCheck) -> "Rule | None":
        requeue: list[RuleKey] = []
        found: "Rule | None" = None
        while self._hot:
            key = self._hot.popleft()
            if key not in self._hot_set:
                continue  # removed from the cycle since it was touched
            rule = resolve(key)
            if rule is None:
                self._hot_set.discard(key)
                continue
            if busy(key):
                # A probe for this rule is already outstanding (e.g. a
                # dynamic-mode update probe): keep the promotion hot so
                # the rule is re-visited the moment it frees up.
                requeue.append(key)
                continue
            self._hot_set.discard(key)
            found = rule
            break
        for key in reversed(requeue):
            self._hot.appendleft(key)
        return found

    def select(self, resolve: Resolver, busy: BusyCheck) -> "Rule | None":
        assert self.scheduler is not None
        if self._burst < self.max_burst:
            promoted = self._pop_hot(resolve, busy)
            if promoted is not None:
                self._burst += 1
                self.scheduler.stats.scheduler_promotions += 1
                return promoted
        self._burst = 0
        return self.base.select(resolve, busy)


class WeightedPolicy(SchedulePolicy):
    """Stride scheduling over per-rule weights.

    Every key advances through virtual time with stride ``1/weight``;
    the key with the smallest pass value is served next, so a rule with
    weight w is probed w times as often as a weight-1 rule.  Weights
    start at 1.0 and are boosted by churn, unconfirmed-update proximity
    and alarm history, capped at ``max_weight`` — the cap is the
    starvation bound: every rule is served at least once per
    ``max_weight * N`` ticks.
    """

    name = "weighted"

    def __init__(
        self,
        churn_boost: float = 2.0,
        update_boost: float = 2.0,
        alarm_boost: float = 4.0,
        max_weight: float = 16.0,
    ) -> None:
        super().__init__()
        self.churn_boost = churn_boost
        self.update_boost = update_boost
        self.alarm_boost = alarm_boost
        self.max_weight = max_weight
        self._weights: dict[RuleKey, float] = {}
        #: Live entry generation per key: stale heap entries (superseded
        #: by a reschedule or a removal) are dropped lazily on pop.
        #: Generations come from one global monotonic counter, so a
        #: removed-and-re-added key can never revive the ghost entries
        #: of its previous incarnation.
        self._gen: dict[RuleKey, int] = {}
        #: (pass value, generation, key); the generation doubles as a
        #: deterministic tiebreak (keys are not orderable).
        self._heap: list[tuple[float, int, RuleKey]] = []
        self._clock = 0.0
        self._counter = 0

    def _push(self, key: RuleKey, pass_value: float) -> None:
        self._counter += 1
        gen = self._counter
        self._gen[key] = gen
        heapq.heappush(self._heap, (pass_value, gen, key))

    def on_add(self, key: RuleKey) -> None:
        self._weights[key] = 1.0
        self._push(key, self._clock + 1.0)

    def on_remove(self, key: RuleKey) -> None:
        self._weights.pop(key, None)
        self._gen.pop(key, None)

    def on_rebuild(self) -> None:
        self._weights.clear()
        self._gen.clear()
        self._heap.clear()
        self._clock = 0.0
        assert self.scheduler is not None
        for key in self.scheduler._keys:
            self.on_add(key)

    def _boost(self, key: RuleKey, factor: float) -> None:
        weight = self._weights.get(key)
        if weight is None:
            return
        boosted = min(self.max_weight, weight * factor)
        self._weights[key] = boosted
        # Reschedule at the boosted stride from *now*: the rule's next
        # service moves forward without ever rewinding behind the clock.
        self._push(key, self._clock + 1.0 / boosted)

    def on_touch(self, key: RuleKey, kind: str) -> None:
        factor = {
            "churn": self.churn_boost,
            "update": self.update_boost,
            "alarm": self.alarm_boost,
        }.get(kind, self.churn_boost)
        self._boost(key, factor)

    def select(self, resolve: Resolver, busy: BusyCheck) -> "Rule | None":
        assert self.scheduler is not None
        skipped: list[tuple[float, int, RuleKey]] = []
        served: "Rule | None" = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            pass_value, gen, key = entry
            if self._gen.get(key) != gen:
                continue  # superseded or removed
            rule = resolve(key)
            if rule is None:
                continue
            if busy(key):
                skipped.append(entry)
                continue
            weight = self._weights.get(key, 1.0)
            # Virtual time never rewinds: a key whose entry sat below
            # the advancing clock while its probe was in flight is
            # served at the *current* clock, so boosts pushed during
            # that window cannot leapfrog the whole backlog and the
            # max_weight * N starvation bound holds.
            self._clock = max(self._clock, pass_value)
            self._push(key, self._clock + 1.0 / weight)
            if weight > 1.0:
                self.scheduler.stats.scheduler_promotions += 1
                # Boosts decay as they are served: each boosted probe
                # halves the weight back toward the baseline, so a
                # burst of churn yields a burst of attention, not a
                # permanent bias.
                self._weights[key] = max(1.0, weight / 2.0)
            served = rule
            break
        # Busy keys keep their place in virtual time (their generation
        # is still the live one, so re-pushing the entry suffices).
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return served


class ProbeScheduler:
    """Delta-maintained probe cycle with pluggable selection.

    One scheduler per Monitor.  The cycle key set mirrors the monitor's
    expected table (infrastructure rules excluded) in *table order* —
    priority descending, insertion order within a priority — and is
    maintained incrementally:

    * :meth:`rebuild` — the single construction-time full build
      (``stats.cycle_rebuilds`` counts these; churn must never add one);
    * :meth:`add` / :meth:`discard` — an O(log N) bisect plus an O(N)
      C-level memmove splice per churned rule (pointer moves, not the
      Python-level per-rule work a full rebuild pays — three orders of
      magnitude cheaper at 16k-64k rules, see ``BENCH_cycle.json``);
    * :meth:`observe_flowmod` — translates a FlowMod plus the affected
      rules (as returned by the probe context's delta API) into the
      add/discard delta, and feeds churn recency to the policy.

    Selection (:meth:`next_rule`) resolves keys against the expected
    table *at probe time*, so a shared-context handle that is serving
    its private behind-the-log view schedules against exactly that
    view.
    """

    def __init__(
        self,
        policy: SchedulePolicy | None = None,
        is_infrastructure: Callable[[Rule], bool] | None = None,
    ) -> None:
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.is_infrastructure = is_infrastructure
        #: Table-order sort keys (-priority, seq), kept sorted; aligned
        #: with ``_keys`` so maintenance bisects instead of scanning.
        self._order: list[tuple[int, int]] = []
        self._keys: list[RuleKey] = []
        self._okey: dict[RuleKey, tuple[int, int]] = {}
        self._seq = 0
        self.stats = SchedulerStats()
        #: Optional sim clock enabling touch -> serve wait tracking
        #: (observability); ``None`` keeps the disabled path free.
        self.clock: Callable[[], float] | None = None
        self._touched_at: dict[RuleKey, float] = {}
        self.policy.bind(self)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Enable scheduler-wait measurement against ``clock``.

        Once set, every :meth:`touch` stamps the key; the observer pops
        the stamp when the rule is finally served
        (:meth:`take_wait`) — the difference is the *scheduler wait*,
        how long a churn/update/alarm signal sat in the queue before
        its probe went out.
        """
        self.clock = clock

    def take_wait(self, key: RuleKey) -> float | None:
        """Seconds since ``key`` was last touched (consumed), if known."""
        if self.clock is None:
            return None
        touched = self._touched_at.pop(key, None)
        if touched is None:
            return None
        return self.clock() - touched

    # ----- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: RuleKey) -> bool:
        return key in self._okey

    def keys(self) -> list[RuleKey]:
        """The cycle keys in table order (a copy)."""
        return list(self._keys)

    # ----- maintenance -----------------------------------------------------

    def _monitorable(self, rule: Rule) -> bool:
        if self.is_infrastructure is None:
            return True
        return not self.is_infrastructure(rule)

    def rebuild(self, table: Iterable[Rule]) -> None:
        """Full build from a table iteration (construction time only).

        The one place the whole expected table is walked; every later
        mutation arrives through :meth:`add`/:meth:`discard`/
        :meth:`observe_flowmod` as a delta.
        """
        self._order.clear()
        self._keys.clear()
        self._okey.clear()
        for rule in table:
            if not self._monitorable(rule):
                continue
            self._seq += 1
            okey = (-rule.priority, self._seq)
            self._order.append(okey)
            self._keys.append(rule.key())
            self._okey[rule.key()] = okey
        self.stats.cycle_rebuilds += 1
        self.policy.on_rebuild()

    def add(self, rule: Rule) -> None:
        """A rule joined the expected table (no-op on key replace)."""
        key = rule.key()
        if key in self._okey or not self._monitorable(rule):
            return
        self._seq += 1
        okey = (-rule.priority, self._seq)
        index = bisect_left(self._order, okey)
        self._order.insert(index, okey)
        self._keys.insert(index, key)
        self._okey[key] = okey
        self.stats.keys_added += 1
        self.policy.on_add(key)

    def discard(self, key: RuleKey) -> None:
        """A rule left the expected table."""
        okey = self._okey.pop(key, None)
        if okey is None:
            return
        index = bisect_left(self._order, okey)
        del self._order[index]
        del self._keys[index]
        if self._touched_at:
            self._touched_at.pop(key, None)
        self.stats.keys_removed += 1
        self.policy.on_remove(key)

    def observe_flowmod(
        self, mod: FlowMod, affected: Iterable[Rule], touch: bool = True
    ) -> None:
        """Apply a FlowMod's cycle delta.

        ``affected`` is what the probe context's
        :meth:`~repro.core.probegen.ProbeGenContext.apply_flowmod`
        returned: the rules this switch's table actually gained, lost
        or replaced.  Surviving rules are also *touched* so recency-
        aware policies can promote them — unless ``touch=False``, the
        promotion-grace path: the Monitor holds the recency signal
        until the switch confirms it has applied the FlowMod, then
        delivers it via :meth:`touch` (membership maintenance is never
        deferred; only the promotion hint is).
        """
        deleting = mod.command.is_delete
        for rule in affected:
            if deleting:
                self.discard(rule.key())
            else:
                self.add(rule)
                if touch:
                    self.touch(rule.key(), "churn")

    # ----- recency signals -------------------------------------------------

    def touch(self, key: RuleKey, kind: str = "churn") -> None:
        """Mark a live cycle key as recently churned/updated/alarmed."""
        if key not in self._okey:
            return
        if kind == "update":
            self.stats.update_touches += 1
        elif kind == "alarm":
            self.stats.alarm_touches += 1
        else:
            self.stats.churn_touches += 1
        if self.clock is not None and key not in self._touched_at:
            # First touch wins: the wait measures signal -> probe, and
            # repeated touches before service must not shrink it.
            self._touched_at[key] = self.clock()
        self.policy.on_touch(key, kind)

    def note_update(self, key: RuleKey) -> None:
        """Dynamic-mode reprobe hint: an update near this rule confirmed."""
        self.touch(key, "update")

    def record_alarm(self, key: RuleKey) -> None:
        """Alarm history: this rule misbehaved; watch it more closely."""
        self.touch(key, "alarm")

    # ----- selection -------------------------------------------------------

    def next_rule(
        self, table: FlowTable, busy: BusyCheck | None = None
    ) -> "Rule | None":
        """The next rule to probe, or None when nothing is serveable."""
        if busy is None:
            busy = _never_busy
        return self.policy.select(lambda key: table.get(*key), busy)

    def next_rules(
        self,
        table: FlowTable,
        busy: BusyCheck | None = None,
        limit: int = 1,
        promoted_out: "set[RuleKey] | None" = None,
    ) -> "list[Rule]":
        """Drain up to ``limit`` distinct serveable rules — one probe
        window's worth.

        The busy set becomes a window: each selection sees every rule
        already served this drain as busy, so a window of W concurrent
        probes never targets the same key twice.  ``limit=1`` performs
        exactly one :meth:`next_rule` selection, so promotion and
        stride accounting are byte-identical to the single-probe path.

        Args:
            promoted_out: when given, receives the keys whose selection
                was a policy promotion (for per-probe trace
                attribution).
        """
        if busy is None:
            busy = _never_busy
        served: list[Rule] = []
        served_keys: set[RuleKey] = set()

        def drain_busy(key: RuleKey) -> bool:
            return key in served_keys or busy(key)

        resolve = lambda key: table.get(*key)  # noqa: E731
        while len(served) < limit:
            promotions_before = self.stats.scheduler_promotions
            rule = self.policy.select(resolve, drain_busy)
            if rule is None:
                break
            if (
                promoted_out is not None
                and self.stats.scheduler_promotions > promotions_before
            ):
                promoted_out.add(rule.key())
            served.append(rule)
            served_keys.add(rule.key())
        return served

    def __repr__(self) -> str:
        return (
            f"ProbeScheduler({self.policy.name}, {len(self._keys)} keys, "
            f"rebuilds={self.stats.cycle_rebuilds})"
        )


def _never_busy(_key: RuleKey) -> bool:
    return False


#: Policy registry for fleet-level (per-switch) selection by name.
POLICIES: dict[str, Callable[[], SchedulePolicy]] = {
    "round_robin": RoundRobinPolicy,
    "churn_first": RecentChurnFirstPolicy,
    "weighted": WeightedPolicy,
}


def make_policy(name: str) -> SchedulePolicy:
    """Instantiate a selection policy by registry name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown probe policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return factory()
