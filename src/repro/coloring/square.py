"""The strategy-2 graph transform (paper §6).

For the two-reserved-field scheme, switches sharing a common neighbor
must also receive distinct identifiers.  The paper's recipe: "for each
switch, we add fake edges between all pairs of its peers, essentially
adding a clique to the graph" — i.e. color the square of the graph.
"""

from __future__ import annotations

import itertools

import networkx as nx


def square_graph(graph: nx.Graph) -> nx.Graph:
    """Graph with an added clique over every node's neighborhood.

    The result has the same nodes; two nodes are adjacent iff they are
    adjacent in ``graph`` or share a neighbor.
    """
    squared = nx.Graph()
    squared.add_nodes_from(graph.nodes)
    squared.add_edges_from(graph.edges)
    for node in graph.nodes:
        for u, v in itertools.combinations(graph.neighbors(node), 2):
            squared.add_edge(u, v)
    return squared
