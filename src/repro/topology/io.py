"""Minimal edge-list topology I/O.

Format: one edge per line, two whitespace-separated node names;
``#``-prefixed comment lines and blank lines are ignored.
"""

from __future__ import annotations

from pathlib import Path

import networkx as nx


def read_edgelist(path: str | Path) -> nx.Graph:
    """Load a topology from an edge-list file."""
    graph = nx.Graph()
    text = Path(path).read_text()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"{path}:{line_number}: expected two node names, got {line!r}"
            )
        graph.add_edge(parts[0], parts[1])
    return graph


def write_edgelist(graph: nx.Graph, path: str | Path) -> None:
    """Write a topology as an edge-list file (sorted, deterministic)."""
    lines = [f"# {graph.graph.get('name', 'topology')}"]
    for u, v in sorted(graph.edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"{u} {v}")
    Path(path).write_text("\n".join(lines) + "\n")
