"""The Internet checksum (RFC 1071)."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, complemented.

    Odd-length input is zero-padded on the right, per RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
