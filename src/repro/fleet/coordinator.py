"""Conservative-time coordinator for sharded fleet scenarios.

:func:`run_sharded_scenario` is the ``workers > 1`` twin of
:func:`~repro.fleet.runner.run_scenario`: it plans the shard cut,
spawns one worker process per shard (each with its own sim kernel —
see :mod:`repro.fleet.shardworker`), drives the barrier protocol over
``multiprocessing`` pipes, and merges the per-shard results into one
fleet-wide :class:`~repro.fleet.metrics.FleetMetrics` plus a single
sim-time-ordered trace.

The barrier rule: windows exist only because of *cross-shard*
interaction.  A pure partition (no topology link crosses the cut) runs
each shard start-to-finish in one window with zero barriers — that is
the configuration whose alarm timeline is byte-identical to a
single-process run.  With cut links, the coordinator steps all shards
through quantum-sized windows; anything announced inside window k
(failure envelopes, gossip payloads) is delivered at the start of
window k+1, so cross-shard effects land at most one quantum late.
Windows no shard has events in are fast-forwarded using each kernel's
:meth:`~repro.sim.kernel.Simulator.next_event_time` peek.

Self-healing: every reply doubles as a heartbeat.  The coordinator
waits at most ``spec.worker_timeout`` wall-clock seconds for each one;
a pipe EOF (crash) or a missed deadline (hang) triggers a respawn of
just that shard.  Because shard state is a pure function of the
commands a worker has processed — the deployment build is seeded, and
fork-start replacements inherit the same module-global counters the
original did (the coordinator never advances them between spawns) —
the replacement is brought current by replaying the shard's command
history and discarding the replayed replies, then the in-flight
command is re-sent.  Restarts are budgeted per shard
(``spec.max_worker_restarts``); a shard that exhausts its budget is
marked failed and the scenario continues without it, yielding a
*degraded* partial result instead of an abort.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from typing import TYPE_CHECKING, Any

from repro.fleet.failures import Injection
from repro.fleet.metrics import DetectionRecord, merge_fleet_metrics
from repro.fleet.sharding import (
    GossipDirectory,
    ShardPlan,
    plan_shards,
    spec_nodes,
)
from repro.fleet.shardworker import ShardResult, _announcer, worker_main

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from multiprocessing.connection import Connection

    from repro.fleet.runner import ScenarioResult, ScenarioSpec


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (workers inherit the built spec
    cheaply); whatever the platform default is otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def default_barrier_quantum(spec: "ScenarioSpec") -> float:
    """One probe timeout, capped at a quarter of the scenario.

    The probe timeout is the natural cross-shard reaction scale: a
    failure's first observable consequence is a probe timing out, so
    delivering envelopes a timeout late keeps detection latencies
    within one quantum of the in-process run.
    """
    return min(spec.probe_timeout, spec.duration / 4.0)


#: Wall-clock seconds a worker may go silent before it counts as hung
#: (overridable per scenario via ``ScenarioSpec.worker_timeout``).
DEFAULT_WORKER_TIMEOUT = 60.0


class _WorkerHandle:
    """One worker process plus its coordinator-side pipe end."""

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        spec: "ScenarioSpec",
        plan: ShardPlan,
        shard: int,
        incarnation: int = 0,
    ) -> None:
        self.shard = shard
        self.incarnation = incarnation
        self.conn: "Connection"
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child, spec, plan, shard, incarnation),
            daemon=True,
            name=f"repro-shard-{shard}.{incarnation}",
        )
        self.process.start()
        child.close()
        self.next_event: float | None = None

    def close(self) -> None:
        try:
            self.conn.close()
        finally:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)


class ShardRunError(RuntimeError):
    """A worker raised a deterministic error or broke protocol.

    Deliberately *not* raised for crashes or hangs — those go through
    the respawn path.  A worker that reports ``("error", traceback)``
    hit a real exception that deterministic replay would only repeat,
    so retrying is futile and the traceback surfaces immediately.
    """


class _WorkerDied(Exception):
    """Transport-level worker loss: pipe EOF or missed heartbeat."""


class _ShardDriver:
    """Owns the worker fleet: spawn, command fan-out, self-healing.

    Replies double as heartbeats — :meth:`_recv` waits at most
    ``timeout`` wall-clock seconds before declaring the worker hung.
    Crash (EOF) and hang funnel into :meth:`_respawn`, which replays
    the shard's completed command history into a fresh process.
    Replay is sound because a shard's state is a pure function of its
    seeded build plus the command sequence: fork-start replacements
    inherit module-global counters (xids, nonces) exactly as the
    original spawn did, since the coordinator process never advances
    them in between.
    """

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        spec: "ScenarioSpec",
        plan: ShardPlan,
    ) -> None:
        self.ctx = ctx
        self.spec = spec
        self.plan = plan
        self.timeout = spec.worker_timeout or DEFAULT_WORKER_TIMEOUT
        self.budget = spec.max_worker_restarts
        self.workers: list[_WorkerHandle | None] = [
            _WorkerHandle(ctx, spec, plan, shard)
            for shard in range(plan.workers)
        ]
        #: Completed ``("run", ...)`` commands per shard, replayed into
        #: respawned replacements to rebuild pre-crash state.
        self.history: list[list[tuple]] = [[] for _ in range(plan.workers)]
        self.restarts = [0] * plan.workers
        self.failed = [False] * plan.workers

    # ----- lifecycle ----------------------------------------------------

    @property
    def total_restarts(self) -> int:
        return sum(self.restarts)

    def shard_status(self) -> list[str]:
        return [
            "failed"
            if self.failed[shard]
            else ("ok" if n == 0 else f"restarted x{n}")
            for shard, n in enumerate(self.restarts)
        ]

    def live(self) -> list[_WorkerHandle]:
        return [w for w in self.workers if w is not None]

    def close(self) -> None:
        for worker in self.workers:
            if worker is not None:
                worker.close()

    def await_ready(self) -> None:
        for shard in range(self.plan.workers):
            worker = self.workers[shard]
            if worker is None:  # pragma: no cover - defensive
                continue
            try:
                self._recv(worker, "ready")
            except _WorkerDied:
                # _respawn consumes the replacement's ready handshake
                # (and replays the — still empty — history).
                self._respawn(shard)

    # ----- command fan-out ----------------------------------------------

    def broadcast(
        self, commands: dict[int, tuple], expect: str
    ) -> dict[int, Any]:
        """Send each shard its command, then await every reply.

        The two phases keep shards running concurrently.  Send errors
        are swallowed (a closed pipe resurfaces as EOF in the await
        phase, which owns recovery); a shard that fails its restart
        budget mid-await yields ``None`` in the result map.
        """
        for shard, command in commands.items():
            worker = self.workers[shard]
            if worker is None:
                continue
            try:
                worker.conn.send(command)
            except (BrokenPipeError, OSError):
                pass
        return {
            shard: self._await(shard, command, expect)
            for shard, command in commands.items()
        }

    def _await(self, shard: int, command: tuple, expect: str) -> Any:
        while True:
            worker = self.workers[shard]
            if worker is None:
                return None
            try:
                payload = self._recv(worker, expect)
            except _WorkerDied:
                if not self._respawn(shard):
                    return None
                # The replacement replayed history but never saw the
                # in-flight command: re-send it and await again.
                try:
                    self.workers[shard].conn.send(command)
                except (BrokenPipeError, OSError):
                    pass
                continue
            if command[0] == "run":
                self.history[shard].append(command)
            return payload

    def _recv(self, worker: _WorkerHandle, expect: str) -> Any:
        if not worker.conn.poll(self.timeout):
            raise _WorkerDied(
                f"shard {worker.shard} missed its {self.timeout:g}s "
                "reply deadline"
            )
        try:
            message = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDied(str(exc)) from exc
        if message[0] == "error":
            raise ShardRunError(
                f"shard {worker.shard} worker failed:\n{message[1]}"
            )
        if message[0] != expect:
            raise ShardRunError(
                f"shard {worker.shard} protocol error: got "
                f"{message[0]!r}, expected {expect!r}"
            )
        return message[1] if len(message) > 1 else None

    # ----- self-healing -------------------------------------------------

    def _respawn(self, shard: int) -> bool:
        """Replace a dead/hung worker; replay its history.

        Every spawn attempt counts against the shard's restart budget.
        Returns False once the budget is exhausted — the shard is then
        marked failed and excluded from the rest of the run.
        """
        old = self.workers[shard]
        if old is not None:
            old.close()
        while True:
            if self.restarts[shard] >= self.budget:
                self.workers[shard] = None
                self.failed[shard] = True
                return False
            self.restarts[shard] += 1
            # Incarnation == total spawn attempts for this shard, so
            # every process ever started gets a distinct number.
            worker = _WorkerHandle(
                self.ctx,
                self.spec,
                self.plan,
                shard,
                incarnation=self.restarts[shard],
            )
            self.workers[shard] = worker
            try:
                self._recv(worker, "ready")
                for command in self.history[shard]:
                    worker.conn.send(command)
                    # Replay replies are byte-identical to the ones the
                    # original already delivered; discard them.
                    self._recv(worker, "window")
            except _WorkerDied:
                worker.close()
                continue
            return True


def run_sharded_scenario(spec: "ScenarioSpec") -> "ScenarioResult":
    """Run one scenario across ``spec.workers`` shard processes."""
    from repro.fleet.runner import run_scenario
    from dataclasses import replace

    plan = plan_shards(
        spec.build_topology(), spec.workers, spec.shard_policy
    )
    if plan.workers <= 1:
        # Fewer switches than workers: nothing to shard (worker chaos
        # hooks target shards, so they have nothing to bite either).
        return run_scenario(replace(spec, workers=1, chaos=()))

    driver = _ShardDriver(_mp_context(), spec, plan)
    try:
        driver.await_ready()
        build_done = _time.perf_counter()
        directory = GossipDirectory()
        barriers = _drive_windows(spec, plan, driver, directory)
        replies = driver.broadcast(
            {w.shard: ("finish",) for w in driver.live()}, "result"
        )
        results: list[ShardResult] = [
            reply for reply in replies.values() if reply is not None
        ]
        run_seconds = _time.perf_counter() - build_done
    finally:
        driver.close()

    return _merge_results(
        spec, plan, results, directory, barriers, run_seconds, driver
    )


def _route_envelopes(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    emitted: list[tuple[float, int]],
) -> dict[int, list[tuple[float, int]]]:
    """Address announced envelopes to every owning shard but the
    announcer (who already applied its half at fire time)."""
    routed: dict[int, list[tuple[float, int]]] = {}
    for fire_time, index in emitted:
        nodes = spec_nodes(spec.failures[index])
        owners = {plan.owner(node) for node in nodes}
        owners.discard(_announcer(plan, nodes))
        for shard in owners:
            routed.setdefault(shard, []).append((fire_time, index))
    return routed


def _run_and_ingest(
    driver: _ShardDriver,
    directory: GossipDirectory,
    commands: dict[int, tuple],
) -> list[tuple[float, int]]:
    """One barrier round: fan out run commands, ingest the replies.

    Gossip and envelope bookkeeping happens here so a shard that fails
    its restart budget mid-round simply contributes nothing (its reply
    is ``None``); the round still completes for the survivors.
    """
    emitted: list[tuple[float, int]] = []
    for shard, payload in driver.broadcast(commands, "window").items():
        if payload is None:
            continue
        emitted.extend(payload["emitted"])
        directory.publish(shard, payload["digests"])
        directory.receive_exports(shard, payload["exports"])
        worker = driver.workers[shard]
        if worker is not None:
            worker.next_event = payload["next_event"]
    return emitted


def _drive_windows(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    driver: _ShardDriver,
    directory: GossipDirectory,
) -> int:
    """Step every shard to ``spec.duration``; returns the barrier count.

    Pure partitions take the single-window fast path: no cross-shard
    links means no envelopes and no gossip peers worth the pipe
    traffic, so each worker runs its whole scenario uninterrupted.
    """
    duration = spec.duration
    if plan.is_pure:
        # Replies are still awaited (the broadcast owns crash
        # recovery) but their gossip goes unpublished: pure partitions
        # have no cut, so cross-shard cache shipping is all cost.
        driver.broadcast(
            {w.shard: ("run", duration, {}) for w in driver.live()},
            "window",
        )
        return 0

    quantum = spec.barrier_quantum or default_barrier_quantum(spec)
    pending: dict[int, list[tuple[float, int]]] = {}
    barriers = 0
    now = 0.0
    while now < duration:
        target = min(duration, now + quantum)
        workers = driver.live()
        next_times = [
            w.next_event for w in workers if w.next_event is not None
        ]
        if barriers and not next_times and not pending:
            # Every kernel is idle and nothing is in flight: only the
            # final clock advance remains.
            target = duration
        elif barriers and next_times and min(next_times) >= target:
            # No shard has an event inside this window; fast-forward
            # one quantum past the earliest pending event instead of
            # lock-stepping through empty quanta.
            target = min(duration, min(next_times) + quantum)
        requests = directory.export_requests()
        commands: dict[int, tuple] = {}
        for worker in workers:
            deliveries: dict[str, Any] = {}
            if worker.shard in pending:
                deliveries["envelopes"] = pending[worker.shard]
            exports_wanted = requests.get(worker.shard)
            if exports_wanted:
                deliveries["export_requests"] = exports_wanted
            imports = directory.imports_for(worker.shard)
            if imports:
                deliveries["imports"] = imports
            commands[worker.shard] = ("run", target, deliveries)
        pending = {}
        emitted = _run_and_ingest(driver, directory, commands)
        for shard, envelopes in _route_envelopes(
            spec, plan, emitted
        ).items():
            if driver.workers[shard] is not None:
                pending.setdefault(shard, []).extend(envelopes)
        barriers += 1
        now = target
    if pending:
        # Envelopes announced in the final window: deliver them in one
        # zero-length window so the peer's injection record is filled
        # (no sim time remains for alarms, but the merged report must
        # still describe the injection).
        _run_and_ingest(
            driver,
            directory,
            {
                w.shard: (
                    "run",
                    duration,
                    {"envelopes": pending.get(w.shard, [])},
                )
                for w in driver.live()
            },
        )
        barriers += 1
    return barriers


def _merge_results(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    results: list[ShardResult],
    directory: GossipDirectory,
    barriers: int,
    run_seconds: float,
    driver: _ShardDriver,
) -> "ScenarioResult":
    from repro.fleet.runner import ScenarioResult

    results.sort(key=lambda res: res.shard)
    detections, injections = _merge_detections(results)
    latencies: list[float] = []
    for res in results:
        latencies.extend(res.confirmation_latencies)
    metrics = merge_fleet_metrics(
        [res.metrics for res in results],
        detections=detections,
        confirmation_latencies=latencies,
        duration=spec.duration,
    )
    metrics.workers = plan.workers
    metrics.shard_policy = plan.policy
    metrics.cut_links = len(plan.cut_edges)
    metrics.barriers = barriers
    metrics.gossip_digests_published = directory.digests_published
    metrics.gossip_entries_shipped = directory.entries_shipped
    metrics.gossip_entries_imported = sum(
        res.gossip_entries_imported for res in results
    )
    metrics.worker_restarts = driver.total_restarts
    metrics.shards_failed = sum(driver.failed)
    metrics.shard_status = driver.shard_status()

    observer = spec.build_observer()
    if observer is not None:
        rows = sorted(
            (row for res in results for row in res.trace_rows),
            # Sort on the timestamp alone: later tuple fields hold
            # dicts, which do not compare.  The sort is stable, so
            # same-timestamp rows keep shard order.
            key=lambda row: row[0],
        )
        observer.trace.extend_raw(rows)
        observer.trace.emitted = sum(res.trace_emitted for res in results)

    result = ScenarioResult(
        spec=spec,
        deployment=None,
        injections=injections,
        metrics=metrics,
        observer=observer,
        timings={"run_seconds": run_seconds},
        restarts=driver.total_restarts,
        degraded=any(driver.failed),
    )
    result.export()
    return result


def _merge_detections(
    results: list[ShardResult],
) -> tuple[list[DetectionRecord], list[Injection]]:
    """Fuse per-shard detection records by global failure-spec index.

    Single-owner specs appear in exactly one shard.  A cut-crossing
    spec appears once per adjacent shard — same fire time (the
    envelope carries the announcer's clock), each half knowing only
    its own switches' cookies — so the merged record unions node and
    cookie sets and keeps the earliest attributable alarm.
    """
    by_index: dict[int, list[DetectionRecord]] = {}
    for res in results:
        for index, record in zip(
            res.injection_indices, res.metrics.detections
        ):
            by_index.setdefault(index, []).append(record)
    detections: list[DetectionRecord] = []
    injections: list[Injection] = []
    for index in sorted(by_index):
        parts = by_index[index]
        merged = parts[0]
        injection = merged.injection
        for other in parts[1:]:
            injection.nodes |= other.injection.nodes
            injection.cookies |= other.injection.cookies
            injection.broad = injection.broad or other.injection.broad
            if injection.error and not other.injection.error:
                injection.error = None
                injection.description = other.injection.description
            if other.detected_at is not None and (
                merged.detected_at is None
                or other.detected_at < merged.detected_at
            ):
                merged.detected_at = other.detected_at
                merged.detected_on = other.detected_on
                merged.alarm_kind = other.alarm_kind
        detections.append(merged)
        injections.append(injection)
    return detections, injections
