"""Raw packet bytes -> abstract header (the inverse of crafting).

Monocle uses this when a probe is caught: the PacketIn payload is parsed
back into abstract header values so the monitor can check which rewrites
were applied, and the probe metadata is recovered from the payload.
"""

from __future__ import annotations

from repro.openflow.fields import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    FieldName,
)
from repro.packets import arp, ethernet, ipv4, transport


class ParseError(ValueError):
    """Raised when packet bytes cannot be parsed."""


def parse_packet(
    raw: bytes, in_port: int = 0
) -> tuple[dict[FieldName, int], bytes]:
    """Parse packet bytes into (abstract header values, payload).

    Args:
        raw: the packet bytes, starting at the Ethernet header.
        in_port: the port the packet arrived on (copied into the header).

    Raises:
        ParseError: on malformed or unsupported packets.
    """
    try:
        eth, rest = ethernet.decode_ethernet(raw)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc

    values: dict[FieldName, int] = {
        FieldName.IN_PORT: in_port,
        FieldName.DL_SRC: eth.src,
        FieldName.DL_DST: eth.dst,
        FieldName.DL_TYPE: eth.ethertype,
        FieldName.DL_VLAN: eth.vlan,
        FieldName.DL_VLAN_PCP: eth.vlan_pcp,
    }

    if eth.ethertype == ETHERTYPE_IPV4:
        return _parse_ipv4(values, rest)
    if eth.ethertype == ETHERTYPE_ARP:
        try:
            arp_pkt, payload = arp.decode_arp(rest)
        except ValueError as exc:
            raise ParseError(str(exc)) from exc
        values[FieldName.NW_SRC] = arp_pkt.sender_ip
        values[FieldName.NW_DST] = arp_pkt.target_ip
        return values, payload
    raise ParseError(f"unsupported ethertype {eth.ethertype:#06x}")


def _parse_ipv4(
    values: dict[FieldName, int], data: bytes
) -> tuple[dict[FieldName, int], bytes]:
    try:
        ip, rest = ipv4.decode_ipv4(data)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc
    values[FieldName.NW_SRC] = ip.src
    values[FieldName.NW_DST] = ip.dst
    values[FieldName.NW_PROTO] = ip.proto
    values[FieldName.NW_TOS] = ip.tos

    try:
        if ip.proto == IPPROTO_TCP:
            tp_src, tp_dst, payload = transport.decode_tcp(rest)
        elif ip.proto == IPPROTO_UDP:
            tp_src, tp_dst, payload = transport.decode_udp(rest)
        elif ip.proto == IPPROTO_ICMP:
            tp_src, tp_dst, payload = transport.decode_icmp(rest)
        else:
            raise ParseError(f"unsupported nw_proto {ip.proto}")
    except ValueError as exc:
        raise ParseError(str(exc)) from exc

    values[FieldName.TP_SRC] = tp_src
    values[FieldName.TP_DST] = tp_dst
    return values, payload
