#!/usr/bin/env python3
"""Sharded fleet runtime: the same scenario at workers=1 vs workers=4.

A 32-switch fleet (four 8-switch islands) under rule churn with two
injected failures, run twice:

* in-process — one sim kernel owns every switch (``workers=1``);
* sharded — four worker processes, each with its own kernel, driven
  by the conservative-time coordinator (``workers=4``; the islands
  partition cleanly under the ``locality`` policy, so the run is
  barrier-free).

The two runs must agree *exactly* — same alarm timeline, same
detections, same confirmed-operation count — because sharding changes
who executes the events, never what executes.  The wall-clock ratio
depends on how many cores the machine actually has; on a single core
the sharded run only demonstrates (bounded) overhead.

Run:  python examples/sharded_fleet.py
"""

from dataclasses import replace

from repro.fleet import (
    RuleChurn,
    RuleDrop,
    ScenarioSpec,
    run_scenario,
)

SPEC = ScenarioSpec(
    topology="islands",
    size=32,  # four islands of 8 — partitions cleanly across 4 shards
    duration=1.5,
    seed=2015,
    rules_per_switch=6,
    probe_rate=150.0,
    workloads=(RuleChurn(rate=60.0),),
    failures=(
        RuleDrop(at=0.5, node="isl00_sw1", rule_index=2),
        RuleDrop(at=0.8, node="isl02_sw4", rule_index=1),
    ),
)


def run(workers: int):
    result = run_scenario(replace(SPEC, workers=workers))
    metrics = result.metrics
    label = f"workers={workers}"
    print(
        f"{label:>10}: {metrics.probes_sent} probes, "
        f"{metrics.updates_confirmed} churn ops confirmed, "
        f"{sum(1 for d in metrics.detections if d.detected)}/"
        f"{len(metrics.detections)} failures detected, "
        f"{len(metrics.false_alarms)} false alarms "
        f"({result.timings['run_seconds']:.2f}s wall clock)"
    )
    return result


def main():
    print(f"{SPEC.size}-switch fleet, {SPEC.workloads[0].rate:.0f} churn "
          f"ops/s, seed {SPEC.seed}\n")
    baseline = run(1)
    sharded = run(4)

    b, s = baseline.metrics, sharded.metrics
    assert s.alarm_timeline == b.alarm_timeline, "timelines diverged!"
    assert s.updates_confirmed == b.updates_confirmed
    assert [d.detected_at for d in s.detections] == [
        d.detected_at for d in b.detections
    ]
    print("\nalarm timelines are byte-identical across worker counts")
    print(
        f"sharded run: {s.workers} workers, {s.cut_links} cut links, "
        f"{s.barriers} barriers (pure partition => barrier-free)"
    )

    ratio = (
        baseline.timings["run_seconds"] / sharded.timings["run_seconds"]
    )
    print(f"wall-clock speedup: {ratio:.2f}x "
          "(hardware-dependent; the BENCH_shard gate runs on >= 4 cores)")


if __name__ == "__main__":
    main()
