"""Tests for the control-channel chaos layer: ChannelConditions
stacking, ChannelConditioner draws, conditioned ControlChannel
delivery, and the chaos failure specs that drive them."""

import pytest

from repro.fleet.deployment import FleetDeployment
from repro.fleet.failures import (
    ChannelDegradation,
    ControlPlaneFlap,
    FailureSpecError,
    Injection,
    failure_rng,
    inject_now,
)
from repro.network.channel import ControlChannel
from repro.network.conditioning import (
    DIRECTIONS,
    PERFECT,
    ChannelConditioner,
    ChannelConditions,
)
from repro.openflow.messages import EchoRequest
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.topology.generators import ring


def _msg():
    return EchoRequest()


class TestChannelConditions:
    def test_validate_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            ChannelConditions(loss=1.5).validate()
        with pytest.raises(ValueError):
            ChannelConditions(duplicate=-0.1).validate()

    def test_validate_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            ChannelConditions(delay=-0.001).validate()

    def test_reorder_requires_window(self):
        with pytest.raises(ValueError):
            ChannelConditions(reorder=0.5).validate()
        ChannelConditions(reorder=0.5, reorder_window=0.01).validate()

    def test_active(self):
        assert not PERFECT.active
        assert ChannelConditions(loss=0.1).active
        assert ChannelConditions(delay=0.002).active

    def test_combine_stacks_independent_probabilities(self):
        stacked = ChannelConditions.combine(
            [
                ChannelConditions(loss=0.5, delay=0.01, jitter=0.002),
                ChannelConditions(
                    loss=0.5,
                    delay=0.02,
                    reorder=0.25,
                    reorder_window=0.05,
                ),
            ]
        )
        assert stacked.loss == pytest.approx(0.75)
        assert stacked.delay == pytest.approx(0.03)
        assert stacked.jitter == pytest.approx(0.002)
        assert stacked.reorder == pytest.approx(0.25)
        assert stacked.reorder_window == 0.05

    def test_combine_single_overlay_is_identity(self):
        only = ChannelConditions(loss=0.3)
        assert ChannelConditions.combine([only]) is only


class TestChannelConditioner:
    def test_idle_conditioner_draws_nothing(self):
        conditioner = ChannelConditioner(DeterministicRandom(11))
        for direction in DIRECTIONS:
            assert not conditioner.is_active(direction)
            assert conditioner.stats[direction].conditioned == 0

    def test_apply_remove_restores_idle(self):
        conditioner = ChannelConditioner(DeterministicRandom(11))
        token = conditioner.apply(ChannelConditions(loss=0.5), "both")
        assert conditioner.is_active("down")
        assert conditioner.is_active("up")
        conditioner.remove(token)
        assert not conditioner.is_active("down")
        assert not conditioner.is_active("up")
        # Idempotent: a second remove of the same token is a no-op.
        conditioner.remove(token)

    def test_overlays_stack_and_unstack(self):
        conditioner = ChannelConditioner(DeterministicRandom(11))
        first = conditioner.apply(ChannelConditions(loss=0.5), "down")
        conditioner.apply(ChannelConditions(loss=0.5), "down")
        assert conditioner.effective("down").loss == pytest.approx(0.75)
        assert not conditioner.is_active("up")
        conditioner.remove(first)
        assert conditioner.effective("down").loss == pytest.approx(0.5)

    def test_unknown_direction_rejected(self):
        conditioner = ChannelConditioner(DeterministicRandom(11))
        with pytest.raises(ValueError):
            conditioner.apply(ChannelConditions(loss=0.5), "sideways")

    def test_plan_is_seed_deterministic(self):
        conditions = ChannelConditions(
            loss=0.3, jitter=0.002, duplicate=0.2
        )
        plans = []
        for _ in range(2):
            conditioner = ChannelConditioner(DeterministicRandom(42))
            conditioner.apply(conditions, "down")
            plans.append(
                [conditioner.plan("down") for _ in range(200)]
            )
        assert plans[0] == plans[1]

    def test_directions_draw_from_independent_streams(self):
        # Draining one direction's stream must not perturb the other:
        # two conditioners, one of which plans 100 extra "down"
        # messages, still agree on the "up" sequence.
        conditions = ChannelConditions(loss=0.5)
        one = ChannelConditioner(DeterministicRandom(42))
        two = ChannelConditioner(DeterministicRandom(42))
        for conditioner in (one, two):
            conditioner.apply(conditions, "both")
        for _ in range(100):
            one.plan("down")
        ups_one = [one.plan("up") for _ in range(50)]
        ups_two = [two.plan("up") for _ in range(50)]
        assert ups_one == ups_two

    def test_certain_loss_drops_everything(self):
        conditioner = ChannelConditioner(DeterministicRandom(5))
        conditioner.apply(ChannelConditions(loss=1.0), "up")
        for _ in range(20):
            assert conditioner.plan("up") == []
        assert conditioner.stats["up"].dropped == 20

    def test_certain_duplicate_delivers_two_copies(self):
        conditioner = ChannelConditioner(DeterministicRandom(5))
        conditioner.apply(ChannelConditions(duplicate=1.0), "down")
        for _ in range(20):
            assert len(conditioner.plan("down")) == 2
        assert conditioner.stats["down"].duplicated == 20

    def test_delay_and_jitter_bound_extra_latency(self):
        conditioner = ChannelConditioner(DeterministicRandom(5))
        conditioner.apply(
            ChannelConditions(delay=0.010, jitter=0.005), "down"
        )
        for _ in range(50):
            (extra,) = conditioner.plan("down")
            assert 0.010 <= extra <= 0.015

    def test_stats_summary_shape(self):
        conditioner = ChannelConditioner(DeterministicRandom(5))
        summary = conditioner.stats_summary()
        assert set(summary) == set(DIRECTIONS)
        assert summary["down"]["dropped"] == 0


class TestConditionedChannel:
    def _channel(self, seed=9):
        sim = Simulator()
        conditioner = ChannelConditioner(DeterministicRandom(seed))
        channel = ControlChannel(
            sim, latency=0.001, conditioner=conditioner
        )
        return sim, conditioner, channel

    def test_blackout_drops_down_traffic_only(self):
        sim, conditioner, channel = self._channel()
        down, up = [], []
        channel.down_handler = down.append
        channel.up_handler = up.append
        conditioner.apply(ChannelConditions(loss=1.0), "down")
        for _ in range(5):
            channel.send_down(_msg())
            channel.send_up(_msg())
        sim.run()
        assert down == []
        assert len(up) == 5
        assert conditioner.stats["down"].dropped == 5

    def test_duplicate_doubles_delivery(self):
        sim, conditioner, channel = self._channel()
        got = []
        channel.up_handler = got.append
        conditioner.apply(ChannelConditions(duplicate=1.0), "up")
        channel.send_up(_msg())
        sim.run()
        assert len(got) == 2

    def test_delay_shifts_delivery_time(self):
        sim, conditioner, channel = self._channel()
        times = []
        channel.down_handler = lambda msg: times.append(sim.now)
        conditioner.apply(ChannelConditions(delay=0.050), "down")
        channel.send_down(_msg())
        sim.run()
        assert times == [pytest.approx(0.051)]

    def test_removed_overlay_restores_clean_delivery(self):
        sim, conditioner, channel = self._channel()
        got = []
        channel.down_handler = got.append
        token = conditioner.apply(ChannelConditions(loss=1.0), "down")
        channel.send_down(_msg())
        conditioner.remove(token)
        channel.send_down(_msg())
        sim.run()
        assert len(got) == 1
        # Post-removal sends never touch the rng.
        assert conditioner.stats["down"].conditioned == 1


def _deployment(seed=3):
    return FleetDeployment(ring(4), dynamic=False, seed=seed)


class TestChaosFailureSpecs:
    def test_channel_degradation_overlays_and_expires(self):
        deployment = _deployment()
        spec = ChannelDegradation(
            at=0.0, node="sw0", loss=0.5, duration=0.2, direction="up"
        )
        record = Injection(kind=spec.kind, time=0.0)
        inject_now(deployment, spec, record)
        conditioner = deployment.network.conditioner("sw0")
        assert record.error is None
        assert record.chaos
        assert conditioner.is_active("up")
        assert not conditioner.is_active("down")
        deployment.run(0.3)
        assert not conditioner.is_active("up")

    def test_control_plane_flap_blacks_out_both_directions(self):
        deployment = _deployment()
        spec = ControlPlaneFlap(at=0.0, node="sw1", duration=0.1)
        record = Injection(kind=spec.kind, time=0.0)
        inject_now(deployment, spec, record)
        conditioner = deployment.network.conditioner("sw1")
        assert conditioner.effective("down").loss == 1.0
        assert conditioner.effective("up").loss == 1.0
        deployment.run(0.2)
        assert not conditioner.is_active("down")
        assert not conditioner.is_active("up")

    def test_degradation_with_all_knobs_zero_is_an_error(self):
        deployment = _deployment()
        spec = ChannelDegradation(at=0.0, node="sw0")
        record = Injection(kind=spec.kind, time=0.0)
        inject_now(deployment, spec, record)
        assert record.error is not None

    def test_degradation_of_unknown_node_is_an_error(self):
        deployment = _deployment()
        spec = ChannelDegradation(at=0.0, node="nope", loss=0.5)
        with pytest.raises(FailureSpecError):
            spec.inject(deployment, Injection(kind=spec.kind, time=0.0))

    def test_chaos_injection_never_explains_or_detects(self):
        record = Injection(
            kind="channel_degradation",
            time=0.0,
            nodes={"sw0"},
            chaos=True,
        )

        class Alarm:
            time = 1.0

            class rule:
                cookie = 7

        assert not record.explains("sw0", Alarm)
        assert not record.is_detection("sw0", Alarm)

    def test_failure_rng_is_a_pure_function_of_seed_and_index(self):
        # Draws elsewhere on the fleet stream must not shift a spec's
        # victim stream: fork() derives from the parent's *seed*.
        one = _deployment(seed=12)
        two = _deployment(seed=12)
        two.rng.random()
        two.rng.random()
        draws_one = [failure_rng(one, 4).random() for _ in range(5)]
        draws_two = [failure_rng(two, 4).random() for _ in range(5)]
        assert draws_one == draws_two
        # ...but distinct spec indices get distinct streams.
        assert draws_one != [
            failure_rng(one, 5).random() for _ in range(5)
        ]
