"""Two-phase consistent path updates (paper §8.1.2, following [19]).

A :class:`ConsistentPathUpdate` reroutes one flow from an old path to a
new path without (in theory) dropping packets:

1. install the new rules on all switches of the new path *except* the
   ingress switch, and wait for confirmation;
2. only then modify the ingress rule to steer the flow onto the new
   path.

Whether step 2 actually happens after the downstream data plane is
ready depends entirely on how truthful the confirmation is — that is
exactly what Figure 5 measures (barriers vs Monocle acks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.controller.controller import ConfirmMode, SdnController
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowModCommand


@dataclass
class ConsistentPathUpdate:
    """One flow's two-phase reroute.

    Attributes:
        controller: the controller issuing FlowMods.
        match: the flow's match.
        priority: rule priority along the path.
        old_path / new_path: switch sequences (same ingress).
        port_toward: ``port_toward[u][v]`` port map from the Network.
        final_port: egress (host) port at the last switch.
        confirm: confirmation mode for phase one.
    """

    controller: SdnController
    match: Match
    priority: int
    old_path: list[Hashable]
    new_path: list[Hashable]
    port_toward: dict
    final_port: int
    confirm: ConfirmMode = ConfirmMode.BARRIER
    on_complete: Callable[[], None] | None = None

    #: Timestamps recorded for the Figure 5 plot.
    phase1_started: float = field(default=0.0, init=False)
    phase1_confirmed: float = field(default=0.0, init=False)
    ingress_updated: float = field(default=0.0, init=False)
    done: bool = field(default=False, init=False)

    def start(self) -> None:
        """Run phase one (downstream rules on the new path)."""
        if self.old_path[0] != self.new_path[0]:
            raise ValueError("consistent update requires a shared ingress")
        self.phase1_started = self.controller.sim.now
        self.controller.install_path(
            path=self.new_path,
            match=self.match,
            priority=self.priority,
            port_toward=self.port_toward,
            final_port=self.final_port,
            confirm=self.confirm,
            on_all_confirmed=self._phase2,
            skip_ingress=True,
        )

    def _phase2(self) -> None:
        """Flip the ingress rule onto the new path."""
        self.phase1_confirmed = self.controller.sim.now
        ingress = self.new_path[0]
        next_hop = self.new_path[1] if len(self.new_path) > 1 else None
        out_port = (
            self.port_toward[ingress][next_hop]
            if next_hop is not None
            else self.final_port
        )
        self.controller.install_rule(
            ingress,
            self.match,
            self.priority,
            output(out_port),
            confirm=ConfirmMode.NONE,
            command=FlowModCommand.MODIFY_STRICT,
        )
        self.ingress_updated = self.controller.sim.now
        self.done = True
        if self.on_complete is not None:
            self.on_complete()
