"""A reference SDN controller with pluggable installation confirmation.

The controller does not care whether its messages go straight to switch
control channels or through Monocle; it only needs a ``send(node, msg)``
callable and to be registered as the upstream message handler.  Three
confirmation modes cover the paper's experimental arms:

* ``NONE`` — fire and forget,
* ``BARRIER`` — follow the FlowMod with a BarrierRequest and trust the
  BarrierReply (what the "vanilla" arm of Figure 5 does — and what
  premature-ack switches break),
* ``MONOCLE_ACK`` — wait for Monocle's UpdateAck, which is only sent
  once the rule provably works in the data plane.
"""

from __future__ import annotations

import enum
from typing import Callable, Hashable

from repro.core.dynamic import UpdateAck
from repro.openflow.actions import ActionList
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowModCommand,
    Message,
)
from repro.sim.kernel import Simulator


class ConfirmMode(str, enum.Enum):
    """How the controller learns that a rule is installed."""

    NONE = "none"
    BARRIER = "barrier"
    MONOCLE_ACK = "monocle_ack"


class SdnController:
    """Installs rules and paths; tracks confirmations by xid.

    Args:
        sim: simulation kernel (for timestamps only).
        send: ``(node, message) -> None`` delivering control messages.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[Hashable, Message], None],
    ) -> None:
        self.sim = sim
        self.send = send
        self._barrier_waiters: dict[
            tuple[Hashable, int], Callable[[], None]
        ] = {}
        self._ack_waiters: dict[tuple[Hashable, int], Callable[[], None]] = {}
        self.flowmods_sent = 0
        self.confirmations = 0

    # ----- message plumbing -------------------------------------------------

    def handle_message(self, node: Hashable, msg: Message) -> None:
        """Upstream handler: resolve pending barrier/ack waits."""
        if isinstance(msg, BarrierReply):
            waiter = self._barrier_waiters.pop((node, msg.xid), None)
            if waiter is not None:
                self.confirmations += 1
                waiter()
        elif isinstance(msg, UpdateAck):
            waiter = self._ack_waiters.pop((node, msg.flowmod_xid), None)
            if waiter is not None:
                self.confirmations += 1
                waiter()

    # ----- rule installation --------------------------------------------------

    def send_flowmod(
        self,
        node: Hashable,
        mod: FlowMod,
        confirm: ConfirmMode = ConfirmMode.NONE,
        on_confirmed: Callable[[], None] | None = None,
    ) -> FlowMod:
        """Send one FlowMod with the chosen confirmation mode."""
        self.flowmods_sent += 1
        if confirm is ConfirmMode.MONOCLE_ACK and on_confirmed is not None:
            self._ack_waiters[(node, mod.xid)] = on_confirmed
        self.send(node, mod)
        if confirm is ConfirmMode.BARRIER:
            barrier = BarrierRequest()
            if on_confirmed is not None:
                self._barrier_waiters[(node, barrier.xid)] = on_confirmed
            self.send(node, barrier)
        elif confirm is ConfirmMode.NONE and on_confirmed is not None:
            on_confirmed()
        return mod

    def install_rule(
        self,
        node: Hashable,
        match: Match,
        priority: int,
        actions: ActionList,
        confirm: ConfirmMode = ConfirmMode.NONE,
        on_confirmed: Callable[[], None] | None = None,
        command: FlowModCommand = FlowModCommand.ADD,
    ) -> FlowMod:
        """Convenience wrapper building the FlowMod."""
        mod = FlowMod(
            command=command, match=match, priority=priority, actions=actions
        )
        return self.send_flowmod(node, mod, confirm, on_confirmed)

    # ----- path installation ---------------------------------------------------

    def install_path(
        self,
        path: list[Hashable],
        match: Match,
        priority: int,
        port_toward: dict[Hashable, dict[Hashable, int]],
        final_port: int,
        confirm: ConfirmMode = ConfirmMode.NONE,
        on_all_confirmed: Callable[[], None] | None = None,
        skip_ingress: bool = False,
    ) -> list[FlowMod]:
        """Install forwarding rules along ``path`` for ``match``.

        Each hop forwards toward the next; the last hop outputs on
        ``final_port`` (typically a host port).  With ``skip_ingress``
        the first switch's rule is *not* installed — phase one of a
        two-phase consistent update.

        Returns the FlowMods sent, ingress first.
        """
        from repro.openflow.actions import output

        hops: list[tuple[Hashable, int]] = []
        for i, node in enumerate(path):
            if i + 1 < len(path):
                out_port = port_toward[node][path[i + 1]]
            else:
                out_port = final_port
            hops.append((node, out_port))

        to_install = hops[1:] if skip_ingress else hops
        remaining = len(to_install)
        mods: list[FlowMod] = []

        if remaining == 0:
            if on_all_confirmed is not None:
                on_all_confirmed()
            return mods

        def one_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and on_all_confirmed is not None:
                on_all_confirmed()

        for node, out_port in to_install:
            mods.append(
                self.install_rule(
                    node,
                    match,
                    priority,
                    output(out_port),
                    confirm=confirm,
                    on_confirmed=one_done if on_all_confirmed else None,
                )
            )
        return mods
