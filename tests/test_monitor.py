"""Tests for the Monitor proxy: expected-table tracking, steady-state
cycling, probe confirmation and alarms — over a real simulated star."""


from repro.core.monitor import MonitorConfig, outcome_observations
from repro.core.multiplexer import MonocleSystem
from repro.openflow.actions import drop, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule, RuleOutcome
from repro.network import Network
from repro.sim.kernel import Simulator
from repro.topology.generators import star


def star_setup(num_rules=20, probe_rate=500.0, dynamic=False, seed=3):
    sim = Simulator()
    net = Network(sim, star(4), seed=seed)
    system = MonocleSystem(
        net, config=MonitorConfig(probe_rate=probe_rate), dynamic=dynamic
    )
    rules = []
    for i in range(num_rules):
        leaf = f"leaf{i % 4}"
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000000 + i),
            actions=output(net.port_toward["hub"][leaf]),
        )
        system.preinstall_production_rule("hub", rule)
        rules.append(rule)
    return sim, net, system, rules


class TestOutcomeObservations:
    def test_restriction_to_observable_ports(self):
        outcome = RuleOutcome(emissions=((1, ()), (9, ())))
        observations = outcome_observations(outcome, frozenset({1}))
        assert {port for port, _ in observations} == {1}

    def test_in_port_stripped(self):
        outcome = RuleOutcome(
            emissions=(
                (
                    1,
                    (
                        (FieldName.IN_PORT, 4),
                        (FieldName.DL_TYPE, 0x0800),
                        (FieldName.NW_TOS, 2),
                    ),
                ),
            )
        )
        ((port, items),) = outcome_observations(outcome, None)
        assert FieldName.IN_PORT not in dict(items)
        assert dict(items)[FieldName.NW_TOS] == 2

    def test_wire_invisible_fields_projected_out(self):
        # nw_tos is not representable on the wire without dl_type=0x0800,
        # so an observer can never see it; the observation model must
        # drop it (an ARP probe's caught copy carries no IP fields).
        outcome = RuleOutcome(
            emissions=(
                (
                    1,
                    (
                        (FieldName.DL_TYPE, 0x0806),
                        (FieldName.NW_DST, 0x0A000001),
                        (FieldName.NW_TOS, 2),
                        (FieldName.TP_DST, 80),
                    ),
                ),
            )
        )
        ((_port, items),) = outcome_observations(outcome, None)
        assert FieldName.NW_TOS not in dict(items)
        assert FieldName.TP_DST not in dict(items)
        assert dict(items)[FieldName.NW_DST] == 0x0A000001


class TestExpectedTableTracking:
    def test_flowmods_tracked_and_forwarded(self):
        sim, net, system, _ = star_setup(num_rules=0)
        monitor = system.monitor("hub")
        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=0x0A000063),
            priority=50,
            actions=output(1),
        )
        monitor.from_controller(mod)
        sim.run_for(0.5)
        assert monitor.expected.get(50, mod.match) is not None
        assert net.switch("hub").control_table.get(50, mod.match) is not None

    def test_delete_tracked(self):
        sim, net, system, rules = star_setup(num_rules=3)
        monitor = system.monitor("hub")
        mod = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=rules[0].match,
            priority=rules[0].priority,
        )
        monitor.from_controller(mod)
        assert monitor.expected.get(rules[0].priority, rules[0].match) is None

    def test_probe_cache_invalidated_by_overlap(self):
        sim, net, system, rules = star_setup(num_rules=2)
        monitor = system.monitor("hub")
        first = monitor.probe_for_rule(rules[0])
        assert monitor.probe_for_rule(rules[0]) is first  # cached
        overlapping = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.wildcard(),
            priority=10,
            actions=output(1),
        )
        monitor.observe_flowmod(overlapping)
        assert monitor.probe_for_rule(rules[0]) is not first

    def test_probe_cache_survives_non_intersecting_flowmod(self):
        """Regression: a FlowMod used to blow away cached probes it
        could not possibly affect.  Invalidation must be limited to
        cached probes whose rule match intersects the changed rule."""
        sim, net, system, rules = star_setup(num_rules=4)
        monitor = system.monitor("hub")
        cached = [monitor.probe_for_rule(rule) for rule in rules]
        generated = monitor.probe_context.stats.probes_generated
        # Overlaps nothing: a different exact destination.
        disjoint = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=0x0B000000),
            priority=60,
            actions=output(1),
        )
        monitor.observe_flowmod(disjoint)
        for rule, before in zip(rules, cached):
            assert monitor.probe_for_rule(rule) is before
        stats = monitor.probe_context.stats
        # The disjoint FlowMod triggered zero SAT work: the new rule's
        # own probe aside, nothing was invalidated or regenerated.
        assert stats.probes_generated == generated
        assert stats.invalidations == 0
        assert stats.cache_hits >= len(rules)

    def test_intersecting_flowmod_revalidates_instead_of_resolving(self):
        """A churned neighbour that leaves a cached probe packet usable
        must be served by cheap revalidation, not a fresh SAT solve."""
        sim, net, system, rules = star_setup(num_rules=2)
        monitor = system.monitor("hub")
        monitor.probe_for_rule(rules[0])
        generated = monitor.probe_context.stats.probes_generated
        # Lower-priority rule overlapping rule 0 only in match space;
        # the existing probe header still hits rule 0 first.
        shadowed = FlowMod(
            command=FlowModCommand.ADD,
            match=rules[0].match,
            priority=5,
            actions=output(2),
        )
        monitor.observe_flowmod(shadowed)
        refreshed = monitor.probe_for_rule(rules[0])
        stats = monitor.probe_context.stats
        assert refreshed.ok
        assert stats.revalidations == 1
        assert stats.probes_generated == generated  # no new solve


class TestSteadyState:
    def test_healthy_rules_confirmed(self):
        sim, net, system, _ = star_setup(num_rules=12)
        system.monitor("hub").start_steady_state()
        sim.run_for(0.5)
        monitor = system.monitor("hub")
        assert monitor.probes_sent > 0
        assert monitor.probes_confirmed > 0
        assert monitor.alarms == []
        assert monitor.probes_timed_out == 0

    def test_failed_rule_alarms(self):
        sim, net, system, rules = star_setup(num_rules=12)
        system.monitor("hub").start_steady_state()
        sim.run_for(0.2)
        net.switch("hub").fail_rule_in_dataplane(rules[5])
        failure_time = sim.now
        sim.run_for(1.0)
        alarms = system.monitor("hub").alarms
        assert alarms
        assert alarms[0].rule.cookie == rules[5].cookie
        # Detection within cycle time (12 rules / 500 per s) + timeout.
        assert alarms[0].time - failure_time < 0.5

    def test_misbehaving_rule_alarms(self):
        sim, net, system, rules = star_setup(num_rules=8)
        system.monitor("hub").start_steady_state()
        sim.run_for(0.2)
        # Corrupt: rule forwards to the wrong leaf.
        wrong_port = net.port_toward["hub"]["leaf3"]
        target = rules[0]
        if target.forwarding_set() == {wrong_port}:
            wrong_port = net.port_toward["hub"]["leaf2"]
        net.switch("hub").corrupt_rule_in_dataplane(target, output(wrong_port))
        sim.run_for(1.0)
        alarms = system.monitor("hub").alarms
        assert alarms
        assert alarms[0].rule.cookie == target.cookie
        assert alarms[0].kind == "misbehaving"

    def test_cycle_skips_catch_rules(self):
        sim, net, system, _ = star_setup(num_rules=4)
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        from repro.core.catching import CATCH_PRIORITY

        assert len(monitor.scheduler) == 4
        for key in monitor.scheduler.keys():
            assert key[0] != CATCH_PRIORITY

    def test_stop_steady_state(self):
        sim, net, system, _ = star_setup(num_rules=6)
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        sim.run_for(0.2)
        monitor.stop_steady_state()
        sent = monitor.probes_sent
        sim.run_for(0.5)
        assert monitor.probes_sent == sent

    def test_probe_rate_respected(self):
        sim, net, system, _ = star_setup(num_rules=12, probe_rate=100.0)
        system.monitor("hub").start_steady_state()
        sim.run_for(1.0)
        monitor = system.monitor("hub")
        # <= rate * time (+retries which only happen on failures).
        assert monitor.probes_sent <= 110

    def test_negative_probe_for_drop_rule(self):
        sim, net, system, rules = star_setup(num_rules=4)
        drop_rule = Rule(
            priority=200, match=Match.build(nw_dst=0x0A0000FF), actions=drop()
        )
        system.preinstall_production_rule("hub", drop_rule)
        monitor = system.monitor("hub")
        result = monitor.probe_for_rule(drop_rule)
        # Drop over forwarding-free table region: absent -> miss-drop,
        # so unmonitorable... unless a default exists.  Install default.
        default = Rule(priority=1, match=Match.wildcard(), actions=output(
            net.port_toward["hub"]["leaf0"]))
        system.preinstall_production_rule("hub", default)
        result = monitor.probe_for_rule(drop_rule)
        assert result.ok
        assert not result.expects_return()
        monitor.start_steady_state()
        sim.run_for(1.0)
        # Healthy drop rule: silence is success, no alarms for it.
        assert all(a.rule.cookie != drop_rule.cookie for a in monitor.alarms)


class TestUnmonitorableHandling:
    def test_shadowed_rule_skipped_not_alarmed(self):
        sim, net, system, rules = star_setup(num_rules=2)
        shadowed = Rule(
            priority=10,  # below rules[0] (100), same match
            match=rules[0].match,
            actions=output(net.port_toward["hub"]["leaf1"]),
        )
        system.preinstall_production_rule("hub", shadowed)
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        sim.run_for(0.5)
        assert monitor.rules_unmonitorable > 0
        assert all(a.rule.cookie != shadowed.cookie for a in monitor.alarms)
