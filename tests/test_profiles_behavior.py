"""Tests for switch profiles and behaviour models."""

import pytest

from repro.openflow.messages import next_xid
from repro.sim.random import DeterministicRandom
from repro.switches.behavior import (
    FaithfulBehavior,
    PrematureAckBehavior,
    ReorderingBehavior,
    behavior_for,
)
from repro.switches.profiles import (
    ALL_PROFILES,
    DELL_8132F,
    DELL_S4810,
    DELL_S4810_SAME_PRIO,
    HP_5406ZL,
    IDEAL,
    OVS,
    PICA8,
)


class TestProfiles:
    def test_paper_packet_rates(self):
        # §8.3.1 measurements are calibration constants of the profiles.
        assert HP_5406ZL.packetout_rate == 7006
        assert HP_5406ZL.packetin_rate == 5531
        assert DELL_S4810.packetout_rate == 850
        assert DELL_S4810.packetin_rate == 401
        assert DELL_8132F.packetout_rate == 9128
        assert DELL_8132F.packetin_rate == 1105

    def test_costs_are_inverse_rates(self):
        for profile in ALL_PROFILES:
            assert profile.flowmod_cost == pytest.approx(
                1.0 / profile.flowmod_rate
            )
            assert profile.packetout_cost == pytest.approx(
                1.0 / profile.packetout_rate
            )
            assert profile.barrier_cost < profile.flowmod_cost

    def test_misbehaviour_flags(self):
        assert HP_5406ZL.premature_ack and not HP_5406ZL.reorders
        assert PICA8.premature_ack and PICA8.reorders
        assert not IDEAL.premature_ack and not IDEAL.reorders
        assert not OVS.premature_ack

    def test_equal_priority_s4810_has_higher_baseline(self):
        # The "**" configuration's whole point: higher FlowMod rate.
        assert DELL_S4810_SAME_PRIO.flowmod_rate > 5 * DELL_S4810.flowmod_rate

    def test_profiles_frozen(self):
        with pytest.raises(Exception):
            HP_5406ZL.flowmod_rate = 1.0


class TestBehaviors:
    def rng(self):
        return DeterministicRandom(1)

    def test_faithful_semantics(self):
        behavior = FaithfulBehavior(IDEAL, self.rng())
        assert behavior.barrier_waits_for_dataplane()
        assert behavior.preserves_order()

    def test_premature_semantics(self):
        behavior = PrematureAckBehavior(HP_5406ZL, self.rng())
        assert not behavior.barrier_waits_for_dataplane()
        assert behavior.preserves_order()

    def test_reordering_semantics(self):
        behavior = ReorderingBehavior(PICA8, self.rng())
        assert not behavior.barrier_waits_for_dataplane()
        assert not behavior.preserves_order()

    def test_install_delay_positive_and_jittered(self):
        behavior = FaithfulBehavior(HP_5406ZL, self.rng())
        delays = [behavior.install_delay() for _ in range(100)]
        assert all(d >= 0 for d in delays)
        assert len(set(delays)) > 50  # actually jittered

    def test_reordering_has_heavy_tail(self):
        behavior = ReorderingBehavior(PICA8, self.rng())
        delays = [behavior.install_delay() for _ in range(500)]
        base = PICA8.install_latency * (1 + PICA8.install_jitter)
        tail = [d for d in delays if d > base]
        # Roughly TAIL_PROBABILITY of installs land in the long tail.
        assert 0.05 < len(tail) / len(delays) < 0.4

    def test_factory_dispatch(self):
        rng = self.rng()
        assert type(behavior_for(PICA8, rng)) is ReorderingBehavior
        assert type(behavior_for(HP_5406ZL, rng)) is PrematureAckBehavior
        assert type(behavior_for(OVS, rng)) is FaithfulBehavior


class TestXids:
    def test_xids_monotonic_unique(self):
        values = [next_xid() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100
