"""Benchmark: churn throughput scaling across shard workers.

The sharded runtime's reason to exist: a 64-switch fleet under rule
churn, run in-process (``workers=1``) and sharded across 2 and 4
worker processes.  The topology is eight 8-switch islands — a pure
partition under the ``locality`` policy, so the sharded arms run
barrier-free and every arm must produce the *same* confirmed
operations and a byte-identical alarm timeline (there are no failures,
so the timelines are trivially empty — probes and confirmations are
the load).

Throughput = confirmed churn operations / wall-clock of the run phase
(:attr:`ScenarioResult.timings`; deployment build time is excluded on
every arm, so the comparison isolates the event loop).

Writes ``BENCH_shard.json``.  The gate is CPU-adaptive: on runners
with >= 4 usable cores (the CI machine), ``workers=4`` must clear
**2.5x** the in-process throughput; on smaller machines (e.g. a 1-core
dev container, where extra processes only time-slice) the gate only
asserts the sharded runtime is not pathologically slower than
in-process (>= 0.30x).

Topology size is pinned at 64 switches regardless of
``REPRO_BENCH_SCALE`` — the speedup shape is the reproduction target
and it depends on per-shard load balance; scale stretches the churn
rate and duration instead.
"""

from __future__ import annotations

import os
from dataclasses import replace

from benchmarks.conftest import print_header, write_bench_artifact
from repro.fleet.runner import ScenarioSpec, run_scenario
from repro.fleet.workloads import RuleChurn

SWITCHES = 64  # eight islands of eight — pinned, see module docstring
WORKER_ARMS = (1, 2, 4)
SPEEDUP_GATE = 2.5  # workers=4 vs workers=1, with >= 4 cores
OVERHEAD_FLOOR = 0.30  # workers=4 vs workers=1, starved of cores


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec(scale: float, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        topology="islands",
        size=SWITCHES,
        duration=max(1.0, 1.0 * scale),
        seed=seed,
        rules_per_switch=6,
        probe_rate=100.0,
        workloads=(RuleChurn(rate=200.0 * scale),),
    )


def test_shard_scaling(scale: float, seed: int) -> None:
    spec = _spec(scale, seed)
    arms: dict[int, dict] = {}
    baseline_timeline = None
    baseline_confirmed = None
    for workers in WORKER_ARMS:
        result = run_scenario(replace(spec, workers=workers))
        confirmed = result.metrics.updates_confirmed
        seconds = result.timings["run_seconds"]
        arms[workers] = {
            "confirmed_ops": confirmed,
            "run_seconds": seconds,
            "ops_per_second": confirmed / seconds if seconds else 0.0,
            "barriers": result.metrics.barriers,
            "cut_links": result.metrics.cut_links,
        }
        if workers == 1:
            baseline_timeline = result.metrics.alarm_timeline
            baseline_confirmed = confirmed
        else:
            # Work equivalence: sharding changes who executes, never
            # what executes.
            assert result.metrics.alarm_timeline == baseline_timeline
            assert confirmed == baseline_confirmed
            assert result.metrics.cut_links == 0
            assert result.metrics.barriers == 0
        assert confirmed > 0

    cores = _usable_cores()
    speedup = {
        workers: (
            arms[workers]["ops_per_second"] / arms[1]["ops_per_second"]
        )
        for workers in WORKER_ARMS
    }

    print_header(
        f"Shard scaling: {SWITCHES}-switch fleet, "
        f"{spec.workloads[0].rate:.0f} churn ops/s, {cores} usable cores"
    )
    print(f"{'workers':>8} {'ops':>8} {'seconds':>9} "
          f"{'ops/s':>10} {'speedup':>8}")
    for workers in WORKER_ARMS:
        arm = arms[workers]
        print(
            f"{workers:>8} {arm['confirmed_ops']:>8} "
            f"{arm['run_seconds']:>9.3f} {arm['ops_per_second']:>10.0f} "
            f"{speedup[workers]:>8.2f}"
        )

    gated = cores >= max(WORKER_ARMS)
    write_bench_artifact(
        "shard",
        {
            "bench": "shard_scaling",
            "switches": SWITCHES,
            "usable_cores": cores,
            "arms": {str(w): arms[w] for w in WORKER_ARMS},
            "speedup_4x": speedup[4],
            "gate": SPEEDUP_GATE if gated else OVERHEAD_FLOOR,
            "gated_for_speedup": gated,
        },
    )

    if gated:
        assert speedup[4] >= SPEEDUP_GATE, (
            f"sharded runtime too slow: workers=4 at {speedup[4]:.2f}x "
            f"workers=1 (gate {SPEEDUP_GATE}x on {cores} cores)"
        )
    else:
        # Not enough cores for parallelism to show; only catch the
        # runtime being pathologically slower than in-process.
        assert speedup[4] >= OVERHEAD_FLOOR, (
            f"sharded runtime overhead too high: workers=4 at "
            f"{speedup[4]:.2f}x workers=1 on {cores} core(s)"
        )
