"""The fleet runtime: spec validation, determinism, end-to-end detection."""

import pytest

from repro.fleet import (
    AclTables,
    BackgroundTraffic,
    FlowModBlackhole,
    LinkFailure,
    PrioritySwap,
    RuleChurn,
    RuleCorruption,
    RuleDrop,
    ScenarioError,
    ScenarioSpec,
    run_scenario,
)


class TestScenarioSpecValidation:
    def test_default_spec_is_valid(self):
        ScenarioSpec().validate()

    def test_unknown_topology(self):
        with pytest.raises(ScenarioError, match="topology"):
            ScenarioSpec(topology="torus").validate()

    def test_unknown_profile(self):
        with pytest.raises(ScenarioError, match="profile"):
            ScenarioSpec(profile="cisco").validate()

    def test_unknown_algorithm(self):
        with pytest.raises(ScenarioError, match="algorithm"):
            ScenarioSpec(algorithm="quantum").validate()

    def test_bad_strategy(self):
        with pytest.raises(ScenarioError, match="strategy"):
            ScenarioSpec(strategy=3).validate()

    def test_nonpositive_duration(self):
        with pytest.raises(ScenarioError, match="duration"):
            ScenarioSpec(duration=0.0).validate()

    def test_negative_rules(self):
        with pytest.raises(ScenarioError, match="rules_per_switch"):
            ScenarioSpec(rules_per_switch=-1).validate()

    def test_unbuildable_topology_size(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(topology="ring", size=2).validate()

    def test_failure_after_scenario_end(self):
        spec = ScenarioSpec(
            duration=1.0, failures=(RuleDrop(at=2.0, node="sw0"),)
        )
        with pytest.raises(ScenarioError, match="outside"):
            spec.validate()

    def test_failure_missing_node(self):
        # The None defaults on failure specs exist only for dataclass
        # inheritance; a spec without its switch must not validate.
        spec = ScenarioSpec(failures=(RuleDrop(at=0.5),))
        with pytest.raises(ScenarioError, match="missing"):
            spec.validate()

    def test_failure_on_unknown_switch(self):
        spec = ScenarioSpec(
            topology="ring",
            size=4,
            failures=(RuleDrop(at=0.5, node="sw99"),),
        )
        with pytest.raises(ScenarioError, match="unknown switch"):
            spec.validate()

    def test_link_failure_endpoints_checked(self):
        spec = ScenarioSpec(
            topology="ring",
            size=4,
            failures=(LinkFailure(at=0.5, u="sw0", v="nope"),),
        )
        with pytest.raises(ScenarioError, match="unknown switch"):
            spec.validate()


def _ring4_spec(**overrides):
    defaults = dict(
        topology="ring",
        size=4,
        duration=1.5,
        seed=11,
        rules_per_switch=8,
        dynamic=False,
        failures=(RuleDrop(at=0.4, node="sw1", rule_index=3),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestDeterminism:
    def test_same_seed_same_alarm_timeline(self):
        spec = _ring4_spec(
            dynamic=True,
            workloads=(RuleChurn(rate=25.0),),
            failures=(
                RuleDrop(at=0.4, node="sw1", rule_index=None),
                RuleCorruption(at=0.7, node="sw3", rule_index=None),
            ),
        )
        first = run_scenario(spec)
        # Workload state (churn records, RNG stream) resets per run, so
        # the very same spec object must reproduce the same scenario.
        second = run_scenario(spec)
        assert first.metrics.alarm_timeline == second.metrics.alarm_timeline
        assert first.metrics.alarm_timeline  # non-vacuous
        assert [d.latency for d in first.metrics.detections] == [
            d.latency for d in second.metrics.detections
        ]

    def test_different_seed_different_churn_schedule(self):
        # The Poisson churn arrivals are drawn from the deployment's
        # seeded RNG: a different seed must produce a different stream.
        churn_a = RuleChurn(rate=40.0)
        run_scenario(
            _ring4_spec(
                seed=11, dynamic=True, failures=(), workloads=(churn_a,)
            )
        )
        churn_b = RuleChurn(rate=40.0)
        run_scenario(
            _ring4_spec(
                seed=12, dynamic=True, failures=(), workloads=(churn_b,)
            )
        )
        assert [r.sent_at for r in churn_a.records] != [
            r.sent_at for r in churn_b.records
        ]


class TestRingIntegration:
    def test_single_rule_drop_detected_once_within_timeout(self):
        spec = _ring4_spec()
        result = run_scenario(spec)
        metrics = result.metrics

        (detection,) = metrics.detections
        assert detection.detected
        assert detection.detected_on == "sw1"
        assert detection.alarm_kind == "missing"
        # One cycle (8 rules / 500 per s) + probe timeout + slack.
        cycle = spec.rules_per_switch / spec.probe_rate
        assert detection.latency < cycle + 2 * spec.probe_timeout

        # Exactly one detection record, and no alarms anywhere else.
        assert not metrics.false_alarms
        for sw in metrics.per_switch:
            if sw.node != "sw1":
                assert sw.alarms == 0

    def test_healthy_fleet_raises_no_alarms(self):
        result = run_scenario(_ring4_spec(failures=()))
        assert not result.metrics.detections
        assert not result.metrics.false_alarms
        assert result.metrics.alarm_timeline == []
        assert result.metrics.probes_confirmed > 0

    def test_churn_drives_the_incremental_engine(self):
        """Fleet churn must exercise the delta API end-to-end: rules
        added/removed through the context, probes regenerated
        incrementally, and the steady-state cycle served from cache."""
        churn = RuleChurn(rate=60.0)
        result = run_scenario(
            _ring4_spec(
                dynamic=True, duration=2.0, failures=(), workloads=(churn,)
            )
        )
        stats = result.deployment.probegen_stats()
        assert len(churn.records) > 10
        # Churn FlowMods flowed through ProbeGenContext.apply_flowmod.
        assert stats.rules_added > 0
        assert stats.invalidations > 0
        # New/changed rules forced real incremental solves...
        assert stats.probes_generated > 0
        # ...while the steady-state cycle re-used cached probes.
        assert stats.cache_hits > stats.probes_generated
        # And the fleet metrics surface the same counters per switch.
        assert result.metrics.probes_generated == stats.probes_generated
        assert result.metrics.probe_cache_hits == stats.cache_hits

    def test_flowmod_blackhole_detected(self):
        spec = _ring4_spec(
            dynamic=True,
            duration=3.0,
            update_deadline=0.5,
            failures=(FlowModBlackhole(at=0.3, node="sw2"),),
        )
        result = run_scenario(spec)
        (detection,) = result.metrics.detections
        assert detection.detected
        assert detection.detected_on == "sw2"
        # The switch accepted but never applied the rule: the dynamic
        # monitor gives up on the unconfirmable update...
        assert result.metrics.updates_given_up >= 1
        # ...and the steady-state cycle then alarms on the ghost rule.
        assert detection.latency > spec.update_deadline
        assert not result.metrics.false_alarms
        assert result.deployment.switch("sw2").stats.installs_blackholed == 1

    def test_flowmod_blackhole_under_churn_hits_its_own_flowmod(self):
        # The blackhole must target the injected FlowMod, not whichever
        # churn FlowMod happens to reach the data plane next.
        spec = _ring4_spec(
            dynamic=True,
            duration=3.0,
            update_deadline=0.5,
            seed=3,
            workloads=(RuleChurn(rate=200.0),),
            failures=(FlowModBlackhole(at=0.3, node="sw2"),),
        )
        result = run_scenario(spec)
        assert result.metrics.all_detected
        assert not result.metrics.false_alarms
        assert result.deployment.switch("sw2").stats.installs_blackholed == 1

    def test_impossible_injection_recorded_not_raised(self):
        # Endpoint of a linear topology has a single switch-facing
        # port: corruption has no wrong port to rewire to.  The run
        # must complete, flagging the injection instead of crashing.
        spec = ScenarioSpec(
            topology="linear",
            size=3,
            duration=0.5,
            seed=5,
            rules_per_switch=4,
            dynamic=False,
            failures=(RuleCorruption(at=0.2, node="sw0", rule_index=0),),
        )
        result = run_scenario(spec)
        (detection,) = result.metrics.detections
        assert not detection.detected
        assert detection.injection.error is not None
        assert "no other port" in detection.injection.error
        assert not result.metrics.all_detected

    def test_priority_swap_detected(self):
        result = run_scenario(
            _ring4_spec(failures=(PrioritySwap(at=0.4, node="sw0"),))
        )
        (detection,) = result.metrics.detections
        assert detection.detected
        assert detection.alarm_kind == "misbehaving"
        assert not result.metrics.false_alarms

    def test_churn_confirmations_recorded(self):
        churn = RuleChurn(rate=40.0, start=0.05)
        result = run_scenario(
            _ring4_spec(dynamic=True, failures=(), workloads=(churn,))
        )
        latencies = churn.confirmation_latencies()
        assert latencies
        assert result.metrics.confirmation_latency is not None
        assert result.metrics.confirmation_latency.count == len(latencies)
        assert all(lat >= 0 for lat in latencies)

    def test_background_traffic_delivered_under_monitoring(self):
        traffic = BackgroundTraffic(flows=2, rate=50.0)
        result = run_scenario(
            _ring4_spec(failures=(), workloads=(traffic,))
        )
        assert traffic.packets_sent() > 0
        # The monitored fabric still forwards production traffic.
        assert traffic.packets_delivered() > 0.9 * traffic.packets_sent()
        assert not result.metrics.false_alarms

    def test_acl_tables_do_not_false_alarm(self):
        result = run_scenario(
            _ring4_spec(
                failures=(),
                workloads=(AclTables(num_switches=2, rules_per_table=15),),
            )
        )
        assert not result.metrics.false_alarms
        # ACL rules were actually installed on the first two switches.
        assert len(result.deployment.production_rules["sw0"]) > 8


class TestLargerTopology:
    def test_ring12_multi_failure_scenario(self):
        """The acceptance scenario: >= 12 switches, every injected
        failure detected, healthy switches silent."""
        spec = ScenarioSpec(
            topology="ring",
            size=12,
            duration=2.5,
            seed=2015,
            rules_per_switch=10,
            workloads=(RuleChurn(rate=20.0),),
            failures=(
                RuleDrop(at=0.5, node="sw2", rule_index=1),
                RuleCorruption(at=1.0, node="sw8", rule_index=4),
            ),
        )
        result = run_scenario(spec)
        metrics = result.metrics
        assert len(metrics.per_switch) == 12
        assert metrics.all_detected
        assert not metrics.false_alarms
        healthy = {"sw2", "sw8"}
        for sw in metrics.per_switch:
            if sw.node not in healthy:
                assert sw.alarms == 0
            assert sw.probes_sent > 0


class TestFleetRededupe:
    """Re-convergence after forks, driven by the deployment's
    churn-quiescence tick (ROADMAP "re-convergence after forks")."""

    def test_reversed_private_churn_remerges_on_quiescence(self):
        from repro.fleet.deployment import FleetDeployment
        from repro.openflow.actions import output
        from repro.openflow.match import Match
        from repro.openflow.rule import Rule
        from repro.topology.generators import ring

        deployment = FleetDeployment(
            ring(4), dynamic=False, seed=7, rededupe_interval=0.2
        )
        registry = deployment.shared_contexts
        assert registry is not None
        for node in deployment.nodes:
            deployment.install_production_rule(
                node,
                Rule(
                    priority=100,
                    match=Match.build(nw_dst=0x0A000001),
                    actions=output(1),
                ),
            )
        shared_nodes = [
            node
            for node in deployment.nodes
            if deployment.monitor(node).probe_context.is_shared
        ]
        assert len(shared_nodes) >= 2
        deployment.start_monitoring()
        deployment.run(0.3)

        # One switch receives a private rule: its siblings' steady-state
        # probing resolves the divergence into a copy-on-churn fork.
        victim = shared_nodes[0]
        context = deployment.monitor(victim).probe_context
        private = Rule(
            priority=90,
            match=Match.build(nw_dst=0xC0A80101),
            actions=output(1),
        )
        context.add_rule(private)
        deployment.run(0.4)
        assert registry.stats.contexts_forked >= 1
        assert context.forked

        # The private rule is withdrawn: the table converges back, and
        # the next quiescent tick re-merges the forked context.
        context.remove_rule(private)
        deployment.run(1.0)
        assert registry.stats.contexts_remerged >= 1
        assert not context.forked
        assert deployment.monitor(victim).probe_context.is_shared
        # Metrics + report surface the re-merge.
        from repro.fleet.metrics import collect_fleet_metrics
        from repro.fleet.report import format_fleet_report

        metrics = collect_fleet_metrics(deployment)
        assert metrics.contexts_remerged >= 1
        assert "re-merged" in format_fleet_report(metrics)
