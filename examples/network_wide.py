#!/usr/bin/env python3
"""Network-wide monitoring (§6): plan, deploy, inject, detect, report.

Part 1 computes catching plans for several topologies and shows how
vertex coloring collapses the number of reserved header values
(= catching rules per switch) compared to one-identifier-per-switch.

Part 2 *runs* the plan: a 12-switch ring deployed through
``repro.fleet`` — one Monitor per switch on a shared sim kernel, rule
churn confirmed by Monocle acks, and three injected failures (a silent
rule drop, a corrupted forwarding rule, and a link failure) that the
fleet must detect with no false alarms.  Deterministic under the fixed
seed.

Run:  python examples/network_wide.py
"""

from repro.analysis import format_table
from repro.core.catching import ColoringAlgorithm, plan_catching_rules
from repro.fleet import (
    LinkFailure,
    RuleChurn,
    RuleCorruption,
    RuleDrop,
    ScenarioSpec,
    run_scenario,
)
from repro.topology.corpus import topology_zoo_like_corpus
from repro.topology.generators import fat_tree, ring, star, triangle

SEED = 2015


def show_planning():
    topologies = [
        ("triangle", triangle()),
        ("star-8", star(8)),
        ("ring-12", ring(12)),
        ("fat-tree k=4", fat_tree(4)),
        ("zoo-like #100", topology_zoo_like_corpus()[100]),
        ("zoo-like #250", topology_zoo_like_corpus()[250]),
    ]

    rows = []
    for name, graph in topologies:
        no_coloring = plan_catching_rules(
            graph, strategy=1, algorithm=ColoringAlgorithm.NONE
        )
        strategy1 = plan_catching_rules(
            graph, strategy=1, algorithm=ColoringAlgorithm.EXACT
        )
        strategy2 = plan_catching_rules(
            graph,
            strategy=2,
            algorithm=ColoringAlgorithm.DSATUR,
            base2=0,
        )
        rows.append(
            [
                name,
                graph.number_of_nodes(),
                graph.number_of_edges(),
                no_coloring.num_reserved_values,
                strategy1.num_reserved_values,
                strategy2.num_reserved_values,
            ]
        )

    print(
        format_table(
            ["topology", "switches", "links", "no coloring",
             "strategy 1", "strategy 2"],
            rows,
        )
    )


def run_fleet():
    spec = ScenarioSpec(
        topology="ring",
        size=12,
        profile="ovs",
        duration=3.0,
        seed=SEED,
        rules_per_switch=20,
        workloads=(RuleChurn(rate=30.0),),
        failures=(
            RuleDrop(at=0.75, node="sw3", rule_index=5),
            RuleCorruption(at=1.25, node="sw7", rule_index=2),
            LinkFailure(at=1.75, u="sw10", v="sw11"),
        ),
    )
    result = run_scenario(spec)
    plan = result.deployment.plan
    print(
        f"deployed {spec.topology}-{spec.size}: strategy {plan.strategy}, "
        f"{plan.num_reserved_values} reserved values -> "
        f"{plan.num_reserved_values - 1} catching rules per switch"
    )
    print()
    print(result.report())
    assert result.metrics.all_detected, "an injected failure went undetected"
    assert not result.metrics.false_alarms, "healthy switches raised alarms"


def main():
    print("=== catching-rule planning (coloring in action) ===\n")
    show_planning()
    print("\n=== running the plan: monitored ring-12 fleet ===\n")
    run_fleet()


if __name__ == "__main__":
    main()
