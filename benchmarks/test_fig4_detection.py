"""Figure 4 (scheduling arm): detection latency under churn, by policy.

The paper's dynamic-monitoring insight (§4) is that a rule touched by a
recent FlowMod is the likeliest rule to be wrong in the data plane.
This benchmark turns that into a measured, gated trajectory: a steady
stream of updates hits one monitored switch, some of those updates are
*blackholed* (the control plane acknowledges, the data plane silently
ignores — the paper's §2 failure), and we measure how long each probe
policy takes to raise the alarm:

* **round_robin** — the §3 baseline cycle: the victim is probed when
  the cursor happens to reach it, so detection costs ~uniform(0, cycle)
  on top of the update deadline;
* **churn_first** — the churned rule jumps the queue: the promotion is
  held while the dynamic-mode update probe is still in flight and
  served the moment it gives up, so detection tracks the update
  deadline, not the cycle length;
* **weighted** — churn/update boosts via stride scheduling, an
  intermediate point.

A fourth arm re-runs round_robin with a 4-deep probe window (PR 10's
pipelining): instead of dodging the cycle like churn_first, it makes
the whole cycle ~4x faster, and is gated to beat the W=1 baseline the
same way.

Writes ``BENCH_fig4.json`` and **fails** unless churn_first's median
detection latency is strictly below round_robin's — closing the
"fig4 reports prose-only" ROADMAP item with a machine-readable gate.
Round-robin itself is property-tested byte-identical to the historical
rebuild-per-FlowMod probe order (tests/test_schedule.py), so this
comparison is against *today's* behaviour, not a strawman.

Scale: ``NUM_RULES = 512 * REPRO_BENCH_SCALE`` (floor 96); repetitions
are fixed so the medians compare like with like across scales.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import print_header, write_bench_artifact
from repro.analysis import format_table
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, next_xid
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.topology.generators import star

NUM_RULES = 512
PROBE_RATE = 500.0
TIMEOUT = 0.150
#: Dynamic-mode confirmation deadline: a blackholed update's probe
#: gives up after this long, releasing the rule to the steady cycle.
UPDATE_DEADLINE = 0.25
REPS = 7
#: Healthy background updates sent alongside every blackholed one.
BACKGROUND_MODS = 3

#: (policy, probe_window) arms.  The W=4 round-robin arm is the
#: pipelining axis (PR 10): the cycle itself speeds up ~W, attacking
#: the same ~uniform(0, cycle) term that churn_first sidesteps.
ARMS = (
    ("round_robin", 1),
    ("churn_first", 1),
    ("weighted", 1),
    ("round_robin", 4),
)


def _arm_label(policy: str, window: int) -> str:
    return policy if window == 1 else f"{policy}@W{window}"


class DetectionRig:
    """One monitored star hub under churn, with blackholed updates."""

    def __init__(
        self, policy: str, seed: int, num_rules: int, window: int = 1
    ) -> None:
        self.num_rules = num_rules
        self.sim = Simulator()
        self.net = Network(self.sim, star(4), seed=seed)
        self.system = MonocleSystem(
            self.net,
            config=MonitorConfig(
                probe_rate=PROBE_RATE,
                probe_timeout=TIMEOUT,
                update_deadline=UPDATE_DEADLINE,
                probe_window=window,
            ),
            dynamic=True,
            probe_policy=policy,
        )
        self.rng = DeterministicRandom(seed).fork(0xF164)
        self.rules: list[Rule] = []
        for i in range(num_rules):
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(
                    self.net.port_toward["hub"][f"leaf{i % 4}"]
                ),
            )
            self.system.preinstall_production_rule("hub", rule)
            self.rules.append(rule)
        self.monitor = self.system.monitor("hub")
        self.monitor.start_steady_state()
        self.sim.run_for(0.05)

    def _other_port(self, rule: Rule) -> int:
        # Resolve the rule's *current* actions (an earlier rep may have
        # modified it already) so the update always changes the port.
        live = self.monitor.expected.get(*rule.key())
        assert live is not None
        ports = sorted(self.net.port_toward["hub"].values())
        current = next(iter(live.forwarding_set()))
        return next(p for p in ports if p != current)

    def _modify(self, rule: Rule, blackhole: bool) -> FlowMod:
        mod = FlowMod(
            xid=next_xid(),
            command=FlowModCommand.MODIFY_STRICT,
            match=rule.match,
            priority=rule.priority,
            actions=output(self._other_port(rule)),
        )
        if blackhole:
            self.net.switch("hub").blackhole_flowmod(mod.xid)
        self.system.send_to_switch("hub", mod)
        return mod

    def run_rep(self) -> float:
        """One blackholed update amid healthy churn; returns detection
        latency (update sent -> first alarm on the victim's key)."""
        victims = self.rng.sample(self.rules, 1 + BACKGROUND_MODS)
        victim, background = victims[0], victims[1:]
        alarm_start = len(self.monitor.alarms)
        t_sent = self.sim.now
        self._modify(victim, blackhole=True)
        for rule in background:
            self._modify(rule, blackhole=False)
        victim_key = victim.key()

        detection = None
        deadline = (
            t_sent + UPDATE_DEADLINE + 2 * self.num_rules / PROBE_RATE + 1.0
        )
        while self.sim.now < deadline:
            self.sim.run_for(0.02)
            hits = [
                a.time
                for a in self.monitor.alarms[alarm_start:]
                if a.rule.key() == victim_key
            ]
            if hits:
                detection = hits[0] - t_sent
                break
        assert detection is not None, "blackholed update never detected"

        # Repair: copy the control plane's (new) rule into the data
        # plane, then drain in-flight probes before the next rep.
        switch = self.net.switch("hub")
        current = switch.control_table.get(*victim_key)
        assert current is not None
        switch.dataplane.install(current)
        self.sim.run_for(2 * TIMEOUT)
        return detection


def test_fig4_detection_latency_by_policy(scale, seed):
    num_rules = max(96, int(NUM_RULES * scale))
    cycle_s = num_rules / PROBE_RATE

    results: dict[str, list[float]] = {}
    promotions: dict[str, int] = {}
    for policy, window in ARMS:
        label = _arm_label(policy, window)
        rig = DetectionRig(policy, seed, num_rules, window=window)
        results[label] = [rig.run_rep() for _ in range(REPS)]
        promotions[label] = (
            rig.monitor.scheduler.stats.scheduler_promotions
        )
        # The delta-maintenance invariant holds through real churn.
        assert rig.monitor.scheduler.stats.cycle_rebuilds == 1

    print_header(
        f"Figure 4 (scheduling) — blackholed-update detection latency "
        f"({num_rules} rules, {PROBE_RATE:.0f} probes/s, "
        f"{UPDATE_DEADLINE * 1e3:.0f} ms update deadline, {REPS} reps)"
    )
    rows = []
    table_rows = []
    for policy, window in ARMS:
        label = _arm_label(policy, window)
        latencies = results[label]
        row = {
            "policy": policy,
            "window": window,
            "median_s": round(statistics.median(latencies), 4),
            "min_s": round(min(latencies), 4),
            "max_s": round(max(latencies), 4),
            "scheduler_promotions": promotions[label],
        }
        rows.append(row)
        table_rows.append(
            [
                label,
                f"{row['median_s']:.3f}",
                f"{row['min_s']:.3f}",
                f"{row['max_s']:.3f}",
                row["scheduler_promotions"],
            ]
        )
    print(
        format_table(
            ["policy", "median s", "min s", "max s", "promotions"],
            table_rows,
        )
    )
    print(
        f"\ncycle time {cycle_s:.2f}s: round_robin pays ~uniform(0, "
        "cycle) on top of the update deadline; churn_first tracks the "
        "deadline itself."
    )

    path = write_bench_artifact(
        "fig4",
        {
            "bench": "fig4_detection_latency_by_policy",
            "unit": "seconds_detection_latency",
            "rules": num_rules,
            "probe_rate": PROBE_RATE,
            "update_deadline_s": UPDATE_DEADLINE,
            "reps": REPS,
            "rows": rows,
        },
    )
    print(f"artifact: {path}")

    medians = {
        _arm_label(row["policy"], row["window"]): row["median_s"]
        for row in rows
    }
    # CI gate: the churn-first policy must strictly beat the paper-
    # baseline round-robin cycle on median detection latency.
    assert medians["churn_first"] < medians["round_robin"], (
        f"churn_first median {medians['churn_first']:.3f}s not below "
        f"round_robin median {medians['round_robin']:.3f}s"
    )
    # The promotion machinery actually fired (not a no-op win).
    assert promotions["churn_first"] > 0
    # Pipelining gate: a 4-deep probe window must beat the W=1
    # round-robin cycle the same way (it shrinks the cycle itself).
    assert medians["round_robin@W4"] < medians["round_robin"], (
        f"round_robin@W4 median {medians['round_robin@W4']:.3f}s not "
        f"below round_robin median {medians['round_robin']:.3f}s"
    )
