"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
