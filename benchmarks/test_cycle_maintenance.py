"""Benchmark: incremental probe-cycle maintenance vs rebuild-per-FlowMod.

PR 4 made every overlap/lookup path sublinear; the last O(N)-per-FlowMod
cost in the monitoring pipeline was the probe cycle itself —
``Monitor._rebuild_cycle`` re-walked the whole expected table on every
churn operation.  PR 5 extracted the cycle into
:class:`~repro.core.schedule.ProbeScheduler`, which pays one full build
at construction and O(delta) bisect maintenance per churned rule after
that.

This benchmark measures the per-FlowMod cycle-maintenance cost both
ways on ClassBench-style ACL tables (remove + re-add churn, the same
workload the overlap bench uses):

* **rebuild** — the historical behaviour: apply the table delta, then
  rebuild the key list from a full expected-table iteration;
* **incremental** — apply the same table delta, then feed the scheduler
  the O(delta) add/discard.

Scale: sizes are ``(16384, 65536) * REPRO_BENCH_SCALE`` (0.25 in CI
exercises 4k/16k; the default 1.0 runs the full sweep).

Writes ``BENCH_cycle.json`` and **fails** unless incremental
maintenance is >= 5x faster than rebuild-per-FlowMod on every measured
size — and unless the scheduler's ``cycle_rebuilds`` counter stayed at
1 through the whole churn run (the no-full-iteration invariant).
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header, write_bench_artifact
from repro.core.catching import CATCH_PRIORITY, FILTER_PRIORITY
from repro.core.schedule import ProbeScheduler, RoundRobinPolicy
from repro.datasets import sized_acl_table
from repro.sim.random import DeterministicRandom

SIZES = (16384, 65536)
CHURN_STEPS = 200
GATE_SPEEDUP = 5.0


def _is_infrastructure(rule) -> bool:
    return rule.priority in (CATCH_PRIORITY, FILTER_PRIORITY)


def _rebuild_arm(table, victims) -> float:
    """Per-op µs of the historical apply + full-rebuild loop."""
    start = time.perf_counter()
    for victim in victims:
        table.remove(victim)
        _keys = [
            rule.key() for rule in table if not _is_infrastructure(rule)
        ]
        table.install(victim)
        _keys = [
            rule.key() for rule in table if not _is_infrastructure(rule)
        ]
    return 1e6 * (time.perf_counter() - start) / (2 * len(victims))


def _incremental_arm(table, scheduler, victims) -> float:
    """Per-op µs of the same churn through the delta-maintained cycle."""
    start = time.perf_counter()
    for victim in victims:
        table.remove(victim)
        scheduler.discard(victim.key())
        table.install(victim)
        scheduler.add(victim)
    return 1e6 * (time.perf_counter() - start) / (2 * len(victims))


def test_cycle_maintenance_incremental_vs_rebuild(scale, seed):
    sizes = [max(2048, int(n * scale)) for n in SIZES]
    rng = DeterministicRandom(seed).fork(0xC1C1E)

    print_header(
        "Incremental cycle maintenance vs rebuild-per-FlowMod "
        "(per churn op, µs)"
    )
    print(
        f"{'rules':>7} {'rebuild us':>11} {'incremental us':>15} "
        f"{'speedup':>8}"
    )

    rows = []
    for num_rules in sizes:
        table = sized_acl_table(num_rules, seed=seed)
        rules = table.rules()
        victims = [
            rules[i]
            for i in rng.sample(
                range(len(rules)), min(CHURN_STEPS, len(rules) // 2)
            )
        ]

        scheduler = ProbeScheduler(
            policy=RoundRobinPolicy(),
            is_infrastructure=_is_infrastructure,
        )
        scheduler.rebuild(table)
        assert scheduler.stats.cycle_rebuilds == 1

        rebuild_us = _rebuild_arm(table, victims)
        incremental_us = _incremental_arm(table, scheduler, victims)

        # The no-full-iteration invariant: all that churn cost zero
        # additional cycle rebuilds, and the delta-maintained key set
        # is exactly what a from-scratch rebuild would produce.
        assert scheduler.stats.cycle_rebuilds == 1
        assert scheduler.keys() == [
            rule.key() for rule in table if not _is_infrastructure(rule)
        ]
        # The cycle still serves probes after the churn.
        assert scheduler.next_rule(table) is not None

        row = {
            "rules": num_rules,
            "churn_ops": 2 * len(victims),
            "rebuild_us_per_op": round(rebuild_us, 2),
            "incremental_us_per_op": round(incremental_us, 2),
            "speedup": (
                round(rebuild_us / incremental_us, 2)
                if incremental_us > 0
                else float("inf")
            ),
            "cycle_rebuilds": scheduler.stats.cycle_rebuilds,
        }
        rows.append(row)
        print(
            f"{row['rules']:>7} {row['rebuild_us_per_op']:>11.1f} "
            f"{row['incremental_us_per_op']:>15.2f} "
            f"{row['speedup']:>7.1f}x"
        )

    path = write_bench_artifact(
        "cycle",
        {
            "bench": "cycle_maintenance_incremental_vs_rebuild",
            "unit": "us_per_churn_op",
            "gate_speedup": GATE_SPEEDUP,
            "rows": rows,
        },
    )
    print(f"\nartifact: {path}")

    # CI gate: delta maintenance must beat rebuild-per-FlowMod by >= 5x
    # at every measured size (the ISSUE gate names >= 16k rules; the
    # smaller CI-scaled sizes clear it by a wide margin too).
    for row in rows:
        assert row["speedup"] >= GATE_SPEEDUP, (
            f"cycle maintenance speedup {row['speedup']:.1f}x below "
            f"{GATE_SPEEDUP}x at {row['rules']} rules"
        )
        assert row["cycle_rebuilds"] == 1
