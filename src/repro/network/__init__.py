"""Network simulation: wiring switches, links, hosts and control channels.

* :mod:`repro.network.link` — point-to-point links with latency and
  failure injection.
* :mod:`repro.network.channel` — OpenFlow control channels (with
  latency), designed so proxies — Monocle — can interpose.
* :mod:`repro.network.host` — end hosts that send and record traffic.
* :mod:`repro.network.network` — builds a full network from a
  :mod:`networkx` topology: switches, links, port maps, hosts.
* :mod:`repro.network.traffic` — constant-rate flow generators used by
  the consistent-update experiments.
* :mod:`repro.network.conditioning` — seed-deterministic channel
  degradation (loss/delay/jitter/duplication/reorder) for chaos
  scenarios.
"""

from repro.network.channel import ControlChannel
from repro.network.conditioning import (
    ChannelConditioner,
    ChannelConditions,
)
from repro.network.host import Host
from repro.network.link import Link
from repro.network.network import Network
from repro.network.traffic import FlowSpec, TrafficGenerator

__all__ = [
    "ChannelConditioner",
    "ChannelConditions",
    "ControlChannel",
    "Host",
    "Link",
    "Network",
    "FlowSpec",
    "TrafficGenerator",
]
