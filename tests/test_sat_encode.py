"""Tests for CNF encoding helpers: Tseitin gates and the ITE chain."""

import itertools

from repro.sat.cnf import CNF
from repro.sat.encode import (
    at_most_one,
    clause_and,
    clause_or,
    constant,
    ite_chain,
    negate_clause,
    negate_conjunction,
    xor_lit,
)
from repro.sat.solver import solve


def models_of(cnf, projection):
    """All satisfying assignments projected onto the given variables."""
    found = set()
    num_vars = cnf.num_vars
    clause_list = list(cnf.clauses())
    for bits in range(1 << num_vars):
        assignment = {
            var: bool(bits >> (var - 1) & 1) for var in range(1, num_vars + 1)
        }
        if all(
            any((lit > 0) == assignment[abs(lit)] for lit in clause)
            for clause in clause_list
        ):
            found.add(tuple(assignment[v] for v in projection))
    return found


class TestClauseAnd:
    def test_and_gate_truth_table(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        s = clause_and(cnf, [a, b])
        # For every total assignment, s must equal a & b.
        for va, vb in itertools.product([False, True], repeat=2):
            trial = cnf.copy()
            trial.add_unit(a if va else -a)
            trial.add_unit(b if vb else -b)
            result = solve(trial)
            assert result.satisfiable
            assert result.assignment[s] == (va and vb)

    def test_empty_and_is_true(self):
        cnf = CNF()
        s = clause_and(cnf, [])
        result = solve(cnf)
        assert result.assignment[s] is True


class TestClauseOr:
    def test_or_gate_truth_table(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        s = clause_or(cnf, [a, -b])
        for va, vb in itertools.product([False, True], repeat=2):
            trial = cnf.copy()
            trial.add_unit(a if va else -a)
            trial.add_unit(b if vb else -b)
            result = solve(trial)
            assert result.satisfiable
            assert result.assignment[s] == (va or not vb)

    def test_empty_or_is_false(self):
        cnf = CNF()
        s = clause_or(cnf, [])
        result = solve(cnf)
        assert result.assignment[s] is False


class TestNegations:
    def test_negate_clause(self):
        assert negate_clause([1, -2, 3]) == [[-1], [2], [-3]]

    def test_negate_conjunction(self):
        assert negate_conjunction([1, -2]) == [-1, 2]


class TestXor:
    def test_xor_truth_table(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        s = xor_lit(cnf, a, b)
        for va, vb in itertools.product([False, True], repeat=2):
            trial = cnf.copy()
            trial.add_unit(a if va else -a)
            trial.add_unit(b if vb else -b)
            result = solve(trial)
            assert result.satisfiable
            assert result.assignment[s] == (va != vb)


class TestConstant:
    def test_constants(self):
        cnf = CNF()
        t = constant(cnf, True)
        f = constant(cnf, False)
        result = solve(cnf)
        assert result.assignment[t] is True
        assert result.assignment[f] is False


class TestAtMostOne:
    def test_blocks_pairs(self):
        cnf = CNF()
        a, b, c = cnf.new_vars(3)
        at_most_one(cnf, [a, b, c])
        projected = models_of(cnf, [a, b, c])
        for model in projected:
            assert sum(model) <= 1


class TestIteChain:
    def evaluate_chain(self, guards_values, else_value):
        """Reference semantics of If(g1,v1, If(g2,v2, ..., else))."""
        for guard, value in guards_values:
            if guard:
                return value
        return else_value

    def test_chain_matches_reference_semantics(self):
        # 2 branches + else: enumerate all inputs.
        for assignment in itertools.product([False, True], repeat=5):
            g1, v1, g2, v2, ev = assignment
            cnf = CNF()
            lits = cnf.new_vars(5)
            s = ite_chain(
                cnf, [(lits[0], lits[1]), (lits[2], lits[3])], lits[4]
            )
            for lit, val in zip(lits, assignment):
                cnf.add_unit(lit if val else -lit)
            result = solve(cnf)
            assert result.satisfiable
            expected = self.evaluate_chain([(g1, v1), (g2, v2)], ev)
            assert result.assignment[s] == expected

    def test_empty_chain_is_else(self):
        cnf = CNF()
        e = cnf.new_var()
        assert ite_chain(cnf, [], e) == e

    def test_long_chain_segmentation(self):
        # 40 branches with max_segment=4 exercises the postfix
        # substitution path; first true guard at position 25.
        cnf = CNF()
        branches = []
        for i in range(40):
            guard = cnf.new_var()
            value = cnf.new_var()
            cnf.add_unit(guard if i == 25 else -guard)
            cnf.add_unit(value if i == 25 else -value)
            branches.append((guard, value))
        else_lit = constant(cnf, False)
        s = ite_chain(cnf, branches, else_lit, max_segment=4)
        cnf.add_unit(s)
        assert solve(cnf).satisfiable

    def test_chain_false_when_selected_value_false(self):
        cnf = CNF()
        guard = constant(cnf, True)
        value = constant(cnf, False)
        s = ite_chain(cnf, [(guard, value)], constant(cnf, True))
        cnf.add_unit(s)
        assert solve(cnf).satisfiable is False


class TestEquisatisfiability:
    def test_tseitin_or_preserves_model_count_on_projection(self):
        # s <-> (a | b): projecting models onto (a, b) with s asserted
        # gives exactly the assignments where a|b holds.
        cnf = CNF()
        a, b = cnf.new_vars(2)
        s = clause_or(cnf, [a, b])
        cnf.add_unit(s)
        projected = models_of(cnf, [a, b])
        assert projected == {(False, True), (True, False), (True, True)}
