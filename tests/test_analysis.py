"""Tests for the analysis helpers."""

import pytest

from repro.analysis import Cdf, format_table, summarize


class TestCdf:
    def test_fraction_at_or_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_or_below(0.5) == 0.0
        assert cdf.fraction_at_or_below(2.0) == 0.5
        assert cdf.fraction_at_or_below(10.0) == 1.0

    def test_percentile(self):
        cdf = Cdf(list(range(101)))
        assert cdf.percentile(0) == 0
        assert cdf.percentile(50) == 50
        assert cdf.percentile(100) == 100
        with pytest.raises(ValueError):
            cdf.percentile(101)

    def test_empty(self):
        cdf = Cdf([])
        assert cdf.fraction_at_or_below(1.0) == 0.0
        assert len(cdf) == 0
        with pytest.raises(ValueError):
            cdf.percentile(50)

    def test_points_monotonic(self):
        cdf = Cdf([5, 1, 4, 2, 3])
        points = cdf.points(num=5)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert "long-name" in lines[3]
