"""Tests for the self-healing shard coordinator: crash/hang detection,
deterministic replay respawn, restart budgets and degraded completion,
plus the ``workers="auto"`` resolution and the chaos CLI parsers."""

import argparse
from dataclasses import replace

import pytest

from repro.fleet.report import format_fleet_report
from repro.fleet.runner import (
    ScenarioError,
    ScenarioSpec,
    _chaos_arg,
    _workers_arg,
    run_scenario,
)
from repro.fleet.failures import RuleDrop
from repro.fleet.shardworker import WorkerCrash, WorkerHang


def _shard_spec(**overrides):
    """A small sharded run with one real fault and a cross-shard cut."""
    spec = ScenarioSpec(
        topology="ring",
        size=8,
        duration=0.8,
        seed=5,
        rules_per_switch=4,
        probe_rate=200.0,
        workers=2,
        worker_timeout=30.0,
        failures=(RuleDrop(at=0.3, node="sw0", rule_index=1),),
    )
    return replace(spec, **overrides)


class TestSelfHealing:
    def test_crash_recovery_replays_to_identical_timeline(self):
        clean = run_scenario(_shard_spec())
        crashed = run_scenario(
            _shard_spec(chaos=(WorkerCrash(shard=0, window=1),))
        )
        assert crashed.restarts == 1
        assert not crashed.degraded
        assert crashed.metrics.worker_restarts == 1
        assert crashed.metrics.shards_failed == 0
        assert crashed.metrics.shard_status == ["restarted x1", "ok"]
        # The respawned worker replayed the shard's command history
        # from its deterministic seed: nothing observable changed.
        assert (
            crashed.metrics.alarm_timeline == clean.metrics.alarm_timeline
        )
        assert crashed.metrics.all_detected

    def test_crash_before_any_window_recovers(self):
        clean = run_scenario(_shard_spec())
        crashed = run_scenario(
            _shard_spec(chaos=(WorkerCrash(shard=1, window=0),))
        )
        assert crashed.restarts == 1
        assert not crashed.degraded
        assert (
            crashed.metrics.alarm_timeline == clean.metrics.alarm_timeline
        )

    def test_hang_detected_and_recovered(self):
        clean = run_scenario(_shard_spec())
        hung = run_scenario(
            _shard_spec(
                chaos=(WorkerHang(shard=0, window=1),),
                worker_timeout=1.5,
            )
        )
        assert hung.restarts >= 1
        assert not hung.degraded
        assert (
            hung.metrics.alarm_timeline == clean.metrics.alarm_timeline
        )

    def test_exhausted_budget_degrades_instead_of_aborting(self):
        # incarnation=None re-kills every respawn; with a budget of 1
        # the shard is marked failed and the survivors finish the run.
        result = run_scenario(
            _shard_spec(
                failures=(RuleDrop(at=0.3, node="sw5", rule_index=1),),
                chaos=(
                    WorkerCrash(shard=0, window=1, incarnation=None),
                ),
                max_worker_restarts=1,
            )
        )
        assert result.degraded
        assert result.restarts == 1
        assert result.metrics.shards_failed == 1
        assert result.metrics.shard_status[0] == "failed"
        # The fault lives on the surviving shard: still detected.
        assert result.metrics.all_detected
        report = format_fleet_report(result.metrics)
        assert "self-healing" in report


class TestChaosValidation:
    def test_chaos_requires_sharded_run(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                topology="ring",
                size=4,
                duration=0.5,
                chaos=(WorkerCrash(shard=0),),
            ).validate()

    def test_unknown_hook_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                topology="ring",
                size=4,
                duration=0.5,
                workers=2,
                chaos=("explode",),
            ).validate()

    def test_negative_shard_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                topology="ring",
                size=4,
                duration=0.5,
                workers=2,
                chaos=(WorkerCrash(shard=-1),),
            ).validate()

    def test_resilience_knob_bounds(self):
        base = dict(topology="ring", size=4, duration=0.5)
        with pytest.raises(ScenarioError):
            ScenarioSpec(**base, alarm_confirmations=0).validate()
        with pytest.raises(ScenarioError):
            ScenarioSpec(**base, quarantine_threshold=-1).validate()
        with pytest.raises(ScenarioError):
            ScenarioSpec(**base, max_worker_restarts=-1).validate()
        with pytest.raises(ScenarioError):
            ScenarioSpec(**base, worker_timeout=0.0).validate()


class TestAutoWorkers:
    def test_auto_resolves_to_affinity_mask(self, monkeypatch):
        import repro.fleet.runner as runner

        monkeypatch.setattr(
            runner.os, "sched_getaffinity", lambda pid: {0, 1, 2}
        )
        spec = ScenarioSpec(
            topology="ring", size=6, duration=0.5, workers="auto"
        )
        spec.validate()
        assert spec.resolved_workers() == 3

    def test_auto_on_single_cpu_runs_in_process(self, monkeypatch):
        import repro.fleet.runner as runner

        monkeypatch.setattr(
            runner.os, "sched_getaffinity", lambda pid: {0}
        )
        result = run_scenario(
            ScenarioSpec(
                topology="ring",
                size=4,
                duration=0.3,
                rules_per_switch=2,
                probe_rate=100.0,
                workers="auto",
            )
        )
        # Resolved to one worker: the in-process path, which keeps the
        # deployment around for inspection.
        assert result.deployment is not None

    def test_explicit_int_workers_unchanged(self):
        spec = ScenarioSpec(
            topology="ring", size=4, duration=0.5, workers=4
        )
        assert spec.resolved_workers() == 4


class TestChaosCli:
    def test_workers_arg(self):
        assert _workers_arg("auto") == "auto"
        assert _workers_arg("4") == 4
        with pytest.raises(argparse.ArgumentTypeError):
            _workers_arg("many")

    def test_chaos_arg_kill_with_window(self):
        hook = _chaos_arg("kill:1@2")
        assert isinstance(hook, WorkerCrash)
        assert hook.shard == 1
        assert hook.window == 2

    def test_chaos_arg_hang_defaults_window(self):
        hook = _chaos_arg("hang:0")
        assert isinstance(hook, WorkerHang)
        assert hook.shard == 0
        assert hook.window == 0

    def test_chaos_arg_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            _chaos_arg("explode:0")
        with pytest.raises(argparse.ArgumentTypeError):
            _chaos_arg("kill:zero")


class TestRandomVictimDeterminism:
    def test_random_victim_identical_across_worker_counts(self):
        # rule_index=None draws the victim from the spec-indexed
        # stream, which depends only on (seed, spec position) — not on
        # which process injects it or what else consumed fleet draws.
        spec = ScenarioSpec(
            topology="ring",
            size=8,
            duration=0.8,
            seed=11,
            rules_per_switch=4,
            probe_rate=200.0,
            failures=(RuleDrop(at=0.3, node="sw1", rule_index=None),),
        )
        solo = run_scenario(spec)
        sharded = run_scenario(replace(spec, workers=2))
        # Cookies are process-local counters, so compare the victim by
        # its injection description (node + match) and by the merged
        # alarm timeline, both of which are worker-count-invariant.
        descriptions = [
            record.injection.description
            for record in (
                solo.metrics.detections + sharded.metrics.detections
            )
        ]
        assert descriptions[0] == descriptions[1]
        assert "drop" in descriptions[0]
        assert (
            solo.metrics.alarm_timeline == sharded.metrics.alarm_timeline
        )
        assert solo.metrics.alarm_timeline
