#!/usr/bin/env python3
"""Network-wide catching-rule planning (§6): coloring in action.

Computes catching plans for several topologies and shows how vertex
coloring collapses the number of reserved header values (= catching
rules per switch) compared to one-identifier-per-switch, for both the
single-field strategy 1 and the two-field strategy 2.

Run:  python examples/network_wide.py
"""

import networkx as nx

from repro.analysis import format_table
from repro.core.catching import ColoringAlgorithm, plan_catching_rules
from repro.topology.corpus import topology_zoo_like_corpus
from repro.topology.generators import fat_tree, ring, star, triangle


def main():
    topologies = [
        ("triangle", triangle()),
        ("star-8", star(8)),
        ("ring-12", ring(12)),
        ("fat-tree k=4", fat_tree(4)),
        ("zoo-like #100", topology_zoo_like_corpus()[100]),
        ("zoo-like #250", topology_zoo_like_corpus()[250]),
    ]

    rows = []
    for name, graph in topologies:
        no_coloring = plan_catching_rules(
            graph, strategy=1, algorithm=ColoringAlgorithm.NONE
        )
        strategy1 = plan_catching_rules(
            graph, strategy=1, algorithm=ColoringAlgorithm.EXACT
        )
        strategy2 = plan_catching_rules(
            graph,
            strategy=2,
            algorithm=ColoringAlgorithm.DSATUR,
            base2=0,
        )
        rows.append(
            [
                name,
                graph.number_of_nodes(),
                graph.number_of_edges(),
                no_coloring.num_reserved_values,
                strategy1.num_reserved_values,
                strategy2.num_reserved_values,
            ]
        )

    print(
        format_table(
            ["topology", "switches", "links", "no coloring",
             "strategy 1", "strategy 2"],
            rows,
        )
    )

    # Show one concrete plan in detail.
    graph = triangle()
    plan = plan_catching_rules(graph, strategy=1)
    print("\nConcrete strategy-1 plan for the triangle:")
    for node in sorted(graph.nodes):
        print(f"  switch {node}: identifier dl_vlan={plan.value1(node):#x}")
        for rule in plan.catching_rules(node):
            print(f"    catch: {rule.match!r} -> controller")
    probe_match = plan.probe_match("s1", "s2")
    print(f"  a probe for s1 must carry {probe_match!r}: it passes s1 "
          "(no catch rule for its own identifier) and is caught by any "
          "neighbor.")


if __name__ == "__main__":
    main()
