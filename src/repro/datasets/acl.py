"""ClassBench-style ACL table generation.

ACLs are first-match rule lists; we map list position to OpenFlow
priority (earlier = higher).  A generated rule matches on a destination
prefix, optionally a source prefix, optionally a protocol, and
optionally a destination port (only with TCP/UDP, keeping rules
well-formed per §5.2); the action is a forward to one of a few ports or
a drop.

Two structural knobs control how many rules end up unmonitorable:

* ``shadow_fraction`` — rules generated strictly inside an earlier
  (higher-priority) rule's match: completely hidden, never probe-able.
* ``redundant_fraction`` — rules whose outcome equals that of the rule
  that would match their traffic anyway: nothing distinguishes them.

The Stanford profile uses more aggressive nesting (a backbone router
mixing forwarding prefixes and ACL entries), the Campus profile is a
flatter permit/deny list — yielding "probes found" ratios in the same
band as the paper's Table 2 (~89% and ~97%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openflow.actions import ActionList, Drop, output
from repro.openflow.fields import IPPROTO_TCP, IPPROTO_UDP
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.sim.random import DeterministicRandom


@dataclass(frozen=True)
class AclProfile:
    """Structural parameters of one synthetic ACL family."""

    name: str
    num_rules: int
    #: Number of distinct /8 networks destinations are drawn from.
    dst_universes: int
    #: Probability a rule constrains the source prefix.
    p_src: float
    #: Probability a rule constrains the IP protocol.
    p_proto: float
    #: Probability a (TCP/UDP) rule constrains the destination port.
    p_port: float
    #: Probability the action is a drop (deny).
    p_drop: float
    #: Fraction of rules nested strictly inside an earlier rule.
    shadow_fraction: float
    #: Fraction of rules duplicating the underlying outcome.
    redundant_fraction: float
    #: Output ports forwarding rules choose from.
    num_ports: int
    #: Whether the table ends with a default (lowest-priority) rule and
    #: whether it drops (deny-all) or forwards.
    default_drop: bool


STANFORD_PROFILE = AclProfile(
    name="Stanford",
    num_rules=2755,
    dst_universes=12,
    p_src=0.35,
    p_proto=0.45,
    p_port=0.55,
    p_drop=0.25,
    shadow_fraction=0.05,
    redundant_fraction=0.04,
    num_ports=8,
    default_drop=False,
)

CAMPUS_PROFILE = AclProfile(
    name="Campus",
    num_rules=10958,
    dst_universes=24,
    p_src=0.55,
    p_proto=0.60,
    p_port=0.60,
    p_drop=0.05,
    shadow_fraction=0.012,
    redundant_fraction=0.012,
    num_ports=4,
    default_drop=True,
)

_COMMON_PORTS = (22, 25, 53, 80, 110, 123, 143, 443, 993, 3306, 5432, 8080)


def _random_prefix(
    rng: DeterministicRandom,
    universe: int,
    min_len: int = 16,
    max_len: int = 32,
) -> tuple[int, int]:
    """A (value, prefix_len) destination prefix inside ``universe``/8."""
    prefix_len = rng.randint(min_len, max_len)
    value = (universe << 24) | rng.getrandbits(24)
    mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
    return value & mask, prefix_len


def _narrow_inside(
    rng: DeterministicRandom, value: int, prefix_len: int
) -> tuple[int, int]:
    """A strictly longer prefix inside the given one."""
    new_len = rng.randint(min(prefix_len + 1, 32), 32)
    extra_bits = new_len - prefix_len
    suffix = rng.getrandbits(extra_bits) << (32 - new_len) if extra_bits else 0
    mask = ((1 << new_len) - 1) << (32 - new_len)
    return (value | suffix) & mask, new_len


def _rule_match(rng: DeterministicRandom, profile: AclProfile) -> Match:
    universe = 10 + rng.randint(0, profile.dst_universes - 1)
    dst_value, dst_len = _random_prefix(rng, universe)
    kwargs: dict = {"dl_type": 0x0800, "nw_dst": (dst_value, dst_len)}
    if rng.random() < profile.p_src:
        src_universe = 10 + rng.randint(0, profile.dst_universes - 1)
        src_value, src_len = _random_prefix(rng, src_universe, min_len=8)
        kwargs["nw_src"] = (src_value, src_len)
    if rng.random() < profile.p_proto:
        proto = IPPROTO_TCP if rng.random() < 0.7 else IPPROTO_UDP
        kwargs["nw_proto"] = proto
        if rng.random() < profile.p_port:
            kwargs["tp_dst"] = rng.choose(_COMMON_PORTS)
    return Match.build(**kwargs)


def _rule_actions(rng: DeterministicRandom, profile: AclProfile) -> ActionList:
    if rng.random() < profile.p_drop:
        return ActionList((Drop(),))
    return output(1 + rng.randint(0, profile.num_ports - 1))


def generate_acl_table(
    profile: AclProfile, seed: int = 0
) -> FlowTable:
    """Generate a synthetic ACL flow table for ``profile``.

    Priorities descend from ``num_rules`` down to 1, with an optional
    default rule at priority 0.
    """
    rng = DeterministicRandom(seed)
    #: (match, actions) in first-match order; priorities assigned below.
    specs: list[tuple[Match, ActionList]] = []

    shadow_count = int(profile.num_rules * profile.shadow_fraction)
    # Each redundant rule is a (specific, covering) pair: two slots.
    redundant_count = int(profile.num_rules * profile.redundant_fraction)
    base_count = max(
        1, profile.num_rules - 1 - shadow_count - 2 * redundant_count
    )

    for _ in range(base_count):
        specs.append((_rule_match(rng, profile), _rule_actions(rng, profile)))

    # Shadowed rules: strictly inside an earlier rule, lower priority.
    for _ in range(shadow_count):
        parent_match, _parent_actions = rng.choose(specs)
        specs.append(
            (_shrink_match(rng, parent_match), _rule_actions(rng, profile))
        )

    # Redundant rules: the specific rule sits above a covering rule with
    # the same outcome, so removing the specific rule is unobservable.
    trailing: list[tuple[Match, ActionList]] = []
    for _ in range(redundant_count):
        covering = _rule_match(rng, profile)
        actions = _rule_actions(rng, profile)
        specs.append((_shrink_match(rng, covering), actions))
        trailing.append((covering, actions))
    specs.extend(trailing)

    specs = specs[: profile.num_rules - 1]

    # Default rule at the bottom.
    if profile.default_drop:
        default_actions: ActionList = ActionList((Drop(),))
    else:
        default_actions = output(1)
    table = FlowTable(check_overlap=False)
    for index, (match, actions) in enumerate(specs):
        table.install(
            Rule(priority=len(specs) - index, match=match, actions=actions)
        )
    table.install(
        Rule(
            priority=0,
            match=Match.build(dl_type=0x0800),
            actions=default_actions,
        )
    )
    return table


def _shrink_match(rng: DeterministicRandom, match: Match) -> Match:
    """A match strictly contained in ``match`` (narrower dst prefix)."""
    from repro.openflow.fields import FieldName
    from repro.openflow.match import FieldMatch

    fields = dict(match.fields)
    dst = fields.get(FieldName.NW_DST)
    if dst is not None:
        prefix_len = bin(dst.mask).count("1")
        base = dst.value
    else:
        prefix_len = 8
        base = 0x0A000000
    value, new_len = _narrow_inside(rng, base, prefix_len)
    field = None
    from repro.openflow.fields import HEADER

    field = HEADER.field(FieldName.NW_DST)
    fields[FieldName.NW_DST] = FieldMatch.prefix(field, value, new_len)
    return Match(fields)


def scaled_profile(base: AclProfile, num_rules: int) -> AclProfile:
    """``base`` resized to ``num_rules`` rules at constant *density*.

    The destination-universe pool grows with the rule count (one extra
    /8 per ~512 rules) so the per-rule overlap set stays roughly
    constant as tables grow — the production-ACL regime the tuple-space
    overlap index targets (sparse overlap at 10k-100k rules), as
    opposed to packing ever more rules into the same few prefixes.
    """
    from dataclasses import replace

    return replace(
        base,
        name=f"{base.name}-{num_rules}",
        num_rules=num_rules,
        dst_universes=max(base.dst_universes, num_rules // 512),
    )


def sized_acl_table(num_rules: int, seed: int = 0) -> FlowTable:
    """A ClassBench-style ACL table with ``num_rules`` rules.

    Stanford-profile structure at constant overlap density (see
    :func:`scaled_profile`); the overlap-index benchmark sweeps this at
    4k/16k/64k rules.
    """
    return generate_acl_table(
        scaled_profile(STANFORD_PROFILE, num_rules), seed=seed
    )


def stanford_table(seed: int = 11) -> FlowTable:
    """The Stanford-like table (2755 rules)."""
    return generate_acl_table(STANFORD_PROFILE, seed=seed)


def campus_table(seed: int = 21) -> FlowTable:
    """The Campus-like table (10958 rules)."""
    return generate_acl_table(CAMPUS_PROFILE, seed=seed)
