"""Tests for the persistent SAT context (repro.sat.incremental).

Covers the three incremental facilities — assumption-based solving,
clause groups with retraction, lemma/heuristic retention across calls —
plus variable recycling and database compaction, cross-checked against
the brute-force reference solver on random formulas.
"""

import random

import pytest

from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import SatSolver


def random_cnf(rng, num_vars, num_clauses, width=3):
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), size)
        cnf.add_clause(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return cnf


class TestAssumptions:
    def test_assumptions_do_not_stick(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver.solve([-1]).satisfiable is True
        assert solver.solve([-2]).satisfiable is True
        # Jointly impossible, but neither call poisoned the other.
        assert solver.solve([-1, -2]).satisfiable is False
        assert solver.solve([]).satisfiable is True

    def test_unsat_under_assumptions_is_not_permanent(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve([-1, -3]).satisfiable is False
        result = solver.solve([])
        assert result.satisfiable is True

    def test_conflicting_assumptions(self):
        solver = IncrementalSolver(num_vars=1)
        assert solver.solve([1, -1]).satisfiable is False
        assert solver.solve([1]).satisfiable is True

    def test_model_respects_assumptions(self):
        solver = IncrementalSolver(num_vars=4)
        solver.add_clause([1, 2, 3, 4])
        result = solver.solve([-1, -2, -3])
        assert result.satisfiable is True
        assert result.assignment[4] is True
        assert result.assignment[1] is False

    def test_matches_brute_force_under_random_assumptions(self):
        rng = random.Random(20150)
        for trial in range(40):
            num_vars = rng.randint(3, 8)
            cnf = random_cnf(rng, num_vars, rng.randint(2, 18))
            solver = IncrementalSolver(num_vars=num_vars)
            for clause in cnf.clauses():
                solver.add_clause(clause)
            for _ in range(4):
                k = rng.randint(0, num_vars)
                assumed = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, num_vars + 1), k)
                ]
                augmented = cnf.copy()
                for lit in assumed:
                    augmented.add_unit(lit)
                expected = brute_force_solve(augmented) is not None
                got = solver.solve(assumed).satisfiable
                assert got == expected, (trial, assumed)


class TestGroups:
    def test_group_binds_only_when_assumed(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        solver.add_clause([-1], group=group)  # x must be false, in-group
        assert solver.solve([1]).satisfiable is True  # group inactive
        assert solver.solve([group, 1]).satisfiable is False
        assert solver.solve([group, -1]).satisfiable is True

    def test_retired_group_never_binds_again(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        solver.add_clause([-1], group=group)
        solver.retire_group(group)
        # Even assuming the dead selector cannot resurrect the clause:
        # its unit -selector contradicts the assumption, nothing more.
        assert solver.solve([1]).satisfiable is True
        assert solver.solve([group]).satisfiable is False  # selector pinned

    def test_add_to_retired_group_rejected(self):
        solver = IncrementalSolver()
        group = solver.new_group()
        solver.retire_group(group)
        with pytest.raises(ValueError):
            solver.add_clause([1], group=group)
        solver.retire_group(group)  # idempotent

    def test_lemmas_from_retired_groups_do_not_leak(self):
        # A sequence of contradictory transient groups must not corrupt
        # the base formula: after each retirement the base stays SAT.
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        for _ in range(10):
            group = solver.new_group()
            solver.add_clause([-1], group=group)
            solver.add_clause([-2], group=group)
            solver.add_clause([3], group=group)
            solver.add_clause([-3], group=group)  # group is self-contradictory
            assert solver.solve([group]).satisfiable is False
            solver.retire_group(group)
            assert solver.solve([]).satisfiable is True

    def test_random_group_churn_matches_brute_force(self):
        rng = random.Random(77)
        base_vars = 6
        base = random_cnf(rng, base_vars, 6)
        solver = IncrementalSolver(num_vars=base_vars)
        for clause in base.clauses():
            solver.add_clause(clause)
        for trial in range(30):
            extra = random_cnf(rng, base_vars, rng.randint(1, 6))
            group = solver.new_group()
            for clause in extra.clauses():
                solver.add_clause(clause, group=group)
            combined = base.copy()
            combined.extend(extra.clauses())
            expected = brute_force_solve(combined) is not None
            assert solver.solve([group]).satisfiable == expected, trial
            solver.retire_group(group)
            assert (
                solver.solve([]).satisfiable
                == (brute_force_solve(base) is not None)
            )


class TestRecyclingAndCompaction:
    def test_group_vars_are_recycled(self):
        solver = IncrementalSolver(num_vars=2)
        group = solver.new_group()
        aux = solver.new_var(group)
        solver.add_clause([1, aux], group=group)
        before = solver.num_vars
        solver.retire_group(group)
        group2 = solver.new_group()  # selector: always fresh
        reused = solver.new_var(group2)
        assert reused == aux
        assert solver.num_vars == before + 1  # only the new selector

    def test_recycled_var_is_unconstrained(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        aux = solver.new_var(group)
        solver.add_clause([aux], group=group)
        solver.add_clause([-1], group=group)
        assert solver.solve([group, 1]).satisfiable is False
        solver.retire_group(group)
        # aux comes back and must be assignable either way.
        fresh = solver.new_var()
        assert fresh == aux
        assert solver.solve([fresh]).satisfiable is True
        assert solver.solve([-fresh]).satisfiable is True

    def test_compaction_preserves_semantics(self):
        rng = random.Random(11)
        base = random_cnf(rng, 6, 10)
        solver = IncrementalSolver(num_vars=6)
        for clause in base.clauses():
            solver.add_clause(clause)
        live = solver.new_group()
        solver.add_clause([1, 2], group=live)
        for _ in range(5):
            dead = solver.new_group()
            solver.add_clause([3, 4], group=dead)
            solver.retire_group(dead)
        before = solver.solve([live]).satisfiable
        solver.compact()
        assert solver.num_dead_clauses == 0
        assert solver.solve([live]).satisfiable == before
        reference = base.copy()
        reference.add_clause([1, 2])
        assert before == (brute_force_solve(reference) is not None)

    def test_auto_compaction_fires(self):
        solver = IncrementalSolver(
            num_vars=2, compaction_floor=10, compaction_ratio=0.5
        )
        solver.add_clause([1, 2])
        for _ in range(20):
            group = solver.new_group()
            solver.add_clause([1], group=group)
            solver.retire_group(group)
        assert solver.stats.compactions >= 1
        assert solver.solve([]).satisfiable is True


class TestLearnedRetention:
    def test_repeated_solves_get_cheaper(self):
        # Pigeonhole-ish hard-ish instance solved twice: the second call
        # must not redo the first call's conflicts from scratch.
        rng = random.Random(5)
        cnf = random_cnf(rng, 12, 50)
        solver = IncrementalSolver(num_vars=12)
        for clause in cnf.clauses():
            solver.add_clause(clause)
        first = solver.solve([])
        second = solver.solve([])
        assert second.satisfiable == first.satisfiable
        assert second.conflicts <= first.conflicts

    def test_incremental_solver_is_reusable_after_sat(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        assert solver.solve([3]).satisfiable is True
        solver.add_clause([-3])  # new permanent knowledge
        assert solver.solve([3]).satisfiable is False
        assert solver.solve([]).satisfiable is True


class TestCoreSolverIncrementalSurface:
    def test_clause_falsified_by_previous_level0_trail(self):
        """Regression: a clause added after a solve call, all of whose
        literals are already false on the permanent level-0 trail, must
        make the formula UNSAT — not be silently ignored because its
        watches never fire."""
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve([]).satisfiable is True  # pins -1, -2 at level 0
        solver.add_clause([1, 2])
        assert solver.solve([]).satisfiable is False

    def test_clause_reduced_to_unit_by_level0_trail(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([-1])
        assert solver.solve([]).satisfiable is True
        solver.add_clause([1, 3])  # reduces to unit [3]
        result = solver.solve([])
        assert result.satisfiable is True
        assert result.assignment[3] is True
        assert solver.solve([-3]).satisfiable is False

    def test_clause_satisfied_by_level0_trail_is_redundant(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1])
        assert solver.solve([]).satisfiable is True
        solver.add_clause([1, 2])  # already satisfied forever
        result = solver.solve([-2])
        assert result.satisfiable is True

    def test_compaction_keeps_model_check_disabled(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver._solver.check_models is False
        solver.compact()
        assert solver._solver.check_models is False

    def test_add_clause_after_solve(self):
        solver = SatSolver(CNF(2))
        solver.add_clause([1, 2])
        assert solver.solve().satisfiable is True
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().satisfiable is False

    def test_permanent_contradiction_sticks(self):
        solver = SatSolver(CNF(1))
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().satisfiable is False
        assert solver.solve().satisfiable is False

    def test_no_learning_mode_with_assumptions(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 3])
        solver = SatSolver(cnf, enable_learning=False)
        assert solver.solve(assumptions=[-1, -3]).satisfiable is False
        assert solver.solve(assumptions=[-1]).satisfiable is True
