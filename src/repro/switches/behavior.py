"""Switch behaviour models: how acknowledgments relate to the data plane.

The paper's central premise is that switches lie: they acknowledge rule
installation before the data plane honours it, and some reorder updates
([16]).  A :class:`Behavior` decides, for each accepted FlowMod, when
the data plane actually changes and when barriers are answered.
"""

from __future__ import annotations

from repro.sim.random import DeterministicRandom
from repro.switches.profiles import SwitchProfile


class Behavior:
    """Base behaviour: how a switch schedules data-plane installs.

    Subclasses override :meth:`install_delay` (extra delay between
    control-plane acceptance and data-plane effect) and
    :meth:`barrier_waits_for_dataplane`.
    """

    def __init__(
        self, profile: SwitchProfile, rng: DeterministicRandom
    ) -> None:
        self.profile = profile
        self.rng = rng

    def install_delay(self) -> float:
        """Seconds between control-plane acceptance and data-plane effect."""
        return self.rng.jittered(
            self.profile.install_latency, self.profile.install_jitter
        )

    def barrier_waits_for_dataplane(self) -> bool:
        """True when BarrierReply implies the data plane is current."""
        return not self.profile.premature_ack

    def preserves_order(self) -> bool:
        """True when data-plane installs happen in FlowMod order."""
        return not self.profile.reorders


class FaithfulBehavior(Behavior):
    """Honest switch: barriers cover the data plane, order preserved."""

    def barrier_waits_for_dataplane(self) -> bool:
        return True

    def preserves_order(self) -> bool:
        return True


class PrematureAckBehavior(Behavior):
    """HP-5406zl-like: processes FlowMods in order but acknowledges
    barriers while data-plane installs are still pending ([16])."""

    def barrier_waits_for_dataplane(self) -> bool:
        return False

    def preserves_order(self) -> bool:
        return True


class ReorderingBehavior(Behavior):
    """Pica8-like: premature barriers *and* out-of-order data-plane
    application, modelled as heavy-tailed per-rule install delays ([16])."""

    #: Fraction of installs hit by a long tail, and its extra delay span.
    TAIL_PROBABILITY = 0.2
    TAIL_EXTRA = 0.25

    def install_delay(self) -> float:
        delay = super().install_delay()
        if self.rng.random() < self.TAIL_PROBABILITY:
            delay += self.rng.uniform(0.0, self.TAIL_EXTRA)
        return delay

    def barrier_waits_for_dataplane(self) -> bool:
        return False

    def preserves_order(self) -> bool:
        return False


def behavior_for(profile: SwitchProfile, rng: DeterministicRandom) -> Behavior:
    """The behaviour class matching a profile's flags."""
    if profile.reorders:
        return ReorderingBehavior(profile, rng)
    if profile.premature_ack:
        return PrematureAckBehavior(profile, rng)
    return FaithfulBehavior(profile, rng)
