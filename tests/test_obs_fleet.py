"""End-to-end observability on a live fleet.

The load-bearing property: the trace is *complete* — detection
latencies reconstructed purely from trace events (``failure.injected``
-> first attributable ``alarm.raised``) must equal the metrics layer's
:class:`~repro.fleet.metrics.DetectionRecord` latencies exactly, on a
fig4-style blackhole scenario with churn.  Plus: observability must
not perturb the simulation, the NullObserver default must stay inert,
and ``repro-fleet --json-out`` must round-trip the report's numbers.
"""

import json
import re

import pytest

from repro.fleet import (
    FlowModBlackhole,
    RuleChurn,
    RuleDrop,
    ScenarioSpec,
    run_scenario,
)
from repro.fleet.metrics import _crosscheck_registry
from repro.fleet.runner import main
from repro.obs import (
    NULL_OBSERVER,
    detection_latencies,
    probe_spans,
    read_jsonl,
)


def _fig4_spec(**overrides):
    """Fig4-style: blackholed FlowMod amid healthy churn, dynamic mode."""
    base = dict(
        topology="ring",
        size=5,
        duration=2.0,
        seed=2015,
        rules_per_switch=10,
        probe_rate=200.0,
        dynamic=True,
        workloads=(RuleChurn(rate=15.0),),
        failures=(
            RuleDrop(at=0.5, node="sw0", rule_index=1),
            FlowModBlackhole(at=0.8, node="sw2"),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    """One observed fig4-style run, trace exported to disk."""
    out = tmp_path_factory.mktemp("obs")
    spec = _fig4_spec(
        trace_out=str(out / "trace.jsonl"),
        trace_chrome=str(out / "trace.json"),
        metrics_out=str(out / "metrics.prom"),
        obs_snapshot_interval=0.25,
    )
    return run_scenario(spec)


class TestTraceMetricsConsistency:
    def test_scenario_detects_everything(self, observed_run):
        assert observed_run.metrics.all_detected
        assert not observed_run.metrics.false_alarms

    def test_trace_detections_equal_metrics_exactly(self, observed_run):
        """Trace-only replay == metrics path, byte for byte."""
        traced = detection_latencies(observed_run.observer.trace)
        records = observed_run.metrics.detections
        assert len(traced) == len(records) == 2
        for trace_det, record in zip(traced, records):
            assert trace_det.kind == record.injection.kind
            assert trace_det.injected_at == record.injection.time
            assert trace_det.detected_at == record.detected_at
            assert trace_det.latency == record.latency
            assert trace_det.detected_on == repr(record.detected_on)
            assert trace_det.alarm_kind == record.alarm_kind

    def test_jsonl_trace_replays_identically(self, observed_run):
        """The exported file carries the same completeness guarantee."""
        events = read_jsonl(observed_run.spec.trace_out)
        from_file = detection_latencies(events)
        in_memory = detection_latencies(observed_run.observer.trace)
        assert [d.latency for d in from_file] == [
            d.latency for d in in_memory
        ]
        assert probe_spans(events).keys() == probe_spans(
            observed_run.observer.trace
        ).keys()

    def test_trace_covers_every_probe(self, observed_run):
        """Span/event counts reconcile with the monitors' own counters."""
        trace = observed_run.observer.trace
        assert trace.dropped == 0, "ring bound must not truncate this run"
        metrics = observed_run.metrics
        sent = trace.events("probe.sent")
        assert len(sent) == metrics.probes_sent
        spans = probe_spans(trace)
        confirmed = sum(
            1 for s in spans.values() if s.confirmed_at is not None
        )
        assert confirmed == metrics.probes_confirmed
        timed_out = sum(
            1 for s in spans.values() if s.timed_out_at is not None
        )
        assert timed_out == sum(
            m.probes_timed_out for m in metrics.per_switch
        )
        # Alarms on probe spans reconcile with the alarm timeline.
        alarmed = sum(1 for s in spans.values() if s.alarm_at is not None)
        assert alarmed == len(metrics.alarm_timeline)

    def test_snapshots_feed_report_timeline(self, observed_run):
        assert len(observed_run.metrics.obs_snapshots) >= 3
        assert "timeline (sim-time windowed rates" in observed_run.report()

    def test_exports_written(self, observed_run):
        spec = observed_run.spec
        assert read_jsonl(spec.trace_out)
        with open(spec.trace_chrome, encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]
        with open(spec.metrics_out, encoding="utf-8") as handle:
            text = handle.read()
        assert "# TYPE monocle_probes_sent_total counter" in text
        assert len(observed_run.exported) == 3

    def test_crosscheck_catches_divergence(self, observed_run):
        """The registry/metrics cross-check is a live tripwire."""
        deployment = observed_run.deployment
        registry = deployment.obs.metrics
        counter = registry.counter(
            "monocle_probes_sent_total",
            node=repr(deployment.nodes[0]),
        )
        counter.inc()  # simulate a double-counted publication site
        with pytest.raises(AssertionError, match="diverged"):
            _crosscheck_registry(
                deployment, observed_run.metrics.per_switch
            )
        counter.value -= 1  # restore for other tests on the fixture


class TestObservabilityIsNonIntrusive:
    def test_traced_run_matches_untraced_run(self):
        """Observability must never perturb the simulation itself."""
        untraced = run_scenario(_fig4_spec())
        traced = run_scenario(_fig4_spec(observe=True))
        assert (
            traced.metrics.alarm_timeline
            == untraced.metrics.alarm_timeline
        )
        assert [m.probes_sent for m in traced.metrics.per_switch] == [
            m.probes_sent for m in untraced.metrics.per_switch
        ]
        assert (
            traced.metrics.detection_latencies
            == untraced.metrics.detection_latencies
        )

    def test_null_observer_default_is_inert(self):
        result = run_scenario(_fig4_spec())
        assert result.observer is NULL_OBSERVER
        assert result.deployment.obs is NULL_OBSERVER
        assert result.metrics.obs_snapshots == []
        assert "timeline" not in result.report()
        assert result.exported == []


class TestJsonOut:
    def test_json_out_round_trips_report_numbers(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        rv = main(
            [
                "--topology", "ring", "--size", "4",
                "--duration", "1.5", "--seed", "2015",
                "--rules", "8", "--probe-rate", "150",
                "--churn", "10", "--drops", "1",
                "--json-out", str(path),
            ]
        )
        assert rv == 0
        report = capsys.readouterr().out
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        aggregates = payload["aggregates"]

        match = re.search(r"aggregate: (\d+) probes .* (\d+) confirmed",
                          report)
        assert match is not None
        assert aggregates["probes_sent"] == int(match.group(1))
        assert aggregates["probes_confirmed"] == int(match.group(2))

        match = re.search(r"detection: (\d+)/(\d+) injected", report)
        assert match is not None
        detected = sum(1 for d in payload["detections"] if d["detected"])
        assert detected == int(match.group(1))
        assert len(payload["detections"]) == int(match.group(2))
        assert aggregates["all_detected"] is True

        match = re.search(
            r"probe generation: (\d+) incremental SAT solves, "
            r"(\d+) cache hits",
            report,
        )
        assert match is not None
        assert aggregates["probes_generated"] == int(match.group(1))
        assert aggregates["probe_cache_hits"] == int(match.group(2))

        # Per-switch rows carry the same counters the table printed.
        for row in payload["per_switch"]:
            assert re.search(
                rf"{re.escape(row['node'])}\s+{row['rules_installed']}"
                rf"\s+{row['probes_sent']}\s+",
                report,
            ), f"per-switch row for {row['node']} diverges from report"

    def test_json_out_matches_metrics_object(self, tmp_path):
        result = run_scenario(_fig4_spec())
        payload = result.metrics.to_json()
        # to_json is JSON-clean as written (no repr fallbacks needed).
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        assert payload["aggregates"]["probes_sent"] == (
            result.metrics.probes_sent
        )
        assert [d["latency"] for d in payload["detections"]] == [
            d.latency for d in result.metrics.detections
        ]
