"""Ablation: Distinguish-constraint CNF encodings.

The paper converts the Distinguish constraint into an if-then-else
chain and cites the quadratic Velev encoding (Appendix B), noting that
long chains should be split by substituting postfixes with fresh
variables.  Because Monocle always *asserts* the chain true, a linear
"asserted chain" encoding is possible — this bench compares the two on
the Campus-like table (whose deeper overlap chains stress the encoding)
and checks they produce identical verdicts.
"""

import random

from repro.analysis import format_table
from repro.core.constraints import DistinguishEncoding
from repro.core.probegen import ProbeGenerator
from repro.datasets import campus_table
from repro.openflow.match import Match

from .conftest import bench_seed, print_header

CATCH = Match.build(dl_vlan=0xF03)
SAMPLE = 30


def run(table, rules, encoding):
    generator = ProbeGenerator(catch_match=CATCH, encoding=encoding)
    times, clauses, verdicts = [], [], []
    for rule in rules:
        result = generator.generate(table, rule)
        times.append(result.generation_time * 1000.0)
        clauses.append(result.cnf_clauses)
        verdicts.append(result.ok)
    return times, clauses, verdicts


def test_ablation_distinguish_encoding(benchmark):
    table = campus_table()
    rng = random.Random(bench_seed())
    rules = rng.sample(table.rules(), SAMPLE)

    results = {}
    for encoding in DistinguishEncoding:
        results[encoding] = run(table, rules, encoding)

    rows = []
    for encoding, (times, clauses, _verdicts) in results.items():
        rows.append(
            [
                encoding.value,
                f"{sum(times) / SAMPLE:.2f}",
                f"{max(times):.2f}",
                f"{sum(clauses) / SAMPLE:.0f}",
            ]
        )
    print_header(
        f"Ablation — Distinguish encoding on Campus ({SAMPLE} probes)"
    )
    print(format_table(["encoding", "avg ms", "max ms", "avg clauses"], rows))

    chain = results[DistinguishEncoding.ASSERTED_CHAIN]
    velev = results[DistinguishEncoding.VELEV_ITE]
    # Identical verdicts: the encodings are equisatisfiable.
    assert chain[2] == velev[2]
    # The asserted chain is never structurally bigger.
    assert sum(chain[1]) <= sum(velev[1])

    benchmark.pedantic(
        lambda: run(table, rules[:8], DistinguishEncoding.ASSERTED_CHAIN),
        rounds=2,
        iterations=1,
    )
