"""Point-to-point links between switch ports (or toward hosts)."""

from __future__ import annotations

from typing import Callable

from repro.sim.kernel import Simulator

#: Default one-way link latency in seconds (datacenter-ish).
DEFAULT_LATENCY = 0.0002


class Link:
    """A bidirectional link with per-direction delivery and failure.

    The link does not know about switches; endpoints are plugged in as
    callables taking raw packet bytes.  :class:`~repro.network.network.
    Network` does the plumbing.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = DEFAULT_LATENCY,
        loss_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.failed = False
        self._a_handler: Callable[[bytes], None] | None = None
        self._b_handler: Callable[[bytes], None] | None = None
        self.delivered = 0
        self.dropped = 0

    def connect(
        self,
        a_handler: Callable[[bytes], None],
        b_handler: Callable[[bytes], None],
    ) -> None:
        """Set the receive handler of each end."""
        self._a_handler = a_handler
        self._b_handler = b_handler

    def send_from_a(self, raw: bytes) -> None:
        """Transmit from endpoint A toward endpoint B."""
        self._transmit(raw, self._b_handler)

    def send_from_b(self, raw: bytes) -> None:
        """Transmit from endpoint B toward endpoint A."""
        self._transmit(raw, self._a_handler)

    def _transmit(
        self, raw: bytes, handler: Callable[[bytes], None] | None
    ) -> None:
        if self.failed or handler is None:
            self.dropped += 1
            return
        self.delivered += 1
        self.sim.schedule(self.latency, lambda: handler(raw))

    def fail(self) -> None:
        """Cut the link: all packets in both directions are lost."""
        self.failed = True

    def restore(self) -> None:
        """Repair the link."""
        self.failed = False
