"""Seed-deterministic control-channel conditioning (the chaos layer).

A :class:`ChannelConditioner` sits inside a
:class:`~repro.network.channel.ControlChannel` and perturbs message
delivery: loss, fixed extra delay, uniform jitter, duplication, and
reordering (an extra delay drawn inside a reorder window, letting a
message overtake its successors).  Every decision is drawn from a
per-direction :class:`~repro.sim.random.DeterministicRandom` stream
forked from the network seed, so a degraded run is a pure function of
its spec + seed — the property all chaos benchmarks gate on.

Conditions stack: failure specs overlay a :class:`ChannelConditions`
per direction and remove it when the degradation window closes.  The
composition of overlays treats losses/duplicates/reorders as
independent events (probabilities combine as ``1 - prod(1 - p_i)``),
delays and jitters add, and reorder windows take the max.

When no overlay is active the conditioner draws **nothing** from its
streams — an unconditioned run is byte-identical to one built without
a conditioner at all.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.sim.random import DeterministicRandom

#: The two control-channel directions (controller->switch, switch->
#: controller); ``"both"`` fans out to the pair.
DIRECTIONS = ("down", "up")


@dataclass(frozen=True)
class ChannelConditions:
    """One overlay of channel degradation knobs.

    Attributes:
        loss: probability in ``[0, 1]`` that a message is dropped.
        delay: fixed extra one-way delay in seconds.
        jitter: extra uniform delay in ``[0, jitter]`` seconds.
        duplicate: probability that a surviving message is delivered
            twice (the copy draws its own delay/jitter).
        reorder: probability that a surviving message is pushed
            ``uniform(0, reorder_window)`` further into the future,
            letting later messages overtake it.
        reorder_window: span in seconds of the reorder push.
    """

    loss: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0

    def validate(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], "
                    f"got {value!r}"
                )
        for name in ("delay", "jitter", "reorder_window"):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(
                    f"{name} must be >= 0, got {value!r}"
                )
        if self.reorder > 0.0 and self.reorder_window <= 0.0:
            raise ValueError(
                "reorder > 0 requires a positive reorder_window"
            )

    @property
    def active(self) -> bool:
        """True when any knob perturbs delivery."""
        return any(
            getattr(self, f.name) != 0.0 for f in fields(self)
        )

    @staticmethod
    def combine(
        overlays: "list[ChannelConditions]",
    ) -> "ChannelConditions":
        """Stack overlays into one effective set of conditions."""
        if len(overlays) == 1:
            return overlays[0]
        keep = 1.0
        no_dup = 1.0
        no_reorder = 1.0
        delay = 0.0
        jitter = 0.0
        window = 0.0
        for overlay in overlays:
            keep *= 1.0 - overlay.loss
            no_dup *= 1.0 - overlay.duplicate
            no_reorder *= 1.0 - overlay.reorder
            delay += overlay.delay
            jitter += overlay.jitter
            window = max(window, overlay.reorder_window)
        return ChannelConditions(
            loss=1.0 - keep,
            delay=delay,
            jitter=jitter,
            duplicate=1.0 - no_dup,
            reorder=1.0 - no_reorder,
            reorder_window=window,
        )


#: The identity overlay — combining with it changes nothing.
PERFECT = ChannelConditions()


@dataclass
class ConditionerStats:
    """Per-direction delivery perturbation counters."""

    conditioned: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0


class ChannelConditioner:
    """Per-channel, per-direction delivery perturbation.

    Args:
        rng: the conditioner's base stream; one independent stream is
            forked per direction so down-path chaos never perturbs
            up-path draws (and vice versa).
    """

    def __init__(self, rng: DeterministicRandom) -> None:
        self._rngs: dict[str, DeterministicRandom] = {
            direction: rng.fork(index)
            for index, direction in enumerate(DIRECTIONS)
        }
        self._overlays: dict[str, list[tuple[int, ChannelConditions]]] = {
            direction: [] for direction in DIRECTIONS
        }
        self._effective: dict[str, ChannelConditions] = {
            direction: PERFECT for direction in DIRECTIONS
        }
        self._next_token = 0
        self.stats: dict[str, ConditionerStats] = {
            direction: ConditionerStats() for direction in DIRECTIONS
        }

    # ----- overlay management ---------------------------------------------

    def apply(
        self,
        conditions: ChannelConditions,
        direction: str = "both",
    ) -> int:
        """Push an overlay; returns a token for :meth:`remove`."""
        conditions.validate()
        token = self._next_token
        self._next_token += 1
        for dirn in self._directions(direction):
            self._overlays[dirn].append((token, conditions))
            self._recompute(dirn)
        return token

    def remove(self, token: int) -> None:
        """Pop the overlay identified by ``token`` (idempotent)."""
        for dirn in DIRECTIONS:
            overlays = self._overlays[dirn]
            kept = [entry for entry in overlays if entry[0] != token]
            if len(kept) != len(overlays):
                self._overlays[dirn] = kept
                self._recompute(dirn)

    def effective(self, direction: str) -> ChannelConditions:
        """The combined conditions currently active on a direction."""
        return self._effective[direction]

    def is_active(self, direction: str) -> bool:
        """True when the direction has any perturbing overlay."""
        return self._effective[direction].active

    def _directions(self, direction: str) -> tuple[str, ...]:
        if direction == "both":
            return DIRECTIONS
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS + ('both',)}, "
                f"got {direction!r}"
            )
        return (direction,)

    def _recompute(self, direction: str) -> None:
        overlays = [entry[1] for entry in self._overlays[direction]]
        self._effective[direction] = (
            ChannelConditions.combine(overlays) if overlays else PERFECT
        )

    # ----- the hot path ----------------------------------------------------

    def plan(self, direction: str) -> list[float]:
        """Draw this message's fate: one extra delay per delivered copy.

        An empty list means the message is dropped.  ``[0.0]`` is a
        clean single delivery.  Callers must only invoke this when
        :meth:`is_active` is true — an idle conditioner draws nothing,
        which keeps unconditioned runs byte-identical to runs without
        a conditioner.
        """
        conditions = self._effective[direction]
        rng = self._rngs[direction]
        stats = self.stats[direction]
        stats.conditioned += 1
        if conditions.loss and rng.random() < conditions.loss:
            stats.dropped += 1
            return []

        def one_delay() -> float:
            extra = conditions.delay
            if conditions.jitter:
                extra += rng.uniform(0.0, conditions.jitter)
            return extra

        first = one_delay()
        if conditions.reorder and rng.random() < conditions.reorder:
            first += rng.uniform(0.0, conditions.reorder_window)
            stats.reordered += 1
        copies = [first]
        if conditions.duplicate and rng.random() < conditions.duplicate:
            copies.append(one_delay())
            stats.duplicated += 1
        return copies

    # ----- reporting -------------------------------------------------------

    def stats_summary(self) -> dict[str, dict[str, int]]:
        """Counters per direction, JSON-friendly."""
        return {
            direction: {
                "conditioned": stats.conditioned,
                "dropped": stats.dropped,
                "duplicated": stats.duplicated,
                "reordered": stats.reordered,
            }
            for direction, stats in self.stats.items()
        }

    def __repr__(self) -> str:
        parts = []
        for direction in DIRECTIONS:
            eff = self._effective[direction]
            if eff.active:
                parts.append(f"{direction}={eff}")
        inner = ", ".join(parts) if parts else "idle"
        return f"ChannelConditioner({inner})"
