"""Simulated OpenFlow switches.

The paper evaluates against hardware (HP ProCurve 5406zl, Pica8, Dell
S4810, Dell 8132F) and OpenVSwitch instances, some behind proxies that
emulate misbehaviour.  We substitute discrete-event switch models that
reproduce the *protocol-visible* behaviour those experiments depend on:

* a serial control-plane processor with per-message-type costs
  (:class:`~repro.switches.profiles.SwitchProfile`, calibrated to the
  §8.3.1 message-rate measurements),
* a data plane (TCAM) whose updates lag the control plane by a
  profile-specific latency,
* behaviour models (:mod:`repro.switches.behavior`): faithful
  acknowledgments, premature acknowledgments (HP-like), and FlowMod
  reordering with premature barriers (Pica8-like, per [16]),
* fault injection: silently removing rules from the data plane,
  corrupting actions, failing ports — the §8.1.1 failure scenarios.
"""

from repro.switches.profiles import (
    SwitchProfile,
    DELL_8132F,
    DELL_S4810,
    DELL_S4810_SAME_PRIO,
    HP_5406ZL,
    IDEAL,
    OVS,
    PICA8,
)
from repro.switches.behavior import (
    Behavior,
    FaithfulBehavior,
    PrematureAckBehavior,
    ReorderingBehavior,
)
from repro.switches.switch import SimulatedSwitch

__all__ = [
    "SwitchProfile",
    "DELL_8132F",
    "DELL_S4810",
    "DELL_S4810_SAME_PRIO",
    "HP_5406ZL",
    "IDEAL",
    "OVS",
    "PICA8",
    "Behavior",
    "FaithfulBehavior",
    "PrematureAckBehavior",
    "ReorderingBehavior",
    "SimulatedSwitch",
]
