"""OpenFlow control channels.

A :class:`ControlChannel` carries control messages between a
controller-side endpoint and a switch-side endpoint with a configurable
latency.  Endpoints are callables; Monocle interposes by owning the
switch's channel and exposing a controller-facing endpoint of its own
(the paper's proxy design, §2/§7).
"""

from __future__ import annotations

from typing import Callable

from repro.openflow.messages import Message
from repro.sim.kernel import Simulator

#: Default one-way control-channel latency (TCP over management net).
DEFAULT_CONTROL_LATENCY = 0.001


class ControlChannel:
    """A bidirectional, ordered message pipe with latency.

    Attributes:
        down_handler: receives messages travelling controller -> switch.
        up_handler: receives messages travelling switch -> controller.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = DEFAULT_CONTROL_LATENCY,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.down_handler: Callable[[Message], None] | None = None
        self.up_handler: Callable[[Message], None] | None = None
        self.messages_down = 0
        self.messages_up = 0

    def send_down(self, msg: Message) -> None:
        """Send toward the switch."""
        self.messages_down += 1
        handler = self.down_handler
        if handler is not None:
            self.sim.schedule(self.latency, lambda: handler(msg))

    def send_up(self, msg: Message) -> None:
        """Send toward the controller."""
        self.messages_up += 1
        handler = self.up_handler
        if handler is not None:
            self.sim.schedule(self.latency, lambda: handler(msg))
