"""TCAM-style flow table with OpenFlow 1.0 priority semantics.

Lookup returns the highest-priority matching rule.  The OpenFlow spec
leaves overlapping equal-priority rules undefined; following the paper
(footnote 1) the table refuses to create that situation.

The table also exposes the queries probe generation needs: rules with
higher/lower priority than a given rule, and rules overlapping a match
(§5.4's pre-filter).  Two engines serve the overlap queries:

* the default **tuple-space index** (:class:`~repro.openflow.tuplespace.
  TupleSpaceIndex`): rules bucketed by mask signature, whole buckets
  pruned by mask compatibility and value bounds, hash hits where the
  query covers a bucket's mask — O(candidates) on sparse tables,
  degrading to the packed scan of the overlapping buckets when
  everything overlaps;
* a **linear packed scan** (``use_index=False``, the benchmark
  baseline): one bigint expression per rule over an *incrementally
  maintained* row cache — adds append, removals tombstone, and the
  cache compacts when tombstones dominate; churn never triggers a
  wholesale rebuild (``packed_builds`` stays at 1, regression-tested).

Both engines are maintained through :meth:`FlowTable.install`/
:meth:`~FlowTable.remove` deltas, and the table additionally keeps a
**rolling content fingerprint** (:meth:`FlowTable.fingerprint`, O(1) to
read): the commutative sum of per-rule content hashes, equal by
construction to the from-scratch :func:`table_fingerprint` of the same
rules.  The fleet's shared-context registry dedupes on it.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Callable, Iterable, Iterator, Mapping

from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.tuplespace import TupleSpaceIndex

#: Rule keys: (priority, match) — the OpenFlow identity of a table entry.
RuleKey = tuple[int, Match]

_FINGERPRINT_MOD = 1 << 256


def rule_fingerprint(rule: Rule) -> int:
    """Cookie-free content hash of one rule (priority, match, actions).

    The commutative building block of :func:`table_fingerprint` and of
    :meth:`FlowTable.fingerprint`'s rolling accumulator.  Memoized on
    the (immutable) rule object so fleet churn re-hashes a rule at most
    once however many tables and copies it passes through.
    """
    cached = rule.__dict__.get("_content_hash")
    if cached is not None:
        return cached
    value, mask = rule.match.packed()
    actions = rule.actions
    item = (
        rule.priority,
        value,
        mask,
        actions.is_ecmp,
        tuple(
            (
                po.port,
                tuple((name.value, val) for name, val in po.rewrites),
            )
            for po in actions.port_outcomes
        ),
    )
    digest = hashlib.sha256(repr(item).encode()).digest()
    result = int.from_bytes(digest, "big")
    object.__setattr__(rule, "_content_hash", result)  # frozen dataclass
    return result


def table_fingerprint(rules: Iterable[Rule]) -> str:
    """Canonical, cookie-free hash of a flow table's behaviour.

    A commutative multiset hash over (priority, match, actions) — the
    sum of :func:`rule_fingerprint` values mod 2**256 — so a table's
    rolling fingerprint can be maintained in O(1) per add/remove and
    still equal this from-scratch computation after every operation.
    Order-insensitive; callers for whom within-priority table order
    matters (the shared-context registry: probe generation consumes
    rules in table order) verify rule-sequence identity on top of a
    fingerprint hit before sharing state.
    """
    acc = 0
    for rule in rules:
        acc = (acc + rule_fingerprint(rule)) % _FINGERPRINT_MOD
    return f"{acc:064x}"


def pack_header(header_values: Mapping[FieldName, int]) -> int:
    """The abstract header as one bigint (``Match.packed`` bit layout).

    Absent fields read as 0, mirroring :meth:`Match.matches`.
    """
    total = HEADER.total_bits
    packed = 0
    for field in HEADER:
        value = header_values.get(field.name, 0) & field.max_value
        if value:
            packed |= value << (total - field.offset - field.width)
    return packed


class TableMissPolicy:
    """What happens to packets that match no rule."""

    DROP = "drop"
    CONTROLLER = "controller"


class OverlapError(ValueError):
    """Raised when inserting a rule that overlaps an equal-priority rule."""


class FlowTable:
    """An ordered collection of rules with TCAM lookup semantics.

    Rules are kept sorted by descending priority; within one priority the
    order is insertion order (irrelevant for lookup because equal-priority
    overlap is rejected).

    Args:
        use_index: serve :meth:`overlapping`/:meth:`lookup` from the
            tuple-space index (default); ``False`` selects the linear
            packed-scan baseline (itself incrementally maintained).
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        miss_policy: str = TableMissPolicy.DROP,
        check_overlap: bool = True,
        use_index: bool = True,
    ) -> None:
        self.miss_policy = miss_policy
        self.check_overlap = check_overlap
        self.use_index = use_index
        self._rules: list[Rule] = []
        #: Sort keys (-priority, seq) aligned with ``_rules`` so inserts
        #: and removals bisect instead of scanning.
        self._order: list[tuple[int, int]] = []
        self._by_key: dict[RuleKey, Rule] = {}
        #: key -> (-priority, seq): the rule's table-order rank.  seq is
        #: a monotone insertion counter, so within one priority earlier
        #: installs rank first (exactly the legacy list order).
        self._rank: dict[RuleKey, tuple[int, int]] = {}
        #: rank -> rule.  The tuple-space index stores *ranks* as its
        #: keys: unique, cheap to hash, and — being the table-order sort
        #: key — directly sortable without a key function.
        self._by_rank: dict[tuple[int, int], Rule] = {}
        self._next_seq = 0
        #: Lazily built tuple-space index (``use_index=True``); counts
        #: from-scratch builds so tests can assert churn never rebuilds.
        self._index: TupleSpaceIndex | None = None
        self.index_builds = 0
        #: Lazily built linear rows [(value, mask, rule) | None] with
        #: tombstones (``use_index=False``); same build counter contract.
        self._packed_rows: list[tuple[int, int, Rule] | None] | None = None
        self._packed_where: dict[RuleKey, int] = {}
        self._packed_live = 0
        self.packed_builds = 0
        self.packed_compactions = 0
        #: Rolling content fingerprint (sum of rule_fingerprint mod
        #: 2^256).  ``None`` until the first :meth:`fingerprint` read:
        #: transient tables (altered-table probes, FlowMod undo copies)
        #: never pay per-op hashing; long-lived tables pay one O(N)
        #: compute on first read, then O(1) per churn op.
        self._fp_acc: int | None = None
        for rule in rules:
            self.install(rule)

    # ----- mutation ----------------------------------------------------

    def install(self, rule: Rule) -> None:
        """Add a rule; replaces an existing rule with the same key.

        Raises:
            OverlapError: if the rule overlaps a *different* rule of equal
                priority and overlap checking is on.
        """
        key = rule.key()
        existing = self._by_key.get(key)
        if existing is not None:
            self._replace(existing, rule)
            return
        if self.check_overlap:
            # The overlap query is already the candidate set; only the
            # equal-priority hits violate footnote 1.
            for other in self.overlapping(rule.match):
                if (
                    other.priority == rule.priority
                    and other.match is not rule.match
                ):
                    raise OverlapError(
                        f"rule {rule!r} overlaps equal-priority {other!r}"
                    )
        seq = self._next_seq
        self._next_seq += 1
        rank = (-rule.priority, seq)
        index = bisect_left(self._order, rank)
        self._order.insert(index, rank)
        self._rules.insert(index, rule)
        self._by_key[key] = rule
        self._rank[key] = rank
        self._by_rank[rank] = rule
        if self._fp_acc is not None:
            self._fp_acc = (self._fp_acc + rule_fingerprint(rule)) % (
                _FINGERPRINT_MOD
            )
        if self._index is not None:
            value, mask = rule.match.packed()
            self._index.add(rank, value, mask)
        if self._packed_rows is not None:
            value, mask = rule.match.packed()
            self._packed_where[key] = len(self._packed_rows)
            self._packed_rows.append((value, mask, rule))
            self._packed_live += 1

    def _replace(self, old: Rule, new: Rule) -> None:
        key = new.key()
        rank = self._rank[key]
        index = bisect_left(self._order, rank)
        self._rules[index] = new
        self._by_key[key] = new
        self._by_rank[rank] = new
        if self._fp_acc is not None:
            self._fp_acc = (
                self._fp_acc - rule_fingerprint(old) + rule_fingerprint(new)
            ) % _FINGERPRINT_MOD
        # The tuple-space index stores only (key, packed match) — both
        # unchanged on a same-key replace.  Linear rows hold the rule.
        if self._packed_rows is not None:
            row_index = self._packed_where[key]
            row = self._packed_rows[row_index]
            assert row is not None
            self._packed_rows[row_index] = (row[0], row[1], new)

    def remove(self, rule: Rule) -> bool:
        """Remove the rule with this rule's (priority, match) key.

        Returns True if a rule was removed.
        """
        key = rule.key()
        existing = self._by_key.pop(key, None)
        if existing is None:
            return False
        rank = self._rank.pop(key)
        del self._by_rank[rank]
        index = bisect_left(self._order, rank)
        del self._order[index]
        del self._rules[index]
        if self._fp_acc is not None:
            self._fp_acc = (self._fp_acc - rule_fingerprint(existing)) % (
                _FINGERPRINT_MOD
            )
        if self._index is not None:
            self._index.discard(rank)
        if self._packed_rows is not None:
            self._packed_discard(key)
        return True

    def _packed_discard(self, key: RuleKey) -> None:
        """Tombstone a linear row; compact when tombstones dominate."""
        rows = self._packed_rows
        assert rows is not None
        rows[self._packed_where.pop(key)] = None
        self._packed_live -= 1
        if len(rows) > 64 and len(rows) > 2 * self._packed_live:
            live = [row for row in rows if row is not None]
            self._packed_rows = live
            self._packed_where = {
                row[2].key(): i for i, row in enumerate(live)
            }
            self.packed_compactions += 1

    def remove_matching(
        self, match: Match, strict_priority: int | None = None
    ) -> list[Rule]:
        """OpenFlow delete semantics.

        Non-strict (``strict_priority is None``): remove every rule whose
        match is *covered by* ``match``.  Strict: remove the single rule
        with exactly this (priority, match).
        """
        if strict_priority is not None:
            rule = self._by_key.get((strict_priority, match))
            if rule is None:
                return []
            self.remove(rule)
            return [rule]
        removed = self.covered_rules(match)
        for rule in removed:
            self.remove(rule)
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._order.clear()
        self._by_key.clear()
        self._rank.clear()
        self._by_rank.clear()
        self._index = None
        self._packed_rows = None
        self._packed_where.clear()
        self._packed_live = 0
        self._fp_acc = 0

    # ----- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return self._by_key.get(rule.key()) == rule

    def rules(self) -> list[Rule]:
        """All rules, highest priority first."""
        return list(self._rules)

    def get(self, priority: int, match: Match) -> Rule | None:
        """The rule with exactly this key, or None."""
        return self._by_key.get((priority, match))

    def fingerprint(self) -> str:
        """Rolling content fingerprint (== :func:`table_fingerprint`).

        First read computes the accumulator from the live rules; from
        then on it is maintained through every install/replace/remove,
        so fleet-scale consumers (shared-context dedup, re-convergence
        checks) never pay an O(N) re-hash on the churn path.
        """
        acc = self._fp_acc
        if acc is None:
            acc = 0
            for rule in self._rules:
                acc = (acc + rule_fingerprint(rule)) % _FINGERPRINT_MOD
            self._fp_acc = acc
        return f"{acc:064x}"

    def _ensure_index(self) -> TupleSpaceIndex:
        index = self._index
        if index is None:
            index = TupleSpaceIndex()
            rank = self._rank
            for rule in self._rules:
                value, mask = rule.match.packed()
                index.add(rank[rule.key()], value, mask)
            self._index = index
            self.index_builds += 1
        return index

    def _ensure_packed(self) -> list[tuple[int, int, Rule] | None]:
        rows = self._packed_rows
        if rows is None:
            rows = [(*r.match.packed(), r) for r in self._rules]
            self._packed_rows = rows
            self._packed_where = {
                row[2].key(): i for i, row in enumerate(rows) if row
            }
            self._packed_live = len(rows)
            self.packed_builds += 1
        return rows

    def lookup(self, header_values: Mapping[FieldName, int]) -> Rule | None:
        """Highest-priority rule matching the header, or None on miss."""
        if self.use_index:
            index = self._ensure_index()
            packed = pack_header(header_values)
            best: tuple[int, int] | None = None
            for rank in index.lookup(packed):
                if best is None or rank < best:
                    best = rank
            return None if best is None else self._by_rank[best]
        for rule in self._rules:
            if rule.match.matches(header_values):
                return rule
        return None

    def process(
        self,
        header_values: Mapping[FieldName, int],
        ecmp_chooser: Callable[[Rule], int] | None = None,
    ) -> RuleOutcome:
        """Process a packet and return its observable outcome.

        Args:
            header_values: the packet's abstract header.
            ecmp_chooser: for ECMP rules, callback selecting the concrete
                port; defaults to the lowest port (deterministic).
        """
        rule = self.lookup(header_values)
        if rule is None:
            return RuleOutcome.dropped()
        outcome = RuleOutcome.from_rule(rule, header_values)
        if outcome.ecmp:
            if ecmp_chooser is not None:
                port = ecmp_chooser(rule)
            else:
                port = min(outcome.ports())
            chosen = tuple(e for e in outcome.emissions if e[0] == port)
            return RuleOutcome(emissions=chosen, ecmp=False)
        return outcome

    def higher_priority(self, rule: Rule) -> list[Rule]:
        """Rules with strictly higher priority, highest first."""
        # Strictly-higher priorities rank before (-priority, any seq).
        index = bisect_left(self._order, (-rule.priority, -1))
        return self._rules[:index]

    def lower_priority(self, rule: Rule) -> list[Rule]:
        """Rules with strictly lower priority, highest first."""
        index = bisect_left(self._order, (-rule.priority + 1, -1))
        return self._rules[index:]

    def overlapping(self, match: Match) -> list[Rule]:
        """Rules whose match overlaps ``match`` (the §5.4 pre-filter).

        Served by the tuple-space index (whole-bucket pruning + hash
        hits, packed scan only inside surviving buckets) or, with
        ``use_index=False``, by the incrementally-maintained packed row
        cache.  Either way the result is in table order (priority
        descending, insertion order within a priority).
        """
        value, mask = match.packed()
        if self.use_index:
            ranks = self._ensure_index().query(value, mask)
            ranks.sort()
            by_rank = self._by_rank
            return [by_rank[rank] for rank in ranks]
        found = [
            row[2]
            for row in self._ensure_packed()
            if row is not None and not ((row[0] ^ value) & row[1] & mask)
        ]
        rank = self._rank
        found.sort(key=lambda rule: rank[rule.key()])
        return found

    def covered_rules(self, match: Match) -> list[Rule]:
        """Rules whose match is *covered by* ``match``, in table order.

        The OpenFlow non-strict MODIFY/DELETE target set.  Coverage
        implies overlap, so the index prunes the candidate pool first —
        but only when it is already built: short-lived table copies
        (FlowMod undo capture, altered-table probes) answer one such
        query and must not pay an index construction for it.
        """
        if self._index is not None:
            return [
                rule
                for rule in self.overlapping(match)
                if match.covers(rule.match)
            ]
        return [r for r in self._rules if match.covers(r.match)]

    def copy(self) -> "FlowTable":
        """A shallow copy (rules are immutable so this is safe).

        The overlap engine of the copy rebuilds lazily on first use;
        the rolling fingerprint carries over in O(1).
        """
        table = FlowTable(
            miss_policy=self.miss_policy,
            check_overlap=False,
            use_index=self.use_index,
        )
        table.check_overlap = self.check_overlap
        table._rules = list(self._rules)
        table._order = list(self._order)
        table._by_key = dict(self._by_key)
        table._rank = dict(self._rank)
        table._by_rank = dict(self._by_rank)
        table._next_seq = self._next_seq
        table._fp_acc = self._fp_acc
        return table

    def __repr__(self) -> str:
        return f"FlowTable({len(self._rules)} rules, miss={self.miss_policy})"


__all__ = [
    "FlowTable",
    "OverlapError",
    "TableMissPolicy",
    "pack_header",
    "rule_fingerprint",
    "table_fingerprint",
]
