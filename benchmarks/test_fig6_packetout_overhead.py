"""Figure 6 (+ §8.3.1 rates): PacketOut impact on rule modifications.

Paper setup: emulate an in-progress network update by interleaving
PacketOut messages and flow modifications at ratio k:2 (the two
modifications being delete+add, keeping the table size stable), and
measure the FlowMod rate normalized to the no-PacketOut baseline.

Paper result: all switches retain >=85% of their baseline rate with up
to 5 PacketOuts per FlowMod; the Dell S4810 in its equal-priority
configuration ("**", much higher baseline) degrades the fastest.  The
§8.3.1 maxima: 7006 PacketOut/s & 5531 PacketIn/s (HP), 850 & 401
(S4810), 9128 & 1105 (8132F).
"""

from repro.analysis import format_table
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketOut
from repro.sim.kernel import Simulator
from repro.switches.profiles import (
    DELL_8132F,
    DELL_S4810,
    DELL_S4810_SAME_PRIO,
    HP_5406ZL,
)
from repro.switches.switch import SimulatedSwitch

from .conftest import print_header

RATIOS = [0, 1, 2, 3, 4, 5, 10, 20, 40]
PROFILES = [HP_5406ZL, DELL_8132F, DELL_S4810, DELL_S4810_SAME_PRIO]
MEASURE_TIME = 4.0


def flowmod_rate(profile, packetouts_per_two_mods: int) -> float:
    """Drive the switch with a k:2 PacketOut:FlowMod mix; return the
    achieved FlowMod rate.

    The control queue is pre-saturated (all batches enqueued up front)
    so the switch's serial processor is the bottleneck, exactly like
    the paper's measurement; the rate is FlowMods over the time of the
    last FlowMod completion (data-plane install latency excluded — it
    is pipelined, not throughput-limiting).
    """
    sim = Simulator()
    switch = SimulatedSwitch(sim, switch_id=1, profile=profile)
    switch.attach_port(1, lambda raw: None)

    last_completion = [0.0]
    original = switch._complete_flowmod

    def spy(mod):
        original(mod)
        last_completion[0] = sim.now

    switch._complete_flowmod = spy

    batches = int(MEASURE_TIME * profile.flowmod_rate / 2) + 1
    for batch in range(batches):
        # 2 modifications: delete existing + add new (per the paper).
        match = Match.build(nw_dst=0x0A000000 + batch % 4096)
        switch.receive_message(
            FlowMod(
                command=FlowModCommand.DELETE_STRICT, match=match, priority=10
            )
        )
        switch.receive_message(
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=10,
                actions=output(1),
            )
        )
        for _ in range(packetouts_per_two_mods):
            switch.receive_message(PacketOut(payload=b"probe", out_port=1))
    sim.run()
    return switch.stats.flowmods_processed / max(last_completion[0], 1e-9)


def measure_max_packetout_rate(profile) -> float:
    """§8.3.1: max PacketOut/s, measured by flooding 20000 PacketOuts."""
    sim = Simulator()
    switch = SimulatedSwitch(sim, switch_id=1, profile=profile)
    delivered = []
    switch.attach_port(1, lambda raw: delivered.append(sim.now))
    for _ in range(2000):
        switch.receive_message(PacketOut(payload=b"x", out_port=1))
    sim.run()
    return len(delivered) / delivered[-1]


def test_figure6_packetout_overhead(benchmark):
    baselines = {p.name: flowmod_rate(p, 0) for p in PROFILES}

    rows = []
    normalized = {p.name: {} for p in PROFILES}
    for ratio in RATIOS:
        row = [f"{ratio}:2"]
        for profile in PROFILES:
            rate = flowmod_rate(profile, ratio)
            norm = rate / baselines[profile.name]
            normalized[profile.name][ratio] = norm
            row.append(f"{norm:.2f}")
        rows.append(row)

    print_header(
        "Figure 6 — normalized FlowMod rate vs PacketOut:FlowMod ratio"
    )
    print(format_table(["ratio"] + [p.name for p in PROFILES], rows))

    rate_rows = [
        [
            p.name,
            f"{measure_max_packetout_rate(p):.0f}",
            f"{p.packetout_rate:.0f}",
        ]
        for p in PROFILES
    ]
    print("\n§8.3.1 maximum PacketOut rates (measured vs paper):")
    print(format_table(["switch", "measured /s", "paper /s"], rate_rows))

    # Shape assertions.
    for profile in PROFILES:
        series = normalized[profile.name]
        # Monotone (within tolerance) degradation with the ratio.
        assert series[40] < series[5] <= series[0] + 0.05
        if profile is not DELL_S4810_SAME_PRIO:
            # "All switches maintain 85% ... up to five PacketOuts".
            assert series[5] >= 0.80, (profile.name, series[5])
    # The equal-priority S4810 degrades fastest.
    assert (
        normalized[DELL_S4810_SAME_PRIO.name][5]
        < min(normalized[p.name][5] for p in PROFILES[:3])
    )
    # Measured §8.3.1 maxima match the paper's rates within 5%.
    for profile in PROFILES:
        measured = measure_max_packetout_rate(profile)
        assert abs(
            measured - profile.packetout_rate
        ) / profile.packetout_rate < 0.05

    benchmark.pedantic(
        lambda: flowmod_rate(HP_5406ZL, 5), rounds=2, iterations=1
    )
