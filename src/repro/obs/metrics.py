"""Live metrics: counters, gauges, histograms, sim-time snapshots.

:class:`MetricsRegistry` is the one sink every layer publishes into
(Monitor probe counters, scheduler waits, SAT solve times, dynamic-
update confirmation latencies, fleet-level gauges).  Three instrument
kinds, Prometheus-flavored:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — a level, set to the latest value;
* :class:`Histogram` — cumulative buckets plus sum/count, for latency
  distributions.

Instruments are keyed by ``(name, labels)`` and created on first use
(:meth:`~MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram` are get-or-create); the hot path of
an existing instrument is one dict lookup plus an attribute add.

Time series come from :meth:`MetricsRegistry.snapshot`: each snapshot
captures every instrument's cumulative value at one sim time, so the
delta between consecutive snapshots is a *windowed* reading (probes/s,
alarms/s, cache-hit ratio over the window).  The fleet observer drives
snapshots off the sim kernel's dispatch hook, so the series is paced by
simulation time, never wall clock.

:meth:`MetricsRegistry.prometheus_text` renders the classic text
exposition format (``# TYPE`` headers, ``{label="value"}`` series,
``_bucket``/``_sum``/``_count`` for histograms).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable

#: Canonical label encoding: sorted (key, value) pairs.
LabelItems = tuple[tuple[str, str], ...]

#: Default histogram buckets (seconds): probe/solve/update latencies
#: span ~100us..10s in this codebase.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_items(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_key(name: str, labels: LabelItems) -> str:
    """Exposition-style series key: ``name{k="v",...}`` (or bare name).

    Doubles as the snapshot dictionary key, so snapshots are JSON-ready.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def family_name(key: str) -> str:
    """The metric family of a :func:`series_key` (strip the labels)."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A level: set to the latest reading."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an observation lands in every bucket
    whose bound is >= the value, with ``+Inf`` implicit in ``count``.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        index = bisect_left(self.bounds, value)
        # Cumulative buckets are materialized at exposition time; the
        # hot path pays one bisect + one increment.
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ``+Inf`` excluded."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket bounds (0 <= q <= 1)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        for bound, cumulative in self.cumulative():
            if cumulative >= target:
                return bound
        return self.bounds[-1] if self.bounds else 0.0


class MetricsRegistry:
    """Get-or-create instrument registry with sim-time snapshots."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelItems], Any] = {}
        #: name -> instrument kind, so one family never mixes types.
        self._kinds: dict[str, str] = {}
        #: Called before every snapshot / exposition so gauges that
        #: mirror live structures (outstanding probes, forked contexts)
        #: can be refreshed without per-mutation publishing.
        self._collect_hooks: list[Callable[[], None]] = []
        #: Snapshot dicts in sim-time order (see :meth:`snapshot`).
        self.snapshots: list[dict[str, Any]] = []

    # ----- instruments -------------------------------------------------------

    def _get(self, kind: str, factory: Callable[[], Any],
             name: str, labels: dict[str, Any]) -> Any:
        items = _label_items(labels)
        key = (name, items)
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}"
            )
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument
        instrument = factory()
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(
            "counter",
            lambda: Counter(name, _label_items(labels)),
            name,
            labels,
        )

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(
            "gauge", lambda: Gauge(name, _label_items(labels)), name, labels
        )

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get(
            "histogram",
            lambda: Histogram(name, _label_items(labels), buckets),
            name,
            labels,
        )

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before every snapshot/exposition (gauge refresh)."""
        self._collect_hooks.append(hook)

    # ----- reads -------------------------------------------------------------

    def _collect(self) -> None:
        for hook in self._collect_hooks:
            hook()

    def _sorted(self) -> list[tuple[tuple[str, LabelItems], Any]]:
        return sorted(self._instruments.items(), key=lambda kv: kv[0])

    def family_total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets."""
        return sum(
            instrument.value
            for (iname, _), instrument in self._instruments.items()
            if iname == name and hasattr(instrument, "value")
        )

    # ----- snapshots ----------------------------------------------------------

    def snapshot(self, ts: float) -> dict[str, Any]:
        """Capture every instrument's cumulative state at sim time ``ts``.

        The returned dict (also appended to :attr:`snapshots`) is JSON-
        ready: counters and gauges map :func:`series_key` to value,
        histograms to ``{"count", "sum"}``.  Deltas between consecutive
        snapshots are the sim-time-windowed readings.
        """
        self._collect()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for (name, labels), instrument in self._sorted():
            key = series_key(name, labels)
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                histograms[key] = {
                    "count": float(instrument.count),
                    "sum": instrument.sum,
                }
        snap = {
            "ts": ts,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        self.snapshots.append(snap)
        return snap

    # ----- exposition -----------------------------------------------------------

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format (sorted, reproducible)."""
        self._collect()
        lines: list[str] = []
        seen_type: set[str] = set()
        for (name, labels), instrument in self._sorted():
            kind = self._kinds[name]
            if name not in seen_type:
                seen_type.add(name)
                lines.append(f"# TYPE {name} {kind}")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{series_key(name, labels)} {_fmt(instrument.value)}"
                )
                continue
            for bound, cumulative in instrument.cumulative():
                bucket_labels = labels + (("le", _fmt(bound)),)
                lines.append(
                    f"{series_key(name + '_bucket', bucket_labels)} "
                    f"{cumulative}"
                )
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{series_key(name + '_bucket', inf_labels)} "
                f"{instrument.count}"
            )
            lines.append(
                f"{series_key(name + '_sum', labels)} "
                f"{_fmt(instrument.sum)}"
            )
            lines.append(
                f"{series_key(name + '_count', labels)} {instrument.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Trim integral floats so expositions read ``42`` not ``42.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def window_rates(
    snapshots: Iterable[dict[str, Any]], family: str
) -> list[tuple[float, float]]:
    """Per-window rates of a counter family from consecutive snapshots.

    Returns ``(window end ts, delta / window seconds)`` pairs — the
    probes/s / alarms/s style time series the fleet report renders.
    """
    rates: list[tuple[float, float]] = []
    previous: dict[str, Any] | None = None
    for snap in snapshots:
        if previous is not None:
            dt = snap["ts"] - previous["ts"]
            if dt > 0:
                delta = _family_sum(snap, family) - _family_sum(
                    previous, family
                )
                rates.append((snap["ts"], delta / dt))
        previous = snap
    return rates


def _family_sum(snapshot: dict[str, Any], family: str) -> float:
    return sum(
        value
        for key, value in snapshot["counters"].items()
        if family_name(key) == family
    )
