"""Property-based tests: probe generation against random flow tables.

The central invariant (the paper's Table 1, checked by simulation): for
ANY flow table, if the generator claims a probe exists then the probe
(a) is processed by the probed rule, (b) yields observably different
outcomes with and without the rule, and (c) matches the catching rule.
Completeness is spot-checked too: when the generator says UNSAT, no
header in a small exhaustive neighbourhood may satisfy Table 1.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core.probegen import (
    ProbeGenContext,
    ProbeGenerator,
    UnmonitorableReason,
    verify_probe,
)
from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable

CATCH = Match.build(dl_vlan=0xF03)

# Small discrete universes keep exhaustive cross-checks feasible.
SRC_VALUES = [0x0A000001, 0x0A000002, 0x0A000003]
DST_VALUES = [0x14000001, 0x14000002]
PORTS = [1, 2, 3]


@st.composite
def rule_strategy(draw, priority):
    match_kwargs = {}
    if draw(st.booleans()):
        match_kwargs["nw_src"] = draw(st.sampled_from(SRC_VALUES))
    if draw(st.booleans()):
        match_kwargs["nw_dst"] = draw(st.sampled_from(DST_VALUES))
    kind = draw(
        st.sampled_from(["unicast", "drop", "rewrite", "multicast", "ecmp"])
    )
    if kind == "unicast":
        actions = output(draw(st.sampled_from(PORTS)))
    elif kind == "drop":
        actions = drop()
    elif kind == "rewrite":
        actions = output(
            draw(st.sampled_from(PORTS)), nw_tos=draw(st.integers(0, 3))
        )
    elif kind == "multicast":
        ports = draw(
            st.lists(
                st.sampled_from(PORTS), min_size=2, max_size=3, unique=True
            )
        )
        actions = multicast(ports)
    else:
        ports = draw(
            st.lists(
                st.sampled_from(PORTS), min_size=2, max_size=3, unique=True
            )
        )
        actions = ecmp(ports)
    return Rule(
        priority=priority, match=Match.build(**match_kwargs), actions=actions
    )


@st.composite
def table_strategy(draw):
    num_rules = draw(st.integers(2, 6))
    priorities = draw(
        st.lists(
            st.integers(
                1, 30
            ), min_size=num_rules, max_size=num_rules, unique=True
        )
    )
    rules = [draw(rule_strategy(priority)) for priority in priorities]
    table = FlowTable(check_overlap=False)
    for rule in rules:
        table.install(rule)
    probed = draw(st.sampled_from(rules))
    return table, probed


@settings(max_examples=120, deadline=None)
@given(table_strategy())
def test_generated_probes_satisfy_table1(table_and_rule):
    """Soundness: every generated probe passes the simulation check."""
    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if result.ok:
        valid, why = verify_probe(table, probed, result.header, CATCH)
        assert valid, why
        # The raw packet must parse back to the same header fields that
        # matter (craft/parse round trip on a generated probe).
        from repro.packets.parse import parse_packet

        values, _ = parse_packet(
            result.packet, result.header[FieldName.IN_PORT]
        )
        for name in (FieldName.NW_SRC, FieldName.NW_DST, FieldName.DL_VLAN):
            assert values[name] == result.header[name]


def _exhaustive_probe_exists(table, probed):
    """Brute-force Table 1 over the small header universe."""
    for src, dst, vlan, tos in itertools.product(
        SRC_VALUES + [0x0B000000],
        DST_VALUES + [0x15000000],
        [0xF03],
        range(4),
    ):
        header = {
            FieldName.NW_SRC: src,
            FieldName.NW_DST: dst,
            FieldName.DL_VLAN: vlan,
            FieldName.NW_TOS: tos,
        }
        hit = table.lookup(header)
        if hit is None or hit.key() != probed.key():
            continue
        if not CATCH.matches(header):
            continue
        without = table.copy()
        without.remove(probed)
        miss = without.lookup(header)
        present = RuleOutcome.from_rule(probed, header)
        absent = (
            RuleOutcome.from_rule(miss, header)
            if miss is not None
            else RuleOutcome.dropped()
        )
        if present.distinguishable_from(absent):
            return True
    return False


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_unsat_verdicts_are_complete(table_and_rule):
    """Completeness: UNSAT means no probe exists in the small universe.

    (The converse of soundness; restricted to the discrete universe the
    strategies draw from, where exhaustive checking is feasible.)
    """
    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if not result.ok and result.reason is UnmonitorableReason.UNSATISFIABLE:
        assert not _exhaustive_probe_exists(table, probed)


def _assert_equivalent(table, probed, incremental_result):
    """The incremental engine must agree with from-scratch generation.

    Equivalence is on the SAT/UNSAT verdict (models may differ between
    two complete solvers) and on probe validity: any produced probe must
    satisfy Table 1 against the *current* table by simulation.
    """
    scratch = ProbeGenerator(catch_match=CATCH).generate(table, probed)
    incr_unsat = (
        not incremental_result.ok
        and incremental_result.reason is UnmonitorableReason.UNSATISFIABLE
    )
    scratch_unsat = (
        not scratch.ok
        and scratch.reason is UnmonitorableReason.UNSATISFIABLE
    )
    assert incr_unsat == scratch_unsat, (
        f"verdicts diverge: incremental={incremental_result.reason}, "
        f"from-scratch={scratch.reason}"
    )
    if incremental_result.ok:
        valid, why = verify_probe(
            table, probed, incremental_result.header, CATCH
        )
        assert valid, f"incremental probe invalid: {why}"
    if scratch.ok:
        valid, why = verify_probe(table, probed, scratch.header, CATCH)
        assert valid, f"from-scratch probe invalid: {why}"


def _random_rule(rng, priority):
    match_kwargs = {}
    if rng.random() < 0.5:
        match_kwargs["nw_src"] = rng.choice(SRC_VALUES)
    if rng.random() < 0.5:
        match_kwargs["nw_dst"] = rng.choice(DST_VALUES)
    kind = rng.choice(["unicast", "drop", "rewrite", "multicast", "ecmp"])
    if kind == "unicast":
        actions = output(rng.choice(PORTS))
    elif kind == "drop":
        actions = drop()
    elif kind == "rewrite":
        actions = output(rng.choice(PORTS), nw_tos=rng.randrange(4))
    elif kind == "multicast":
        actions = multicast(rng.sample(PORTS, rng.choice([2, 3])))
    else:
        actions = ecmp(rng.sample(PORTS, rng.choice([2, 3])))
    return Rule(
        priority=priority, match=Match.build(**match_kwargs), actions=actions
    )


def test_incremental_context_equivalent_over_200_churn_steps():
    """The delta API tracks 250 randomized churn steps exactly.

    Each step mutates the table through ``ProbeGenContext.add_rule`` /
    ``remove_rule`` (add, delete, or modify-in-place) and then probes a
    random live rule through the incremental engine; the result must
    match a from-scratch generation on every step.
    """
    rng = random.Random(0xC0DE)
    context = ProbeGenContext(ProbeGenerator(catch_match=CATCH))
    live: list[Rule] = []
    next_priority = iter(range(1, 10_000))
    for _ in range(6):  # seed population
        rule = _random_rule(rng, next(next_priority))
        context.add_rule(rule)
        live.append(rule)

    steps = 250
    for step in range(steps):
        op = rng.choice(["add", "delete", "modify", "none"])
        if op == "add" or not live:
            rule = _random_rule(rng, next(next_priority))
            context.add_rule(rule)
            live.append(rule)
        elif op == "delete":
            victim = live.pop(rng.randrange(len(live)))
            context.remove_rule(victim)
            if not live:
                rule = _random_rule(rng, next(next_priority))
                context.add_rule(rule)
                live.append(rule)
        elif op == "modify":
            index = rng.randrange(len(live))
            old = live[index]
            new = _random_rule(rng, old.priority)
            replacement = Rule(
                priority=old.priority,
                match=old.match,
                actions=new.actions,
                cookie=old.cookie,
            )
            context.add_rule(replacement)  # same key: in-place replace
            live[index] = replacement
        probed = rng.choice(live)
        result = context.probe_for(probed)
        _assert_equivalent(context.table, probed, result)
    # The engine must actually have exercised the incremental machinery.
    assert context.stats.probes_generated >= steps // 4
    assert context.stats.cache_hits + context.stats.revalidations > 0
    # Removed rules are evicted outright: the cache tracks live rules,
    # not every rule ever probed (unbounded growth regression).
    live_keys = {rule.key() for rule in context.table.rules()}
    assert set(context._cache) <= live_keys


def test_engine_rebuild_bounds_guard_growth():
    """Churn that never reuses a match must not grow the persistent
    encoder forever: once dead guards dominate the live table the
    context re-founds its solver, and probes stay correct across the
    rebuild."""
    rng = random.Random(7)
    context = ProbeGenContext(
        ProbeGenerator(catch_match=CATCH), rebuild_floor=8
    )
    keeper = Rule(
        priority=500,
        match=Match.build(nw_src=SRC_VALUES[0]),
        actions=output(1),
    )
    context.add_rule(keeper)
    for i in range(60):  # every add uses a fresh, never-recycled match
        rule = Rule(
            priority=100 + i,
            match=Match.build(nw_dst=0x14000100 + i),
            actions=output(rng.choice(PORTS)),
        )
        context.add_rule(rule)
        # Force a real solve: the fresh rule overlaps the keeper, so
        # generating the keeper's probe encodes a guard for it.
        context.clear_cache()
        result = context.probe_for(keeper)
        _assert_equivalent(context.table, keeper, result)
        context.remove_rule(rule)
    assert context.stats.engine_rebuilds >= 1
    assert context.encoder.cached_guards <= max(
        context.rebuild_floor, 2 * (len(context.table) + 1)
    )
    result = context.probe_for(keeper)
    _assert_equivalent(context.table, keeper, result)


@settings(max_examples=40, deadline=None)
@given(table_strategy(), st.randoms(use_true_random=False))
def test_incremental_matches_scratch_on_random_tables(table_and_rule, rng):
    """Hypothesis sweep: build the table through the delta API, churn a
    couple of rules, and compare against from-scratch generation."""
    table, probed = table_and_rule
    context = ProbeGenContext(ProbeGenerator(catch_match=CATCH))
    rules = table.rules()
    for rule in rules:
        context.add_rule(rule)
    # Churn: delete and re-add a random non-probed rule (if any).
    others = [r for r in rules if r.key() != probed.key()]
    if others:
        victim = rng.choice(others)
        context.remove_rule(victim)
        interim = context.probe_for(probed)
        _assert_equivalent(context.table, probed, interim)
        context.add_rule(victim)
    result = context.probe_for(probed)
    _assert_equivalent(context.table, probed, result)


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_probe_header_is_wire_valid(table_and_rule):
    """Every generated probe survives craft -> parse without error."""
    from repro.packets.craft import craft_packet
    from repro.packets.parse import parse_packet

    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if result.ok:
        raw = craft_packet(result.header, b"payload123456789")
        values, payload = parse_packet(raw)
        assert payload == b"payload123456789"
