"""Figure 4: time to detect rule/link failures in steady state.

Paper setup: HP 5406zl with 1000 L3 rules toward 4 OVS leaves, 500
probes/s, 150 ms detection timeout, up to 3 re-sends.  Scenarios (CDF
over repeated runs): detect >=x of y simultaneously failed rules for
(x, y) in {(1,1), (5,5), (3,5), (3,10)} and a link failure covering 102
rules with threshold 5.

Paper shape: single failures detected between ~150 ms and ~cycle+150 ms
(up to 3 s at 1000 rules); link failures (many rules at once) detected
in ~200 ms on average because the first few failed probes appear early
in the cycle; high thresholds on few failures take the longest.

Default scale runs 1000 rules with a reduced repetition count;
REPRO_BENCH_SCALE trades repetitions for precision.
"""

from repro.analysis import Cdf, format_table
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.switches.profiles import HP_5406ZL, OVS
from repro.topology.generators import star

from .conftest import bench_scale, bench_seed, print_header

NUM_RULES = 1000
PROBE_RATE = 500.0
TIMEOUT = 0.150

#: (threshold x, failures y, fail_link): raise the experiment's alarm
#: once x distinct rules alarmed after failing y rules.
SCENARIOS = [
    ("1 out of 1", 1, 1, False),
    ("5 out of 5", 5, 5, False),
    ("3 out of 5", 3, 5, False),
    ("3 out of 10", 3, 10, False),
    ("5 out of 102 (link)", 5, 102, True),
]


class SteadyStateRig:
    """One star network kept alive across repetitions (warm probe cache)."""

    def __init__(self, seed: int) -> None:
        self.sim = Simulator()
        self.net = Network(
            self.sim,
            star(4),
            profiles=lambda n: HP_5406ZL if n == "hub" else OVS,
            seed=seed,
        )
        self.system = MonocleSystem(
            self.net,
            config=MonitorConfig(
                probe_rate=PROBE_RATE, probe_timeout=TIMEOUT, max_retries=3
            ),
            dynamic=False,
        )
        self.rng = DeterministicRandom(seed)
        self.rules = []
        self.leaf_of = {}
        for i in range(NUM_RULES):
            leaf = f"leaf{i % 4}"
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(self.net.port_toward["hub"][leaf]),
            )
            self.system.preinstall_production_rule("hub", rule)
            self.rules.append(rule)
            self.leaf_of[rule.cookie] = leaf
        self.monitor = self.system.monitor("hub")
        self.monitor.start_steady_state()
        # Warm-up: one full cycle fills the probe cache.
        self.sim.run_for(NUM_RULES / PROBE_RATE + 0.2)

    def run_failure(self, threshold, num_failures, fail_link):
        """Fail rules (or a link), return detection time of the
        threshold-th distinct alarm."""
        if fail_link:
            leaf = f"leaf{self.rng.randint(0, 3)}"
            victims = [
                r for r in self.rules if self.leaf_of[r.cookie] == leaf
            ][
                :102
            ]
            self.net.fail_link("hub", leaf)
        else:
            victims = self.rng.sample(self.rules, num_failures)
            for rule in victims:
                self.net.switch("hub").fail_rule_in_dataplane(rule)
        victim_cookies = {r.cookie for r in victims}
        t_fail = self.sim.now
        alarm_start = len(self.monitor.alarms)

        detection = None
        deadline = self.sim.now + 2 * NUM_RULES / PROBE_RATE + 1.0
        while self.sim.now < deadline:
            self.sim.run_for(0.05)
            distinct = {
                a.rule.cookie
                for a in self.monitor.alarms[alarm_start:]
                if a.rule.cookie in victim_cookies
            }
            if len(distinct) >= threshold:
                latest = sorted(
                    a.time
                    for a in self.monitor.alarms[alarm_start:]
                    if a.rule.cookie in victim_cookies
                )[threshold - 1]
                detection = latest - t_fail
                break

        # Repair for the next repetition.
        if fail_link:
            self.net.links[frozenset(("hub", leaf))].restore()
        for rule in victims:
            self.net.switch("hub").dataplane.install(rule)
        self.sim.run_for(0.3)  # let in-flight probes drain
        return detection


def test_figure4_failure_detection(benchmark):
    reps = max(3, int(5 * bench_scale()))
    rig = SteadyStateRig(bench_seed())

    rows = []
    all_series = {}
    for label, threshold, failures, fail_link in SCENARIOS:
        detections = []
        for _ in range(reps):
            detection = rig.run_failure(threshold, failures, fail_link)
            assert detection is not None, f"{label}: failure never detected"
            detections.append(detection)
        cdf = Cdf(detections)
        all_series[label] = detections
        rows.append(
            [
                label,
                f"{min(detections):.3f}",
                f"{cdf.percentile(50):.3f}",
                f"{max(detections):.3f}",
            ]
        )

    print_header(
        f"Figure 4 — detection time CDFs ({NUM_RULES} rules, "
        f"{PROBE_RATE:.0f} probes/s, {reps} reps/scenario)"
    )
    print(format_table(["scenario", "min s", "median s", "max s"], rows))
    print(
        "\npaper shape: all detections within ~0.15 s .. cycle+0.15 s;\n"
        "link failures (102 rules) detected fastest on average (~0.2 s);\n"
        "high thresholds over few failed rules take the longest."
    )

    cycle = NUM_RULES / PROBE_RATE
    # Shape assertions.
    for label, detections in all_series.items():
        for detection in detections:
            assert TIMEOUT * 0.9 <= detection <= cycle + TIMEOUT + 1.0, (
                label,
                detection,
            )
    # Link failure detects faster (on average) than "3 out of 10".
    link_mean = sum(all_series["5 out of 102 (link)"]) / reps
    sparse_mean = sum(all_series["3 out of 10"]) / reps
    assert link_mean < sparse_mean

    # Timed kernel: one single-rule failure detection round.
    benchmark.pedantic(
        lambda: rig.run_failure(1, 1, False), rounds=3, iterations=1
    )
