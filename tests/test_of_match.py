"""Tests for OpenFlow matches: semantics, overlap, covering, packing."""

import pytest

from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import FieldMatch, Match


class TestFieldMatch:
    def test_exact_matches_only_value(self):
        field = HEADER.field(FieldName.NW_SRC)
        fm = FieldMatch.exact(field, 0x0A000001)
        assert fm.matches(0x0A000001)
        assert not fm.matches(0x0A000002)

    def test_exact_rejects_out_of_range(self):
        field = HEADER.field(FieldName.DL_VLAN)
        with pytest.raises(ValueError):
            FieldMatch.exact(field, 1 << 12)

    def test_prefix_matches_subtree(self):
        field = HEADER.field(FieldName.NW_DST)
        fm = FieldMatch.prefix(field, 0x0A000000, 8)
        assert fm.matches(0x0A123456)
        assert not fm.matches(0x0B000000)

    def test_prefix_zero_len_is_wildcard(self):
        field = HEADER.field(FieldName.NW_DST)
        fm = FieldMatch.prefix(field, 0x0A000000, 0)
        assert fm.is_wildcard()
        assert fm.matches(0xFFFFFFFF)

    def test_prefix_masks_low_bits_of_value(self):
        field = HEADER.field(FieldName.NW_DST)
        fm = FieldMatch.prefix(field, 0x0A0000FF, 24)
        assert fm.value == 0x0A000000

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            FieldMatch(value=0b10, mask=0b01)

    def test_overlap_exact_vs_exact(self):
        field = HEADER.field(FieldName.NW_SRC)
        a = FieldMatch.exact(field, 1)
        b = FieldMatch.exact(field, 1)
        c = FieldMatch.exact(field, 2)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_prefix_containment(self):
        field = HEADER.field(FieldName.NW_DST)
        wide = FieldMatch.prefix(field, 0x0A000000, 8)
        narrow = FieldMatch.prefix(field, 0x0A010000, 16)
        other = FieldMatch.prefix(field, 0x0B000000, 8)
        assert wide.overlaps(narrow)
        assert narrow.overlaps(wide)
        assert not narrow.overlaps(other)

    def test_covers(self):
        field = HEADER.field(FieldName.NW_DST)
        wide = FieldMatch.prefix(field, 0x0A000000, 8)
        narrow = FieldMatch.prefix(field, 0x0A010000, 16)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)


class TestMatch:
    def test_wildcard_matches_everything(self):
        match = Match.wildcard()
        assert match.matches({FieldName.NW_SRC: 123})
        assert match.is_wildcard()

    def test_build_exact(self):
        match = Match.build(nw_src=0x0A000001, dl_type=0x0800)
        assert match.matches(
            {FieldName.NW_SRC: 0x0A000001, FieldName.DL_TYPE: 0x0800}
        )
        assert not match.matches(
            {FieldName.NW_SRC: 0x0A000002, FieldName.DL_TYPE: 0x0800}
        )

    def test_build_prefix_tuple(self):
        match = Match.build(nw_dst=(0x0A000000, 24))
        assert match.matches({FieldName.NW_DST: 0x0A0000FE})
        assert not match.matches({FieldName.NW_DST: 0x0A000100})

    def test_missing_fields_default_to_zero(self):
        match = Match.build(in_port=0)
        assert match.matches({})

    def test_equality_and_hash(self):
        a = Match.build(nw_src=1, nw_dst=2)
        b = Match.build(nw_dst=2, nw_src=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_wildcard_fields_dropped_from_identity(self):
        field = HEADER.field(FieldName.NW_SRC)
        explicit = Match({FieldName.NW_SRC: FieldMatch.prefix(field, 0, 0)})
        assert explicit == Match.wildcard()

    def test_overlaps_disjoint_fields_always(self):
        a = Match.build(nw_src=1)
        b = Match.build(nw_dst=2)
        assert a.overlaps(b)

    def test_overlaps_same_field_conflict(self):
        a = Match.build(nw_src=1)
        b = Match.build(nw_src=2)
        assert not a.overlaps(b)

    def test_overlap_is_symmetric(self):
        a = Match.build(nw_src=1, nw_dst=(0x0A000000, 8))
        b = Match.build(nw_dst=(0x0A010000, 16))
        assert a.overlaps(b) == b.overlaps(a)

    def test_covers_requires_all_fields(self):
        wide = Match.build(nw_src=1)
        narrow = Match.build(nw_src=1, nw_dst=2)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_wildcard_covers_all(self):
        assert Match.wildcard().covers(Match.build(nw_src=5, tp_dst=80))

    def test_matches_packed_roundtrip(self):
        match = Match.build(nw_src=0x0A000001, tp_dst=80)
        header = HEADER.pack(
            {FieldName.NW_SRC: 0x0A000001, FieldName.TP_DST: 80}
        )
        assert match.matches_packed(header)

    def test_bit_constraints_count(self):
        match = Match.build(dl_vlan=3)
        bits = list(match.bit_constraints())
        assert len(bits) == 12  # dl_vlan is 12 bits wide
        # Value 3 = 0b000000000011: two set bits.
        assert sum(1 for _, v in bits if v) == 2

    def test_bit_constraints_prefix_only_covers_prefix(self):
        match = Match.build(nw_dst=(0x0A000000, 8))
        bits = list(match.bit_constraints())
        assert len(bits) == 8

    def test_rewritten_by_pins_fields(self):
        match = Match.build(nw_src=1)
        rewritten = match.rewritten_by({FieldName.NW_TOS: 0x2A})
        assert rewritten.matches({FieldName.NW_SRC: 1, FieldName.NW_TOS: 0x2A})
        assert not rewritten.matches(
            {FieldName.NW_SRC: 1, FieldName.NW_TOS: 0}
        )

    def test_packed_overlap_agrees_with_fieldwise(self):
        pairs = [
            (Match.build(nw_src=1), Match.build(nw_src=1, nw_dst=2)),
            (Match.build(nw_src=1), Match.build(nw_src=2)),
            (
                Match.build(nw_dst=(0x0A000000, 8)),
                Match.build(nw_dst=(0x0A0B0000, 16)),
            ),
            (Match.wildcard(), Match.build(tp_src=80)),
        ]
        for a, b in pairs:
            fieldwise = all(
                a.constraint(name).overlaps(b.constraint(name))
                for name in set(a.fields) | set(b.fields)
            )
            assert a.overlaps(b) == fieldwise

    def test_repr_readable(self):
        match = Match.build(nw_src=0x0A000001)
        assert "nw_src" in repr(match)
        assert repr(Match.wildcard()) == "Match(*)"
