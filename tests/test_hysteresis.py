"""Tests for the Monitor's graceful-degradation layer: alarm
hysteresis (k-of-n strike confirmation), suspicion re-probes,
per-switch quarantine, and the probe retry/backoff edge cases the
chaos arms lean on."""

from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.network.conditioning import ChannelConditions
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.topology.generators import star


def star_setup(config, num_rules=20, seed=3):
    sim = Simulator()
    net = Network(sim, star(4), seed=seed)
    system = MonocleSystem(net, config=config, dynamic=False)
    rules = []
    for i in range(num_rules):
        leaf = f"leaf{i % 4}"
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000000 + i),
            actions=output(net.port_toward["hub"][leaf]),
        )
        system.preinstall_production_rule("hub", rule)
        rules.append(rule)
    return sim, net, system, rules


def blackout(net, sim, duration):
    """100% loss in both directions on every channel until ``duration``.

    Probes enter the monitored switch through a *neighbor's* PacketOut
    and observations return through the catching switch's channel, so
    a single-node overlay would miss the probe path entirely.
    """
    for node in net.channels:
        conditioner = net.conditioner(node)
        token = conditioner.apply(ChannelConditions(loss=1.0), "both")
        sim.schedule(
            duration,
            lambda c=conditioner, t=token: c.remove(t),
        )


class TestAlarmHysteresis:
    def test_default_config_alarms_on_first_timeout(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0)
        )
        monitor = system.monitor("hub")
        net.switch("hub").fail_rule_in_dataplane(rules[5])
        monitor.start_steady_state()
        sim.run_for(0.5)
        assert monitor.alarms
        assert monitor.alarms_suppressed == 0
        assert not monitor.suspicion

    def test_confirmations_suppress_early_strikes(self):
        first_alarm = {}
        for confirmations in (1, 3):
            sim, net, system, rules = star_setup(
                MonitorConfig(
                    probe_rate=500.0,
                    alarm_confirmations=confirmations,
                )
            )
            monitor = system.monitor("hub")
            net.switch("hub").fail_rule_in_dataplane(rules[5])
            monitor.start_steady_state()
            sim.run_for(1.0)
            assert monitor.alarms, (
                f"k={confirmations}: a persistently missing rule must "
                "still alarm"
            )
            assert monitor.alarms[0].rule.cookie == rules[5].cookie
            first_alarm[confirmations] = monitor.alarms[0].time
            if confirmations == 3:
                # Two strikes swallowed per raised alarm.
                assert monitor.alarms_suppressed >= 2
        # Hysteresis trades detection latency for loss tolerance: the
        # confirmed alarm lands strictly later than the immediate one.
        assert first_alarm[3] > first_alarm[1]

    def test_transient_blackout_suppressed_without_alarm(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0, alarm_confirmations=3)
        )
        monitor = system.monitor("hub")
        blackout(net, sim, 0.2)
        monitor.start_steady_state()
        sim.run_for(1.0)
        # Probes lost to the blackout struck but never confirmed
        # missing: once the channel healed, re-probes vindicated every
        # rule and cleared the suspicion table.
        assert monitor.alarms == []
        assert monitor.alarms_suppressed > 0
        assert not monitor.suspicion

    def test_confirm_clears_strike_count(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0, alarm_confirmations=2)
        )
        monitor = system.monitor("hub")
        blackout(net, sim, 0.16)
        monitor.start_steady_state()
        sim.run_for(1.0)
        assert monitor.alarms == []
        assert not monitor.suspicion
        assert not monitor._suspect_times


class TestQuarantine:
    def test_blackout_quarantines_then_recovers(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(
                probe_rate=500.0,
                alarm_confirmations=99,
                quarantine_threshold=2,
            )
        )
        monitor = system.monitor("hub")
        blackout(net, sim, 0.25)
        monitor.start_steady_state()
        sim.run_for(0.4)
        # Distinct rules struck inside the window: best-effort mode.
        assert monitor.quarantined
        assert monitor.quarantines == 1
        sim.run_for(2.0)
        # Strike-free since the channel healed: quarantine lifts and
        # the suspicion state is wiped.
        assert not monitor.quarantined
        assert monitor.alarms == []
        assert not monitor.suspicion
        assert not monitor._suspect_times

    def test_single_bad_rule_never_quarantines(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(
                probe_rate=500.0,
                alarm_confirmations=2,
                quarantine_threshold=2,
            )
        )
        monitor = system.monitor("hub")
        net.switch("hub").fail_rule_in_dataplane(rules[5])
        monitor.start_steady_state()
        sim.run_for(1.5)
        # Scoring is per *distinct* rule: one rule striking forever is
        # a broken rule (alarm), not a flapping switch (quarantine).
        assert monitor.alarms
        assert not monitor.quarantined
        assert monitor.quarantines == 0

    def test_misbehaving_alarms_pierce_quarantine(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(
                probe_rate=500.0,
                alarm_confirmations=99,
                quarantine_threshold=2,
            )
        )
        monitor = system.monitor("hub")
        blackout(net, sim, 0.25)
        monitor.start_steady_state()
        sim.run_for(0.4)
        assert monitor.quarantined
        # Positive evidence of wrong forwarding is not a probe loss:
        # it must alarm even on a quarantined switch.
        target = rules[5]
        wrong_port = net.port_toward["hub"]["leaf2"]
        if target.forwarding_set() == {wrong_port}:
            wrong_port = net.port_toward["hub"]["leaf3"]
        net.switch("hub").corrupt_rule_in_dataplane(
            target, output(wrong_port)
        )
        sim.run_for(0.3)
        kinds = {alarm.kind for alarm in monitor.alarms}
        assert "misbehaving" in kinds
        assert "missing" not in kinds

    def test_note_suspect_is_noop_when_disabled(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0)
        )
        monitor = system.monitor("hub")
        monitor.note_suspect(rules[0].key())
        assert not monitor._suspect_times
        assert not monitor.quarantined


class TestProbeRetryEdges:
    def _monitor_with_failed_rule(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0)
        )
        monitor = system.monitor("hub")
        net.switch("hub").fail_rule_in_dataplane(rules[0])
        return sim, monitor, rules[0]

    def test_retry_interval_beyond_timeout_sends_once(self):
        sim, monitor, rule = self._monitor_with_failed_rule()
        result = monitor.probe_for_rule(rule)
        monitor.launch_probe(result, retry_interval=0.4)
        sim.run_for(1.0)
        # The first (and only) retry slot lands after the timeout has
        # already resolved the probe: exactly one injection.
        assert monitor.probes_sent == 1
        assert monitor.probes_timed_out == 1

    def test_backoff_caps_at_max_retry_interval(self):
        sent = {}
        for cap in (0.02, 1.0):
            sim, monitor, rule = self._monitor_with_failed_rule()
            result = monitor.probe_for_rule(rule)
            monitor.launch_probe(
                result,
                retry_interval=0.01,
                retries=-1,
                timeout=1.0,
                retry_backoff=4.0,
                max_retry_interval=cap,
            )
            sim.run_for(1.5)
            assert monitor.probes_timed_out == 1
            sent[cap] = monitor.probes_sent
        # Post-grace gaps are min(gap * 4, cap): a tight cap keeps the
        # cadence fast (many injections), a loose one lets the backoff
        # stretch toward the timeout (few).
        assert sent[0.02] > sent[1.0]
        assert sent[0.02] >= 40
        assert sent[1.0] <= 25

    def test_confirmation_cancels_pending_retries(self):
        sim, net, system, rules = star_setup(
            MonitorConfig(probe_rate=500.0)
        )
        monitor = system.monitor("hub")
        result = monitor.probe_for_rule(rules[0])
        monitor.launch_probe(
            result, retry_interval=0.05, retries=5, timeout=0.5
        )
        sim.run_for(1.0)
        # Confirmed within milliseconds; the five retry slots all see
        # a done probe and inject nothing.
        assert monitor.probes_confirmed == 1
        assert monitor.probes_timed_out == 0
        assert monitor.probes_sent == 1
