"""The simulated OpenFlow switch.

Separates the *control plane* (a serial message processor with
per-message costs from the :class:`~repro.switches.profiles.SwitchProfile`)
from the *data plane* (a flow table that lags behind by the behaviour
model's install delay).  This split is what lets the reproduction
exhibit the transient control/data-plane inconsistencies the paper
monitors for.

Fault injection (silently removing or corrupting data-plane rules,
failing ports) implements the §8.1.1 failure scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.openflow.actions import CONTROLLER_PORT, ActionList
from repro.openflow.fields import FieldName
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowModCommand,
    Message,
    PacketIn,
    PacketOut,
)
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.packets.craft import craft_packet
from repro.packets.parse import ParseError, parse_packet
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.switches.behavior import Behavior, behavior_for
from repro.switches.profiles import OVS, SwitchProfile

#: Data-plane forwarding latency through the switch fabric (seconds).
FABRIC_LATENCY = 0.0001


def apply_flowmod(table: FlowTable, mod: FlowMod) -> list[Rule]:
    """Apply OpenFlow 1.0 FlowMod semantics to a table.

    Returns the rules that were installed (for ADD/MODIFY) or removed
    (for DELETE); used by callers tracking expected state.
    """
    command = mod.command
    if command is FlowModCommand.ADD:
        rule = Rule(
            priority=mod.priority,
            match=mod.match,
            actions=mod.actions,
            cookie=mod.cookie,
        )
        table.install(rule)
        return [rule]
    if command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
        if command is FlowModCommand.MODIFY_STRICT:
            targets: list[Rule] = []
            existing = table.get(mod.priority, mod.match)
            if existing is not None:
                targets = [existing]
        else:
            targets = table.covered_rules(mod.match)
        if not targets:
            # Per OF 1.0: MODIFY with no matching rule behaves like ADD.
            rule = Rule(
                priority=mod.priority,
                match=mod.match,
                actions=mod.actions,
                cookie=mod.cookie,
            )
            table.install(rule)
            return [rule]
        updated: list[Rule] = []
        for target in targets:
            new_rule = target.with_actions(mod.actions)
            table.install(new_rule)
            updated.append(new_rule)
        return updated
    if command is FlowModCommand.DELETE:
        return table.remove_matching(mod.match)
    if command is FlowModCommand.DELETE_STRICT:
        return table.remove_matching(mod.match, strict_priority=mod.priority)
    raise ValueError(f"unknown FlowMod command {command}")


@dataclass
class SwitchStats:
    """Counters exposed for the overhead benchmarks (Figures 6 and 7)."""

    flowmods_processed: int = 0
    packetouts_processed: int = 0
    barriers_processed: int = 0
    installs_blackholed: int = 0
    packetins_sent: int = 0
    packetins_dropped: int = 0
    packets_forwarded: int = 0
    packets_dropped: int = 0
    parse_errors: int = 0


class SimulatedSwitch:
    """One switch: serial control plane + lagging data plane.

    Wiring: the network attaches per-port packet handlers via
    :meth:`attach_port`; the control channel sets
    :attr:`send_to_controller` and delivers messages through
    :meth:`receive_message`.
    """

    def __init__(
        self,
        sim: Simulator,
        switch_id: int,
        profile: SwitchProfile = OVS,
        rng: DeterministicRandom | None = None,
        num_ports: int = 48,
        behavior: Behavior | None = None,
    ) -> None:
        self.sim = sim
        self.switch_id = switch_id
        self.profile = profile
        self.rng = rng if rng is not None else DeterministicRandom(switch_id)
        self.behavior = (
            behavior
            if behavior is not None
            else behavior_for(profile, self.rng.fork(1))
        )
        self.num_ports = num_ports

        #: Rules the control plane has accepted (what the switch reports).
        self.control_table = FlowTable(check_overlap=False)
        #: Rules the data plane actually applies.
        self.dataplane = FlowTable(check_overlap=False)

        self.stats = SwitchStats()
        self.send_to_controller: Callable[[Message], None] | None = None
        self._ports: dict[int, Callable[[bytes], None]] = {}
        self._dead_ports: set[int] = set()

        # Control-plane serial processor state.
        self._queue: list[Message] = []
        self._busy = False
        self._stolen_cpu = 0.0  # PacketIn interference, consumed lazily
        self._pending_installs = 0
        self._last_install_time = 0.0
        self._install_seq = 0
        self._blackholed_installs = 0
        self._blackholed_xids: set[int] = set()

        # PacketIn token bucket.
        self._pi_tokens = profile.packetin_rate
        self._pi_last_refill = sim.now

    # ----- wiring ----------------------------------------------------------

    def attach_port(self, port: int, handler: Callable[[bytes], None]) -> None:
        """Connect ``port`` to a link; handler receives raw egress bytes."""
        if not 1 <= port <= self.num_ports:
            raise ValueError(f"port {port} out of range 1..{self.num_ports}")
        self._ports[port] = handler

    def attached_ports(self) -> list[int]:
        """Ports with a link attached (candidates for probe in_port)."""
        return sorted(self._ports)

    # ----- control plane ------------------------------------------------

    def receive_message(self, msg: Message) -> None:
        """Called by the control channel when a message arrives."""
        self._queue.append(msg)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        msg = self._queue[0]
        cost = self._processing_cost(msg) + self._stolen_cpu
        self._stolen_cpu = 0.0
        self.sim.schedule(cost, self._finish_current)

    def _processing_cost(self, msg: Message) -> float:
        if isinstance(msg, FlowMod):
            return self.profile.flowmod_cost
        if isinstance(msg, PacketOut):
            return self.profile.packetout_cost
        if isinstance(msg, BarrierRequest):
            return self.profile.barrier_cost
        return self.profile.barrier_cost  # echoes and friends are cheap

    def _finish_current(self) -> None:
        msg = self._queue.pop(0)
        if isinstance(msg, FlowMod):
            self._complete_flowmod(msg)
        elif isinstance(msg, PacketOut):
            self._complete_packetout(msg)
        elif isinstance(msg, BarrierRequest):
            self._complete_barrier(msg)
        elif isinstance(msg, EchoRequest):
            self._reply(EchoReply(xid=msg.xid))
        self._start_next()

    def _complete_flowmod(self, mod: FlowMod) -> None:
        self.stats.flowmods_processed += 1
        apply_flowmod(self.control_table, mod)
        delay = self.behavior.install_delay()
        if self.behavior.preserves_order():
            # In-order switches cannot apply an install before earlier
            # ones; enforce monotonic data-plane apply times.
            apply_at = max(self.sim.now + delay, self._last_install_time)
            self._last_install_time = apply_at
        else:
            apply_at = self.sim.now + delay
        self._pending_installs += 1
        self._install_seq += 1
        self.sim.at(apply_at, lambda m=mod: self._apply_to_dataplane(m))

    def _apply_to_dataplane(self, mod: FlowMod) -> None:
        self._pending_installs -= 1
        if mod.xid in self._blackholed_xids:
            self._blackholed_xids.discard(mod.xid)
            self.stats.installs_blackholed += 1
            return
        if self._blackholed_installs > 0:
            self._blackholed_installs -= 1
            self.stats.installs_blackholed += 1
            return
        apply_flowmod(self.dataplane, mod)

    def _complete_packetout(self, msg: PacketOut) -> None:
        self.stats.packetouts_processed += 1
        self._emit(msg.payload, msg.out_port)

    def _complete_barrier(self, msg: BarrierRequest) -> None:
        self.stats.barriers_processed += 1
        if (
            self.behavior.barrier_waits_for_dataplane()
            and self._pending_installs > 0
        ):
            # Honest switch: hold the reply until the data plane caught
            # up with everything accepted so far.
            self._wait_for_dataplane(msg)
        else:
            self._reply(BarrierReply(xid=msg.xid))

    def _wait_for_dataplane(self, msg: BarrierRequest) -> None:
        if self._pending_installs == 0:
            self._reply(BarrierReply(xid=msg.xid))
        else:
            self.sim.schedule(0.0005, lambda: self._wait_for_dataplane(msg))

    def _reply(self, msg: Message) -> None:
        if self.send_to_controller is not None:
            self.send_to_controller(msg)

    @property
    def dataplane_synced(self) -> bool:
        """True when no accepted FlowMod is still pending installation."""
        return self._pending_installs == 0

    # ----- data plane ------------------------------------------------------

    def inject(self, raw: bytes, in_port: int) -> None:
        """A packet arrives on ``in_port`` (from a link or a host)."""
        try:
            values, payload = parse_packet(raw, in_port=in_port)
        except ParseError:
            self.stats.parse_errors += 1
            return
        outcome = self.dataplane.process(
            values,
            ecmp_chooser=lambda rule: self.rng.choose(
                sorted(rule.forwarding_set())
            ),
        )
        if outcome.is_drop():
            self.stats.packets_dropped += 1
            return
        for port, header_items in outcome.emissions:
            out_values = dict(header_items)
            out_values[FieldName.IN_PORT] = 0  # not meaningful on egress
            out_raw = craft_packet(out_values, payload)
            if port == CONTROLLER_PORT:
                self.sim.schedule(
                    FABRIC_LATENCY,
                    lambda r=out_raw, p=in_port: self._emit_packetin(r, p),
                )
            else:
                self.sim.schedule(
                    FABRIC_LATENCY, lambda p=port, r=out_raw: self._emit(r, p)
                )

    def _emit(self, raw: bytes, port: int) -> None:
        if port == CONTROLLER_PORT:
            self._emit_packetin(raw, in_port=0)
            return
        if port in self._dead_ports:
            self.stats.packets_dropped += 1
            return
        handler = self._ports.get(port)
        if handler is None:
            self.stats.packets_dropped += 1
            return
        self.stats.packets_forwarded += 1
        handler(raw)

    def _emit_packetin(self, raw: bytes, in_port: int) -> None:
        """Send a PacketIn, subject to the profile's rate cap."""
        self._refill_pi_tokens()
        if self._pi_tokens < 1.0:
            self.stats.packetins_dropped += 1
            return
        self._pi_tokens -= 1.0
        self.stats.packetins_sent += 1
        # PacketIn handling steals a sliver of control CPU (Figure 7).
        if self.profile.packetin_rate > 0:
            self._stolen_cpu += (
                self.profile.packetin_interference / self.profile.packetin_rate
            )
        self._reply(PacketIn(payload=raw, in_port=in_port))

    def _refill_pi_tokens(self) -> None:
        elapsed = self.sim.now - self._pi_last_refill
        self._pi_last_refill = self.sim.now
        self._pi_tokens = min(
            self.profile.packetin_rate,
            self._pi_tokens + elapsed * self.profile.packetin_rate,
        )

    def deliver_to_controller_port(self, raw: bytes, in_port: int) -> None:
        """Data-plane packet destined to the controller (catch rules)."""
        self._emit_packetin(raw, in_port=in_port)

    # ----- fault injection -----------------------------------------------

    def fail_rule_in_dataplane(self, rule: Rule) -> bool:
        """Silently remove a rule from the data plane only (§8.1.1)."""
        return self.dataplane.remove(rule)

    def corrupt_rule_in_dataplane(
        self, rule: Rule, actions: ActionList
    ) -> None:
        """Replace a data-plane rule's actions without telling anyone."""
        existing = self.dataplane.get(rule.priority, rule.match)
        if existing is None:
            raise KeyError(f"rule not in dataplane: {rule!r}")
        self.dataplane.install(existing.with_actions(actions))

    def blackhole_next_installs(self, count: int = 1) -> None:
        """The next ``count`` accepted FlowMods never reach the data
        plane: the control plane acknowledges and tracks them, but the
        data plane silently ignores the update (paper §2).

        Count-based and therefore racy when other FlowMods are in
        flight; use :meth:`blackhole_flowmod` to target a specific
        update under concurrent control traffic."""
        if count < 0:
            raise ValueError(f"count must be >= 0: {count}")
        self._blackholed_installs += count

    def blackhole_flowmod(self, xid: int) -> None:
        """Silently drop the data-plane application of the FlowMod with
        this ``xid`` (whenever it arrives), leaving concurrent updates
        untouched."""
        self._blackholed_xids.add(xid)

    def fail_port(self, port: int) -> None:
        """All packets emitted on ``port`` vanish (link failure)."""
        self._dead_ports.add(port)

    def restore_port(self, port: int) -> None:
        """Undo :meth:`fail_port`."""
        self._dead_ports.discard(port)

    def install_directly(self, rule: Rule) -> None:
        """Install a rule in both planes instantly (test/pre-setup)."""
        self.control_table.install(rule)
        self.dataplane.install(rule)

    def __repr__(self) -> str:
        return (
            f"SimulatedSwitch(id={self.switch_id}, {self.profile.name}, "
            f"rules={len(self.control_table)})"
        )
