#!/usr/bin/env python3
"""Consistent network updates with and without Monocle (§8.1.2).

Triangle topology s1-s2-s3 with hosts H1 (at s1) and H2 (at s2); 30
UDP flows run at 300 packets/s each along s1->s2.  We then reroute all
flows to s1->s3->s2 with a two-phase consistent update.  The probed
switch s3 emulates a Pica8: it acknowledges rules *before* the data
plane installs them, so trusting barriers blackholes traffic; waiting
for Monocle's acknowledgments does not.

Run:  python examples/consistent_update.py
"""

from repro import MonitorConfig, MonocleSystem, Network, Rule, Simulator
from repro.controller import ConfirmMode, ConsistentPathUpdate, SdnController
from repro.network.traffic import (
    FlowSpec,
    TrafficGenerator,
    decode_flow_payload,
)
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.switches.profiles import OVS, PICA8
from repro.topology.generators import triangle

NUM_FLOWS = 30
RATE = 300.0


def run(use_monocle: bool):
    sim = Simulator()
    net = Network(
        sim,
        triangle(),
        profiles=lambda n: PICA8 if n == "s3" else OVS,
        seed=99,
    )
    h1 = net.add_host("h1", "s1")
    h2 = net.add_host("h2", "s2")

    if use_monocle:
        box = {}
        system = MonocleSystem(
            net,
            config=MonitorConfig(update_probe_interval=0.005),
            dynamic=True,
            controller_handler=lambda n, m: box["c"].handle_message(n, m),
        )
        controller = SdnController(sim, send=system.send_to_switch)
        box["c"] = controller
        confirm = ConfirmMode.MONOCLE_ACK
        install = system.preinstall_production_rule
    else:
        controller = SdnController(
            sim, send=lambda n, m: net.channel(n).send_down(m)
        )
        for node in net.switches:
            net.channel(node).up_handler = (
                lambda m, n=node: controller.handle_message(n, m)
            )
        confirm = ConfirmMode.BARRIER

        def install(node, rule):
            net.switch(node).install_directly(rule)

    flows = []
    for i in range(NUM_FLOWS):
        match = Match.build(dl_type=0x0800, nw_proto=17, nw_dst=0x0A000100 + i)
        install(
            "s1",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s1"]["s2"]),
            ),
        )
        install(
            "s2",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s2"]["h2"]),
            ),
        )
        spec = FlowSpec(
            flow_id=i,
            header_fields=(
                ("dl_type", 0x0800),
                ("nw_proto", 17),
                ("nw_dst", 0x0A000100 + i),
            ),
        )
        generator = TrafficGenerator(sim, h1, spec, rate=RATE)
        generator.start(jitter=i / (RATE * NUM_FLOWS))
        flows.append((match, generator))

    sim.run_for(0.2)

    updates = []
    for i, (match, _gen) in enumerate(flows):
        update = ConsistentPathUpdate(
            controller=controller,
            match=match,
            priority=50,
            old_path=["s1", "s2"],
            new_path=["s1", "s3", "s2"],
            port_toward=net.port_toward,
            final_port=net.port_toward["s2"]["h2"],
            confirm=confirm,
        )
        update.start()
        updates.append(update)

    sim.run_for(4.0)
    for _match, generator in flows:
        generator.stop()
    sim.run_for(0.3)

    per_flow_received = {}
    for packet in h2.received:
        decoded = decode_flow_payload(packet.payload)
        if decoded is not None:
            per_flow_received.setdefault(decoded[0], set()).add(decoded[1])

    sent = h1.sent_count
    received = sum(len(s) for s in per_flow_received.values())
    lost = sent - received
    done = sum(1 for u in updates if u.done)
    return sent, lost, done


def main():
    for label, use_monocle in (("barriers", False), ("Monocle", True)):
        sent, lost, done = run(use_monocle)
        print(
            f"{label:>9}: {done}/{NUM_FLOWS} updates completed, "
            f"{sent} packets sent, {lost} lost "
            f"({100.0 * lost / sent:.2f}%)"
        )
    print(
        "\nWith barriers the Pica8-like switch acknowledges rules before\n"
        "installing them, so the ingress flips early and packets fall into\n"
        "a transient blackhole.  Monocle's acknowledgments are grounded in\n"
        "data-plane probes, so the update is genuinely consistent."
    )


if __name__ == "__main__":
    main()
