"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Clock, Simulator
from repro.sim.events import EventQueue


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_to_same_time_ok(self):
        clock = Clock(1.0)
        clock.advance(1.0)
        assert clock.now == 1.0

    def test_cannot_move_backwards(self):
        clock = Clock(2.0)
        with pytest.raises(ValueError):
            clock.advance(1.0)


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_ties_dispatch_in_schedule_order(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: order.append(t))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["first", "second", "third"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_empty_queue_is_falsy(self):
        assert not EventQueue()


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == []
        assert sim.now == 2.0
        sim.run()
        assert fired == ["late"]

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(3.0)
        assert sim.now == 3.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(ValueError):
            sim.at(-1.0, lambda: None)

    def test_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.at(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_max_events_limit(self):
        sim = Simulator()
        count = [0]

        def recur():
            count[0] += 1
            sim.schedule(0.1, recur)

        sim.schedule(0.1, recur)
        sim.run(max_events=10)
        assert count[0] == 10

    def test_event_cancellation_via_handle(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_dispatched_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def try_reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, try_reenter)
        sim.run()
        assert len(errors) == 1
