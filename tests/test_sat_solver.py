"""Tests for the CDCL SAT solver against hand-built and random formulas."""


from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF
from repro.sat.solver import SatSolver, _luby, solve
from repro.sim.random import DeterministicRandom


def make_cnf(num_vars, clauses):
    cnf = CNF(num_vars)
    cnf.extend(clauses)
    return cnf


class TestBasics:
    def test_empty_formula_sat(self):
        assert solve(CNF()).satisfiable is True

    def test_single_unit(self):
        cnf = make_cnf(1, [[1]])
        result = solve(cnf)
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_contradictory_units(self):
        assert solve(make_cnf(1, [[1], [-1]])).satisfiable is False

    def test_empty_clause_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([])
        assert solve(cnf).satisfiable is False

    def test_implication_chain(self):
        # x1 & (x1->x2) & (x2->x3) ... forces all true.
        n = 30
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)]
        result = solve(make_cnf(n, clauses))
        assert result.satisfiable
        assert all(result.assignment[i] for i in range(1, n + 1))

    def test_model_satisfies_formula(self):
        cnf = make_cnf(4, [[1, 2], [-1, 3], [-2, -3], [3, 4], [-4, 1]])
        result = solve(cnf)
        assert result.satisfiable
        assert cnf.evaluate(result.assignment)

    def test_pigeonhole_3_into_2_unsat(self):
        # Vars p_{i,j}: pigeon i in hole j; i in 0..2, j in 0..1.
        def var(i, j):
            return i * 2 + j + 1

        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for a in range(3):
                for b in range(a + 1, 3):
                    clauses.append([-var(a, j), -var(b, j)])
        assert solve(make_cnf(6, clauses)).satisfiable is False

    def test_assumptions_restrict_models(self):
        cnf = make_cnf(2, [[1, 2]])
        result = SatSolver(cnf).solve(assumptions=[-1])
        assert result.satisfiable
        assert result.assignment[2] is True

    def test_conflicting_assumption(self):
        cnf = make_cnf(1, [[1]])
        assert SatSolver(cnf).solve(assumptions=[-1]).satisfiable is False

    def test_duplicate_literals_tolerated(self):
        cnf = make_cnf(2, [[1, 1, 2], [-1, -1]])
        result = solve(cnf)
        assert result.satisfiable
        assert result.assignment[1] is False

    def test_tautological_clause_ignored(self):
        cnf = make_cnf(2, [[1, -1], [2]])
        result = solve(cnf)
        assert result.satisfiable
        assert result.assignment[2] is True


class TestAgainstBruteForce:
    def random_cnf(self, rng, num_vars, num_clauses, width=3):
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, width)
            clause = []
            for _ in range(size):
                var = rng.randint(1, num_vars)
                clause.append(var if rng.random() < 0.5 else -var)
            clauses.append(clause)
        return make_cnf(num_vars, clauses)

    def test_random_formulas_agree_with_enumeration(self):
        rng = DeterministicRandom(99)
        for trial in range(120):
            num_vars = rng.randint(3, 10)
            num_clauses = rng.randint(2, 4 * num_vars)
            cnf = self.random_cnf(rng, num_vars, num_clauses)
            expected = brute_force_solve(cnf) is not None
            result = solve(cnf)
            assert result.satisfiable == expected, cnf.to_dimacs()
            if result.satisfiable:
                assert cnf.evaluate(result.assignment)

    def test_no_learning_mode_agrees(self):
        rng = DeterministicRandom(7)
        for _ in range(40):
            cnf = self.random_cnf(rng, rng.randint(3, 8), rng.randint(3, 20))
            expected = brute_force_solve(cnf) is not None
            result = SatSolver(cnf, enable_learning=False).solve()
            assert result.satisfiable == expected

    def test_no_vsids_mode_agrees(self):
        rng = DeterministicRandom(13)
        for _ in range(40):
            cnf = self.random_cnf(rng, rng.randint(3, 8), rng.randint(3, 20))
            expected = brute_force_solve(cnf) is not None
            result = SatSolver(cnf, enable_vsids=False).solve()
            assert result.satisfiable == expected


class TestBudget:
    def test_conflict_budget_returns_unknown(self):
        # Hard pigeonhole instance with tiny budget.
        def var(i, j):
            return i * 4 + j + 1

        clauses = [[var(i, j) for j in range(4)] for i in range(5)]
        for j in range(4):
            for a in range(5):
                for b in range(a + 1, 5):
                    clauses.append([-var(a, j), -var(b, j)])
        cnf = make_cnf(20, clauses)
        result = SatSolver(cnf).solve(max_conflicts=3)
        assert result.satisfiable is None


class TestLuby:
    def test_luby_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestStats:
    def test_stats_populated(self):
        cnf = make_cnf(4, [[1, 2], [-1, 3], [-3, -2], [2, 4]])
        result = solve(cnf)
        assert result.propagations > 0
        assert result.satisfiable is not None
