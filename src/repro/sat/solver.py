"""A CDCL SAT solver (the reproduction's PicoSAT stand-in).

Implements the standard conflict-driven clause learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* VSIDS-style exponential variable activity with decay,
* Luby-sequence restarts,
* phase saving.

The solver is deliberately self-contained (lists of ints, no numpy) so
its behaviour is easy to audit and to cross-check against the
brute-force reference in :mod:`repro.sat.brute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.cnf import CNF


@dataclass
class SatResult:
    """Outcome of a solve call.

    Attributes:
        satisfiable: True / False, or None if the budget ran out.
        assignment: var -> bool for a satisfying model (only when SAT).
        conflicts: number of conflicts encountered.
        decisions: number of branching decisions made.
        propagations: number of literals assigned by unit propagation.
        learned_clauses: number of clauses learned.
    """

    satisfiable: bool | None
    assignment: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if i == (1 << k) - 1:
        return 1 << (k - 1)
    return _luby(i - (1 << (k - 1)) + 1)


class SatSolver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    _UNASSIGNED = 0
    _TRUE = 1
    _FALSE = -1

    def __init__(
        self,
        cnf: CNF,
        enable_learning: bool = True,
        enable_vsids: bool = True,
        restart_base: int = 64,
    ) -> None:
        self.enable_learning = enable_learning
        self.enable_vsids = enable_vsids
        self.restart_base = restart_base

        self.num_vars = cnf.num_vars
        # Clause database: list of literal lists.  Index < original count
        # means an original clause; beyond that, learned.
        self.clauses: list[list[int]] = []
        self._contradiction = False
        self._pending_units: list[int] = []
        for clause in cnf.clauses():
            unique = self._simplify_clause(clause)
            if unique is None:
                continue  # tautology
            if not unique:
                self._contradiction = True
            elif len(unique) == 1:
                self._pending_units.append(unique[0])
            else:
                self.clauses.append(unique)

        # Assignment state.
        size = self.num_vars + 1
        self.values = [self._UNASSIGNED] * size
        self.levels = [0] * size
        self.reasons: list[list[int] | None] = [None] * size
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.phase = [False] * size

        # Watched literals: watch lit -> clause indices.
        self.watches: dict[int, list[int]] = {}
        for idx, clause in enumerate(self.clauses):
            self._watch(clause[0], idx)
            self._watch(clause[1], idx)

        # VSIDS activity.
        self.activity = [0.0] * size
        self.act_inc = 1.0
        self.act_decay = 0.95

        self.stats = SatResult(satisfiable=None)

    # ----- setup helpers -------------------------------------------------

    @staticmethod
    def _simplify_clause(clause: list[int]) -> list[int] | None:
        """Drop duplicate literals; return None for tautologies."""
        seen: set[int] = set()
        out: list[int] = []
        for lit in clause:
            if -lit in seen:
                return None
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        return out

    def _watch(self, lit: int, clause_idx: int) -> None:
        self.watches.setdefault(lit, []).append(clause_idx)

    # ----- assignment ------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self.values[abs(lit)]
        if value == self._UNASSIGNED:
            return self._UNASSIGNED
        return value if lit > 0 else -value

    def _assign(self, lit: int, reason: list[int] | None) -> None:
        var = abs(lit)
        self.values[var] = self._TRUE if lit > 0 else self._FALSE
        self.levels[var] = self._decision_level()
        self.reasons[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        self.stats.propagations += 1

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ----- propagation ------------------------------------------------------

    def _propagate(self, queue_start: int) -> list[int] | None:
        """Propagate from trail position; return conflicting clause or None."""
        i = queue_start
        while i < len(self.trail):
            lit = self.trail[i]
            i += 1
            falsified = -lit
            watch_list = self.watches.get(falsified)
            if not watch_list:
                continue
            new_watch_list: list[int] = []
            j = 0
            while j < len(watch_list):
                clause_idx = watch_list[j]
                j += 1
                clause = self.clauses[clause_idx]
                # Normalize: put the falsified watch at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == self._TRUE:
                    new_watch_list.append(clause_idx)
                    continue
                # Find a replacement watch.
                replaced = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != self._FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause_idx)
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                new_watch_list.append(clause_idx)
                if self._lit_value(first) == self._FALSE:
                    new_watch_list.extend(watch_list[j:])
                    self.watches[falsified] = new_watch_list
                    return clause
                self._assign(first, clause)
            self.watches[falsified] = new_watch_list
        return None

    # ----- conflict analysis ---------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis.

        Returns (learned_clause, backjump_level) with the asserting
        literal first in the learned clause.
        """
        level = self._decision_level()
        seen = [False] * (self.num_vars + 1)
        learned: list[int] = []
        counter = 0
        lit = 0
        reason: list[int] = conflict
        index = len(self.trail)

        while True:
            for reason_lit in reason:
                var = abs(reason_lit)
                if reason_lit == lit or seen[var]:
                    continue
                seen[var] = True
                self._bump(var)
                if self.levels[var] >= level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                trail_lit = self.trail[index]
                if seen[abs(trail_lit)]:
                    break
            lit = trail_lit
            counter -= 1
            if counter == 0:
                break
            var_reason = self.reasons[abs(lit)]
            assert var_reason is not None, "decision reached before UIP"
            reason = var_reason
        learned.insert(0, -lit)

        if len(learned) == 1:
            return learned, 0
        backjump = max(self.levels[abs(l)] for l in learned[1:])
        # Put a literal from the backjump level in watch position 1.
        for i in range(1, len(learned)):
            if self.levels[abs(learned[i])] == backjump:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, backjump

    def _bump(self, var: int) -> None:
        if not self.enable_vsids:
            return
        self.activity[var] += self.act_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.act_inc *= 1e-100

    def _decay(self) -> None:
        if self.enable_vsids:
            self.act_inc /= self.act_decay

    def _backjump(self, level: int) -> None:
        while self._decision_level() > level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                self.values[var] = self._UNASSIGNED
                self.reasons[var] = None

    # ----- branching -----------------------------------------------------

    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self.values[var] == self._UNASSIGNED:
                if not self.enable_vsids:
                    best_var = var
                    break
                if self.activity[var] > best_act:
                    best_act = self.activity[var]
                    best_var = var
        if best_var == 0:
            return 0
        return best_var if self.phase[best_var] else -best_var

    # ----- main loop -------------------------------------------------------

    def solve(
        self,
        assumptions: list[int] = (),
        max_conflicts: int | None = None,
    ) -> SatResult:
        """Run the CDCL loop.

        Args:
            assumptions: literals asserted at level 0 for this call.
            max_conflicts: optional conflict budget; exceeding it returns
                ``satisfiable=None``.
        """
        if self._contradiction:
            self.stats.satisfiable = False
            return self.stats

        for lit in self._pending_units:
            value = self._lit_value(lit)
            if value == self._FALSE:
                self.stats.satisfiable = False
                return self.stats
            if value == self._UNASSIGNED:
                self._assign(lit, None)
        for lit in assumptions:
            value = self._lit_value(lit)
            if value == self._FALSE:
                self.stats.satisfiable = False
                return self.stats
            if value == self._UNASSIGNED:
                self._assign(lit, None)

        queue_start = 0
        restarts = 0
        conflicts_until_restart = self.restart_base * _luby(1)

        while True:
            conflict = self._propagate(queue_start)
            queue_start = len(self.trail)
            if conflict is not None:
                self.stats.conflicts += 1
                if self._decision_level() == 0:
                    self.stats.satisfiable = False
                    return self.stats
                if (
                    max_conflicts is not None
                    and self.stats.conflicts > max_conflicts
                ):
                    self.stats.satisfiable = None
                    return self.stats
                if self.enable_learning:
                    learned, backjump = self._analyze(conflict)
                    self._backjump(backjump)
                    if len(learned) == 1:
                        self._assign(learned[0], None)
                    else:
                        self.clauses.append(learned)
                        idx = len(self.clauses) - 1
                        self._watch(learned[0], idx)
                        self._watch(learned[1], idx)
                        self._assign(learned[0], learned)
                        self.stats.learned_clauses += 1
                    self._decay()
                else:
                    # Chronological backtracking: flip the last decision.
                    if not self.trail_lim:
                        self.stats.satisfiable = False
                        return self.stats
                    limit = self.trail_lim[-1]
                    decision = self.trail[limit]
                    self._backjump(self._decision_level() - 1)
                    self._assign(-decision, [-decision])
                # Resume propagation AT the literal just asserted — it has
                # not been propagated yet.
                queue_start = len(self.trail) - 1
                conflicts_until_restart -= 1
                if self.enable_learning and conflicts_until_restart <= 0:
                    restarts += 1
                    conflicts_until_restart = self.restart_base * _luby(
                        restarts + 1
                    )
                    self._backjump(0)
                    queue_start = 0
                continue

            branch = self._pick_branch()
            if branch == 0:
                assignment = {
                    var: self.values[var] == self._TRUE
                    for var in range(1, self.num_vars + 1)
                }
                self._assert_model(assignment)
                self.stats.satisfiable = True
                self.stats.assignment = assignment
                return self.stats
            self.trail_lim.append(len(self.trail))
            self.stats.decisions += 1
            self._assign(branch, None)


    def _assert_model(self, assignment: dict[int, bool]) -> None:
        """Defensive final check: the returned model satisfies every
        original clause.  A violation is a solver bug, not user error."""
        for clause in self.clauses:
            if not any(
                (lit > 0) == assignment[abs(lit)] for lit in clause
            ):
                raise AssertionError(
                    f"solver produced an invalid model; clause {clause} "
                    "unsatisfied"
                )
        for lit in self._pending_units:
            if (lit > 0) != assignment[abs(lit)]:
                raise AssertionError(
                    f"solver produced an invalid model; unit {lit} violated"
                )


def solve(cnf: CNF, **kwargs) -> SatResult:
    """One-shot convenience wrapper: build a solver and run it."""
    return SatSolver(cnf, **kwargs).solve()
