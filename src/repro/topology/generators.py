"""Concrete experiment topologies.

Node naming conventions matter to the benchmarks (they look switches up
by name), so generators label nodes with readable strings.
"""

from __future__ import annotations

import networkx as nx


def star(leaves: int = 4, center: str = "hub") -> nx.Graph:
    """The §8.1.1 topology: a probed switch with ``leaves`` neighbors."""
    graph = nx.Graph()
    graph.add_node(center)
    for i in range(leaves):
        graph.add_edge(center, f"leaf{i}")
    return graph


def triangle() -> nx.Graph:
    """The §8.1.2 topology: S1, S2, S3 fully connected."""
    graph = nx.Graph()
    graph.add_edges_from([("s1", "s2"), ("s2", "s3"), ("s1", "s3")])
    return graph


def linear(length: int) -> nx.Graph:
    """A chain of ``length`` switches."""
    if length < 1:
        raise ValueError("need at least one switch")
    graph = nx.Graph()
    graph.add_node("sw0")
    for i in range(1, length):
        graph.add_edge(f"sw{i - 1}", f"sw{i}")
    return graph


def ring(length: int) -> nx.Graph:
    """A cycle of ``length`` switches."""
    if length < 3:
        raise ValueError("a ring needs at least three switches")
    graph = linear(length)
    graph.add_edge(f"sw{length - 1}", "sw0")
    return graph


def islands(size: int, island: int = 8) -> nx.Graph:
    """``size`` switches as disconnected rings of ``island`` switches.

    The cleanly partitionable fleet: a shard planner can cut between
    islands with zero cross-shard links, so sharded runs are
    barrier-free and byte-identical to single-process runs.  A final
    partial island becomes a ring when it has >= 3 switches, else a
    chain.  Node names: ``isl{i:02d}_sw{j}``.
    """
    if size < 1:
        raise ValueError("need at least one switch")
    if island < 1:
        raise ValueError("island size must be >= 1")
    graph = nx.Graph()
    for base in range(0, size, island):
        count = min(island, size - base)
        names = [f"isl{base // island:02d}_sw{j}" for j in range(count)]
        graph.add_nodes_from(names)
        for left, right in zip(names, names[1:]):
            graph.add_edge(left, right)
        if count >= 3:
            graph.add_edge(names[-1], names[0])
    return graph


def fat_tree(k: int = 4) -> nx.Graph:
    """A k-ary FatTree (k even): (k/2)^2 core, k*k/2 agg, k*k/2 edge.

    For ``k=4`` this is the 20-switch network of §8.4 (4 core + 8
    aggregation + 8 edge/ToR).  Node names: ``core{i}``,
    ``agg{pod}_{i}``, ``edge{pod}_{i}``.
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree arity must be even and >= 2")
    half = k // 2
    graph = nx.Graph()
    cores = [f"core{i}" for i in range(half * half)]
    graph.add_nodes_from(cores)
    for pod in range(k):
        aggs = [f"agg{pod}_{i}" for i in range(half)]
        edges = [f"edge{pod}_{i}" for i in range(half)]
        for i, agg in enumerate(aggs):
            # Each aggregation switch connects to half of the cores.
            for j in range(half):
                graph.add_edge(agg, cores[i * half + j])
            for edge in edges:
                graph.add_edge(agg, edge)
    return graph


def edge_switches(graph: nx.Graph) -> list[str]:
    """The ToR/edge switches of a :func:`fat_tree` graph."""
    return sorted(n for n in graph.nodes if str(n).startswith("edge"))
