"""Edge cases for dynamic update handling: non-strict deletes covering
several rules, updates on unmonitorable rules, give-up accounting."""

from repro.core.dynamic import UpdateAck
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.sim.kernel import Simulator
from repro.switches.profiles import HP_5406ZL, OVS
from repro.topology.generators import triangle


def setup(**config_kwargs):
    sim = Simulator()
    net = Network(
        sim,
        triangle(),
        profiles=lambda n: HP_5406ZL if n == "s3" else OVS,
        seed=17,
    )
    acks = []
    system = MonocleSystem(
        net,
        config=MonitorConfig(**config_kwargs),
        dynamic=True,
        controller_handler=lambda node, msg: acks.append(msg)
        if isinstance(msg, UpdateAck)
        else None,
    )
    return sim, net, system, acks


class TestNonStrictDelete:
    def test_wide_delete_probes_each_victim(self):
        sim, net, system, acks = setup()
        port = net.port_toward["s3"]["s1"]
        # Three rules inside 10.0.0.0/24.
        for i in range(3):
            system.send_to_switch(
                "s3",
                FlowMod(
                    command=FlowModCommand.ADD,
                    match=Match.build(nw_dst=0x0A000000 + i),
                    priority=100,
                    actions=output(port),
                ),
            )
        sim.run_for(3.0)
        assert len(acks) == 3
        # One non-strict delete covering all three (overlaps none of the
        # pending updates because they are already confirmed).
        delete = FlowMod(
            command=FlowModCommand.DELETE,
            match=Match.build(nw_dst=(0x0A000000, 24)),
            priority=0,
        )
        system.send_to_switch("s3", delete)
        sim.run_for(3.0)
        assert len(acks) == 4  # one ack for the whole delete
        for i in range(3):
            assert (
                net.switch("s3").dataplane.get(
                    100, Match.build(nw_dst=0x0A000000 + i)
                )
                is None
            )

    def test_empty_delete_acks(self):
        sim, net, system, acks = setup()
        delete = FlowMod(
            command=FlowModCommand.DELETE,
            match=Match.build(nw_dst=(0x0BAD0000, 16)),
            priority=0,
        )
        system.send_to_switch("s3", delete)
        sim.run_for(1.0)
        assert len(acks) == 1


class TestUnmonitorableUpdates:
    def test_shadowed_add_acked_optimistically(self):
        sim, net, system, acks = setup()
        port1 = net.port_toward["s3"]["s1"]
        match = Match.build(nw_dst=0x0A000009)
        system.send_to_switch(
            "s3",
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=200,
                actions=output(port1),
            ),
        )
        sim.run_for(2.0)
        assert len(acks) == 1
        # A second rule under the first with the same match: fully
        # shadowed (never probe-able), still must be forwarded + acked.
        system.send_to_switch(
            "s3",
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=50,
                actions=output(net.port_toward["s3"]["s2"]),
            ),
        )
        sim.run_for(2.0)
        assert len(acks) == 2
        assert net.switch("s3").control_table.get(50, match) is not None


class TestGiveUp:
    def test_never_installing_rule_gives_up_after_deadline(self):
        sim, net, system, acks = setup(update_deadline=0.5)
        port = net.port_toward["s3"]["s1"]
        match = Match.build(nw_dst=0x0A000031)
        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=match,
            priority=100,
            actions=output(port),
        )
        # Sabotage: the control channel loses this FlowMod, so Monocle's
        # expected table says installed but the switch never heard of it.
        channel = net.channel("s3")
        original = channel.down_handler
        channel.down_handler = lambda msg: (
            None
            if isinstance(msg, FlowMod) and msg.xid == mod.xid
            else original(msg)
        )
        system.send_to_switch("s3", mod)
        sim.run_for(3.0)
        assert acks == []
        assert system.dynamics["s3"].updates_given_up == 1
