"""Bounded, sim-timestamped event tracing.

:class:`TraceRecorder` is a ring buffer of typed trace events.  Every
event carries the simulation timestamp, an event type (dotted strings
such as ``probe.sent`` — see the schema table in the README), the node
it happened on, an optional *span id* tying together one probe's (or
one update's) lifecycle, and a small free-form argument mapping.

The recorder is deliberately dumb and cheap: recording is one tuple
construction plus a ``deque.append`` (the deque's ``maxlen`` evicts the
oldest event, so memory stays bounded however long the run).  All
interpretation — span reconstruction, latency breakdowns — lives in
:mod:`repro.obs.analyze`; all aggregation lives in
:mod:`repro.obs.metrics`.

Exports:

* :meth:`TraceRecorder.export_jsonl` — one JSON object per line,
  ``{"ts", "type", "node", "span", "args"}``; nodes are ``repr()``-ed
  so arbitrary Hashables survive serialization.
* :meth:`TraceRecorder.export_chrome` — a Chrome ``trace_event`` JSON
  file loadable in ``chrome://tracing`` and https://ui.perfetto.dev:
  every event becomes an instant on its node's process track, and
  completed probe spans additionally render as duration slices.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Iterable, Iterator, NamedTuple


class TraceEvent(NamedTuple):
    """One recorded event.  ``args`` is read-only by convention."""

    ts: float
    etype: str
    node: object
    span: int | None
    args: dict[str, Any]


def node_label(node: object) -> str | None:
    """Canonical string form of a node for export (``repr``)."""
    if node is None:
        return None
    return repr(node)


def _jsonable(value: Any) -> Any:
    """Coerce an argument value into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_jsonable(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=repr)
        return items
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Args:
        capacity: maximum retained events; older events are evicted
            (and counted in :attr:`dropped`) once the buffer is full.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1: {capacity}")
        self.capacity = capacity
        #: Raw 5-tuples, wrapped into :class:`TraceEvent` lazily on
        #: read: a plain tuple literal is built in C, a NamedTuple call
        #: is a Python-level ``__new__`` — on the hot record path that
        #: difference is measurable (see ``BENCH_obs.json``).
        self._buffer: deque[tuple] = deque(maxlen=capacity)
        #: Total events ever recorded (including evicted ones).
        self.emitted = 0

    def record(
        self,
        ts: float,
        etype: str,
        node: object = None,
        span: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Append one event (O(1); evicts the oldest when full).

        ``args`` values are kept by reference and stringified only at
        export — pass immutable objects (ints, strings, Match) so a
        later mutation cannot rewrite history.
        """
        self.emitted += 1
        self._buffer.append((ts, etype, node, span, args or {}))

    def extend_raw(self, rows: Iterable[tuple]) -> None:
        """Bulk-append raw ``(ts, etype, node, span, args)`` rows.

        The sharded-fleet coordinator merges per-worker trace rings
        into one recorder with this: rows arrive already in the raw
        buffer format (see :meth:`raw_events`), pre-sorted by the
        caller into global sim-time order.
        """
        for row in rows:
            self.emitted += 1
            self._buffer.append(row)

    def raw_events(self) -> list[tuple]:
        """The retained events as raw buffer tuples (picklable)."""
        return list(self._buffer)

    # ----- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return (TraceEvent(*row) for row in self._buffer)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.emitted - len(self._buffer)

    def events(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained events in record order, optionally filtered by type."""
        if etype is None:
            return list(self)
        return [e for e in self if e.etype == etype]

    # ----- exports ----------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        """The retained events as JSON-ready dicts (the JSONL schema)."""
        return [
            {
                "ts": ts,
                "type": etype,
                "node": node_label(node),
                "span": span,
                "args": {k: _jsonable(v) for k, v in args.items()},
            }
            for ts, etype, node, span, args in self._buffer
        ]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the event count."""
        rows = self.to_dicts()
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return len(rows)

    def export_chrome(self, path: str) -> int:
        """Write a Chrome ``trace_event`` file; returns the event count.

        Layout: one *process* per node (named by the node's ``repr``),
        every trace event an instant ("i") on thread = its span id (0
        for span-less events), and every completed probe span — a
        ``probe.generated``/``probe.sent`` followed by a
        ``probe.confirmed``/``probe.timeout`` — an additional complete
        ("X") slice whose duration is the probe's wire time.
        """
        events = list(self)
        pids: dict[str, int] = {}
        out: list[dict[str, Any]] = []

        def pid_of(node: object) -> int:
            label = node_label(node) or "(global)"
            if label not in pids:
                pids[label] = len(pids) + 1
                out.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pids[label],
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
            return pids[label]

        # Instants: every event, on its span's thread track.
        opened: dict[int, TraceEvent] = {}
        for event in events:
            pid = pid_of(event.node)
            out.append(
                {
                    "ph": "i",
                    "name": event.etype,
                    "pid": pid,
                    "tid": event.span or 0,
                    "ts": event.ts * 1e6,
                    "s": "t",
                    "args": {
                        k: _jsonable(v) for k, v in event.args.items()
                    },
                }
            )
            if event.span is None:
                continue
            if event.etype in ("probe.generated", "probe.sent"):
                opened.setdefault(event.span, event)
            elif event.etype in ("probe.confirmed", "probe.timeout"):
                start = opened.pop(event.span, None)
                if start is not None:
                    out.append(
                        {
                            "ph": "X",
                            "name": f"probe span {event.span}",
                            "pid": pid_of(start.node),
                            "tid": event.span,
                            "ts": start.ts * 1e6,
                            "dur": max(0.0, (event.ts - start.ts) * 1e6),
                            "args": {"outcome": event.etype},
                        }
                    )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": out}, handle)
        return len(events)


def read_jsonl(source: "str | IO[str] | Iterable[str]") -> list[dict]:
    """Load a JSONL trace (as written by :meth:`export_jsonl`).

    Accepts a path, an open file, or any iterable of lines; blank lines
    are skipped.  The analysis helpers accept the returned dicts and
    live :class:`TraceEvent` objects interchangeably.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return [
                json.loads(line)
                for line in handle
                if line.strip()
            ]
    return [json.loads(line) for line in source if line.strip()]
