"""Tests for the incremental probe scheduler (repro.core.schedule).

The load-bearing property: :class:`RoundRobinPolicy` over the
delta-maintained key set emits the *same probe sequence* as the
historical rebuild-per-FlowMod loop (a from-scratch ``_rebuild_cycle``
reference reimplemented here), under randomized churn — while the
scheduler's ``cycle_rebuilds`` counter stays at 1 (mirroring the PR 4
``index_builds`` no-rebuild contract).  Plus policy-specific behavior:
churn-first promotion with bounded starvation, weighted boosts and
their starvation bound.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catching import CATCH_PRIORITY
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.core.schedule import (
    ProbeScheduler,
    RecentChurnFirstPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
    make_policy,
)
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.sim.kernel import Simulator
from repro.switches.switch import apply_flowmod
from repro.topology.generators import star


def _rule(priority: int, dst: int, port: int = 1) -> Rule:
    return Rule(
        priority=priority,
        match=Match.build(nw_dst=dst),
        actions=output(port),
    )


class ReferenceCycler:
    """The historical Monitor cycle: full rebuild on every FlowMod.

    Byte-for-byte reimplementation of the pre-PR-5
    ``Monitor._rebuild_cycle`` + ``_next_cycle_rule`` pair (sans the
    in-flight check): rebuild the key list from the whole table after
    every operation, keep the cursor where it was.
    """

    def __init__(self, table: FlowTable) -> None:
        self.table = table
        self.keys: list[tuple] = []
        self.position = 0
        self.rebuild()

    def rebuild(self) -> None:
        self.keys = [rule.key() for rule in self.table]

    def next(self) -> Rule | None:
        if not self.keys:
            return None
        for _ in range(len(self.keys)):
            self.position = (self.position + 1) % len(self.keys)
            rule = self.table.get(*self.keys[self.position])
            if rule is None:
                continue
            return rule
        return None


def _random_flowmod(rng: random.Random, live: dict) -> FlowMod:
    """One churn op over a bounded (priority, dst) key pool."""
    priority = rng.choice((50, 100, 150, 200))
    dst = 0x0A000000 + rng.randrange(24)
    key_pool = list(live)
    roll = rng.random()
    if live and roll < 0.35:
        priority, dst = rng.choice(key_pool)
        command = FlowModCommand.DELETE_STRICT
    elif live and roll < 0.55:
        priority, dst = rng.choice(key_pool)
        command = FlowModCommand.MODIFY_STRICT
    else:
        command = FlowModCommand.ADD
    mod = FlowMod(
        command=command,
        match=Match.build(nw_dst=dst),
        priority=priority,
        actions=output(1 + rng.randrange(4)),
    )
    if command is FlowModCommand.DELETE_STRICT:
        live.pop((priority, dst), None)
    else:
        live[(priority, dst)] = True
    return mod


class TestRoundRobinEquivalence:
    """Delta maintenance == rebuild-per-FlowMod, probe for probe."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_probe_sequence_identical_under_churn(self, seed):
        rng = random.Random(seed)
        table = FlowTable(check_overlap=False)
        scheduler = ProbeScheduler(policy=RoundRobinPolicy())
        scheduler.rebuild(table)
        reference = ReferenceCycler(table)
        live: dict = {}

        for _ in range(60):
            mod = _random_flowmod(rng, live)
            affected = apply_flowmod(table, mod)
            scheduler.observe_flowmod(mod, affected)
            reference.rebuild()
            assert scheduler.keys() == reference.keys
            for _ in range(rng.randrange(4)):
                ours = scheduler.next_rule(table)
                theirs = reference.next()
                assert (
                    ours is theirs
                ), f"diverged: {ours!r} vs {theirs!r} (seed {seed})"
        # The one construction-time build is the only full iteration.
        assert scheduler.stats.cycle_rebuilds == 1

    def test_no_rebuild_after_250_step_churn_run(self):
        """Regression mirroring PR 4's index_builds: a churn-heavy run
        through a real Monitor must never rebuild the cycle."""
        sim = Simulator()
        net = Network(sim, star(4), seed=7)
        system = MonocleSystem(
            net, config=MonitorConfig(probe_rate=500.0), dynamic=False
        )
        monitor = system.monitor("hub")
        for i in range(8):
            system.preinstall_production_rule(
                "hub", _rule(100, 0x0A000100 + i)
            )
        assert monitor.scheduler.stats.cycle_rebuilds == 1
        rng = random.Random(11)
        live: dict = {}
        for _ in range(250):
            monitor.from_controller(_random_flowmod(rng, live))
        sim.run_for(0.2)
        stats = monitor.scheduler.stats
        assert stats.cycle_rebuilds == 1
        assert stats.keys_added > 0 and stats.keys_removed > 0
        # The scheduler's view tracks the expected table exactly.
        expected_keys = [
            r.key()
            for r in monitor.expected
            if r.priority != CATCH_PRIORITY
        ]
        assert monitor.scheduler.keys() == expected_keys

    def test_busy_keys_are_skipped(self):
        table = FlowTable(check_overlap=False)
        rules = [_rule(100, 0x0A000000 + i) for i in range(3)]
        scheduler = ProbeScheduler()
        for rule in rules:
            table.install(rule)
            scheduler.add(rule)
        busy_key = rules[1].key()
        served = [
            scheduler.next_rule(table, busy=lambda k: k == busy_key)
            for _ in range(4)
        ]
        assert busy_key not in [r.key() for r in served]

    def test_infrastructure_rules_excluded(self):
        scheduler = ProbeScheduler(
            is_infrastructure=lambda r: r.priority == CATCH_PRIORITY
        )
        catch = _rule(CATCH_PRIORITY, 0x0A000001)
        prod = _rule(100, 0x0A000002)
        scheduler.add(catch)
        scheduler.add(prod)
        assert scheduler.keys() == [prod.key()]


class TestRecentChurnFirst:
    def _setup(self, num_rules=12, max_burst=4):
        table = FlowTable(check_overlap=False)
        scheduler = ProbeScheduler(
            policy=RecentChurnFirstPolicy(max_burst=max_burst)
        )
        rules = [_rule(100, 0x0A000000 + i) for i in range(num_rules)]
        for rule in rules:
            table.install(rule)
            scheduler.add(rule)
        return table, scheduler, rules

    def test_touched_rule_jumps_the_queue(self):
        table, scheduler, rules = self._setup()
        hot = rules[-1]
        scheduler.touch(hot.key(), "churn")
        assert scheduler.next_rule(table) is hot
        assert scheduler.stats.scheduler_promotions == 1

    def test_starvation_bounded_full_cycle_completes(self):
        """Under sustained churn the base cycle still visits every
        rule within (max_burst + 1) * N ticks."""
        table, scheduler, rules = self._setup(num_rules=10, max_burst=4)
        served: set = set()
        rng = random.Random(3)
        ticks = 5 * len(rules) + 5
        for _ in range(ticks):
            # Adversarial: re-touch a random rule before every tick.
            scheduler.touch(rng.choice(rules).key(), "churn")
            rule = scheduler.next_rule(table)
            assert rule is not None
            served.add(rule.key())
        assert served == {rule.key() for rule in rules}

    def test_removed_key_is_not_promoted(self):
        table, scheduler, rules = self._setup(num_rules=3)
        doomed = rules[1]
        scheduler.touch(doomed.key(), "churn")
        table.remove(doomed)
        scheduler.discard(doomed.key())
        for _ in range(4):
            rule = scheduler.next_rule(table)
            assert rule is not None and rule.key() != doomed.key()


class TestWeighted:
    def test_boosted_rule_served_more_often(self):
        table = FlowTable(check_overlap=False)
        scheduler = ProbeScheduler(policy=WeightedPolicy())
        rules = [_rule(100, 0x0A000000 + i) for i in range(8)]
        for rule in rules:
            table.install(rule)
            scheduler.add(rule)
        hot = rules[5]
        counts: dict = {}
        for tick in range(64):
            if tick % 8 == 0:
                scheduler.record_alarm(hot.key())
            rule = scheduler.next_rule(table)
            counts[rule.key()] = counts.get(rule.key(), 0) + 1
        assert counts[hot.key()] > max(
            n for key, n in counts.items() if key != hot.key()
        )
        assert scheduler.stats.scheduler_promotions > 0
        assert scheduler.stats.alarm_touches > 0

    def test_every_rule_served_despite_boosts(self):
        """The weight cap bounds starvation: all rules get probed."""
        table = FlowTable(check_overlap=False)
        policy = WeightedPolicy(max_weight=8.0)
        scheduler = ProbeScheduler(policy=policy)
        rules = [_rule(100, 0x0A000000 + i) for i in range(6)]
        for rule in rules:
            table.install(rule)
            scheduler.add(rule)
        served: set = set()
        for tick in range(int(8.0 * len(rules)) + len(rules)):
            scheduler.touch(rules[0].key(), "update")
            rule = scheduler.next_rule(table)
            assert rule is not None
            served.add(rule.key())
        assert served == {rule.key() for rule in rules}

    def test_readd_does_not_resurrect_ghost_entries(self):
        """Regression: generations are globally monotonic, so a rule
        removed and re-added can never revive heap entries from its
        previous incarnation (which would double-serve it and corrupt
        virtual time)."""
        table = FlowTable(check_overlap=False)
        policy = WeightedPolicy()
        scheduler = ProbeScheduler(policy=policy)
        a, b = _rule(100, 0x0A000001), _rule(100, 0x0A000002)
        for rule in (a, b):
            table.install(rule)
            scheduler.add(rule)
        key = a.key()
        for _ in range(2):
            scheduler.record_alarm(key)  # leaves superseded heap ghosts
        scheduler.discard(key)
        scheduler.add(a)
        for _ in range(2):
            scheduler.record_alarm(key)
        live = policy._gen[key]
        matching = [
            entry
            for entry in policy._heap
            if entry[2] == key and entry[1] == live
        ]
        assert len(matching) == 1
        # Serving still rotates through both rules.
        served = {scheduler.next_rule(table).key() for _ in range(6)}
        assert served == {a.key(), b.key()}

    def test_busy_key_does_not_rewind_virtual_time(self):
        """Regression: serving a key whose entry sat below the clock
        while busy must not rewind the stride clock (which would let
        later boosts leapfrog the whole backlog)."""
        table = FlowTable(check_overlap=False)
        policy = WeightedPolicy()
        scheduler = ProbeScheduler(policy=policy)
        rules = [_rule(100, 0x0A000000 + i) for i in range(5)]
        for rule in rules:
            table.install(rule)
            scheduler.add(rule)
        blocked = rules[0].key()
        for _ in range(12):  # clock advances past blocked's pass value
            assert scheduler.next_rule(table, busy=lambda k: k == blocked)
        clock_before = policy._clock
        served = scheduler.next_rule(table)
        assert served is not None and served.key() == blocked
        assert policy._clock >= clock_before

    def test_removed_rule_leaves_the_heap(self):
        table = FlowTable(check_overlap=False)
        scheduler = ProbeScheduler(policy=WeightedPolicy())
        a, b = _rule(100, 0x0A000001), _rule(100, 0x0A000002)
        for rule in (a, b):
            table.install(rule)
            scheduler.add(rule)
        table.remove(a)
        scheduler.discard(a.key())
        for _ in range(4):
            assert scheduler.next_rule(table) is b


class TestPolicyRegistry:
    def test_make_policy_names(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(make_policy("churn_first"), RecentChurnFirstPolicy)
        assert isinstance(make_policy("weighted"), WeightedPolicy)

    def test_unknown_policy_rejected(self):
        try:
            make_policy("nope")
        except ValueError as exc:
            assert "nope" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestMonitorIntegration:
    """The Monitor serves probes through the scheduler end to end."""

    def _system(self, policy: str):
        sim = Simulator()
        net = Network(sim, star(4), seed=5)
        system = MonocleSystem(
            net,
            config=MonitorConfig(probe_rate=500.0),
            dynamic=False,
            probe_policy=policy,
        )
        rules = []
        for i in range(6):
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(net.port_toward["hub"][f"leaf{i % 4}"]),
            )
            system.preinstall_production_rule("hub", rule)
            rules.append(rule)
        return sim, net, system, rules

    def test_per_switch_policy_selection(self):
        sim, net, system, _ = self._system("churn_first")
        assert (
            system.monitor("hub").scheduler.policy.name == "churn_first"
        )

    def test_churn_first_probes_churned_rule_promptly(self):
        sim, net, system, rules = self._system("churn_first")
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        sim.run_for(0.1)
        mod = FlowMod(
            command=FlowModCommand.MODIFY_STRICT,
            match=rules[2].match,
            priority=rules[2].priority,
            actions=output(net.port_toward["hub"]["leaf3"]),
        )
        promotions = monitor.scheduler.stats.scheduler_promotions
        monitor.from_controller(mod)
        sim.run_for(0.05)
        assert monitor.scheduler.stats.scheduler_promotions > promotions

    def test_confirmed_update_feeds_reprobe_hint(self):
        """Dynamic-mode confirmation routes the touched rule's key into
        the scheduler as an update hint; a confirmed deletion (whose
        rule can no longer be probed) carries none."""
        sim = Simulator()
        net = Network(sim, star(4), seed=9)
        system = MonocleSystem(
            net,
            config=MonitorConfig(probe_rate=500.0),
            dynamic=True,
            probe_policy="weighted",
        )
        monitor = system.monitor("hub")
        add = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=0x0A000042),
            priority=120,
            actions=output(net.port_toward["hub"]["leaf0"]),
        )
        system.send_to_switch("hub", add)
        sim.run_for(0.3)
        dynamic = system.dynamic("hub")
        assert dynamic.updates_confirmed == 1
        assert monitor.scheduler.stats.update_touches == 1
        delete = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=add.match,
            priority=add.priority,
        )
        system.send_to_switch("hub", delete)
        sim.run_for(0.5)
        assert dynamic.updates_confirmed == 2
        # The deletion confirmed without a hint: nothing left to probe.
        assert monitor.scheduler.stats.update_touches == 1

    def test_steady_state_still_confirms_under_all_policies(self):
        for policy in ("round_robin", "churn_first", "weighted"):
            sim, net, system, _ = self._system(policy)
            monitor = system.monitor("hub")
            monitor.start_steady_state()
            sim.run_for(0.5)
            assert monitor.probes_confirmed > 0, policy
            assert monitor.alarms == [], policy
