"""Tests for the CNF container and DIMACS I/O."""

import io

import pytest

from repro.sat.cnf import CNF


class TestVariables:
    def test_new_var_sequence(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_new_vars_batch(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]

    def test_ensure_var_grows(self):
        cnf = CNF()
        cnf.ensure_var(10)
        assert cnf.num_vars == 10
        cnf.ensure_var(5)
        assert cnf.num_vars == 10

    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([7, -9])
        assert cnf.num_vars == 9

    def test_negative_initial_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(-1)


class TestClauses:
    def test_clause_iteration_roundtrip(self):
        cnf = CNF()
        clauses = [[1, -2], [3], [-1, 2, -3]]
        cnf.extend(clauses)
        assert list(cnf.clauses()) == clauses
        assert cnf.num_clauses == 3

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_empty_clause_allowed(self):
        cnf = CNF()
        cnf.add_clause([])
        assert list(cnf.clauses()) == [[]]

    def test_add_unit(self):
        cnf = CNF()
        cnf.add_unit(-4)
        assert list(cnf.clauses()) == [[-4]]

    def test_copy_independent(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        dup = cnf.copy()
        dup.add_clause([3])
        assert cnf.num_clauses == 1
        assert dup.num_clauses == 2


class TestDimacs:
    def test_serialize(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 3 2"
        assert "1 -2 0" in text

    def test_roundtrip(self):
        cnf = CNF()
        cnf.extend([[1, -2], [3], [-1, -3]])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert list(parsed.clauses()) == list(cnf.clauses())
        assert parsed.num_vars == cnf.num_vars

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 3 2\n1 2 0\nc mid comment\n-3 0\n"
        cnf = CNF.from_dimacs(text)
        assert list(cnf.clauses()) == [[1, 2], [-3]]
        assert cnf.num_vars == 3

    def test_parse_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        cnf = CNF.from_dimacs(text)
        assert list(cnf.clauses()) == [[1, 2, 3]]

    def test_parse_missing_final_zero(self):
        cnf = CNF.from_dimacs("p cnf 2 1\n1 -2")
        assert list(cnf.clauses()) == [[1, -2]]

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            CNF.from_dimacs("p qbf 2 1\n1 0\n")

    def test_write_dimacs_stream(self):
        cnf = CNF()
        cnf.add_clause([1])
        buffer = io.StringIO()
        cnf.write_dimacs(buffer)
        assert buffer.getvalue() == cnf.to_dimacs()


class TestEvaluate:
    def test_evaluate_true(self):
        cnf = CNF()
        cnf.extend([[1, 2], [-1, 2]])
        assert cnf.evaluate({1: False, 2: True})

    def test_evaluate_false(self):
        cnf = CNF()
        cnf.extend([[1], [2]])
        assert not cnf.evaluate({1: True, 2: False})
