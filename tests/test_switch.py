"""Tests for the simulated switch: control/data plane split, FlowMod
semantics, barriers under each behaviour model, rate limits, faults."""

import pytest

from repro.openflow.actions import output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FlowMod,
    FlowModCommand,
    PacketIn,
    PacketOut,
)
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.packets.craft import craft_packet
from repro.sim.kernel import Simulator
from repro.switches.behavior import (
    FaithfulBehavior,
    PrematureAckBehavior,
    ReorderingBehavior,
    behavior_for,
)
from repro.switches.profiles import HP_5406ZL, IDEAL, OVS, PICA8
from repro.switches.switch import SimulatedSwitch, apply_flowmod


def make_switch(profile=OVS, **kwargs):
    sim = Simulator()
    switch = SimulatedSwitch(sim, switch_id=1, profile=profile, **kwargs)
    received = []
    switch.send_to_controller = received.append
    return sim, switch, received


def add_mod(dst, port, priority=10):
    return FlowMod(
        command=FlowModCommand.ADD,
        match=Match.build(nw_dst=dst),
        priority=priority,
        actions=output(port),
    )


class TestApplyFlowmod:
    def table(self):
        table = FlowTable(check_overlap=False)
        table.install(
            Rule(priority=5, match=Match.build(nw_dst=1), actions=output(1))
        )
        return table

    def test_add(self):
        table = self.table()
        apply_flowmod(table, add_mod(2, 3))
        assert len(table) == 2

    def test_modify_strict_replaces_actions(self):
        table = self.table()
        mod = FlowMod(
            command=FlowModCommand.MODIFY_STRICT,
            match=Match.build(nw_dst=1),
            priority=5,
            actions=output(9),
        )
        apply_flowmod(table, mod)
        assert table.lookup({FieldName.NW_DST: 1}).forwarding_set() == {9}
        assert len(table) == 1

    def test_modify_nonstrict_covers(self):
        table = FlowTable(check_overlap=False)
        table.install(
            Rule(
                priority=5,
                match=Match.build(nw_dst=(0x0A000000, 24)),
                actions=output(1),
            )
        )
        table.install(
            Rule(
                priority=6,
                match=Match.build(nw_dst=(0x0B000000, 24)),
                actions=output(1),
            )
        )
        mod = FlowMod(
            command=FlowModCommand.MODIFY,
            match=Match.build(nw_dst=(0x0A000000, 8)),
            priority=1,
            actions=output(7),
        )
        apply_flowmod(table, mod)
        assert table.lookup(
            {FieldName.NW_DST: 0x0A000001}
        ).forwarding_set() == {7}
        assert table.lookup(
            {FieldName.NW_DST: 0x0B000001}
        ).forwarding_set() == {1}

    def test_modify_without_target_adds(self):
        table = FlowTable(check_overlap=False)
        mod = FlowMod(
            command=FlowModCommand.MODIFY_STRICT,
            match=Match.build(nw_dst=5),
            priority=4,
            actions=output(2),
        )
        apply_flowmod(table, mod)
        assert len(table) == 1

    def test_delete_strict(self):
        table = self.table()
        mod = FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=Match.build(nw_dst=1),
            priority=5,
        )
        removed = apply_flowmod(table, mod)
        assert len(removed) == 1
        assert len(table) == 0

    def test_delete_nonstrict(self):
        table = self.table()
        mod = FlowMod(command=FlowModCommand.DELETE, match=Match.wildcard())
        apply_flowmod(table, mod)
        assert len(table) == 0


class TestControlPlane:
    def test_flowmod_reaches_both_planes(self):
        sim, switch, _ = make_switch()
        switch.receive_message(add_mod(1, 2))
        sim.run_for(1.0)
        assert len(switch.control_table) == 1
        assert len(switch.dataplane) == 1
        assert switch.dataplane_synced

    def test_dataplane_lags_control_plane(self):
        sim, switch, _ = make_switch(profile=HP_5406ZL)
        switch.receive_message(add_mod(1, 2))
        sim.run_for(HP_5406ZL.flowmod_cost + 0.001)
        assert len(switch.control_table) == 1
        assert len(switch.dataplane) == 0  # install latency not elapsed
        sim.run_for(1.0)
        assert len(switch.dataplane) == 1

    def test_serial_processing_rate(self):
        sim, switch, _ = make_switch(profile=HP_5406ZL)
        for i in range(20):
            switch.receive_message(add_mod(i, 1))
        sim.run_for(10 * HP_5406ZL.flowmod_cost + 1e-9)
        assert switch.stats.flowmods_processed == 10

    def test_echo_reply(self):
        sim, switch, received = make_switch()
        switch.receive_message(EchoRequest(xid=77))
        sim.run_for(0.1)
        assert any(isinstance(m, EchoReply) and m.xid == 77 for m in received)

    def test_packetout_emits_on_port(self):
        sim, switch, _ = make_switch()
        emitted = []
        switch.attach_port(3, emitted.append)
        switch.receive_message(PacketOut(payload=b"raw-bytes", out_port=3))
        sim.run_for(0.1)
        assert emitted == [b"raw-bytes"]


class TestBarrierBehaviors:
    def run_barrier_scenario(self, profile):
        sim, switch, received = make_switch(profile=profile)
        switch.receive_message(add_mod(1, 2))
        switch.receive_message(BarrierRequest(xid=5))
        sim.run_for(5.0)
        barrier_times = [
            m for m in received if isinstance(m, BarrierReply) and m.xid == 5
        ]
        assert len(barrier_times) == 1
        return switch

    def test_faithful_barrier_implies_dataplane(self):
        sim, switch, received = make_switch(profile=IDEAL)
        switch.receive_message(add_mod(1, 2))
        switch.receive_message(BarrierRequest(xid=5))
        # Track state at the moment the reply arrives.
        state_at_reply = []
        switch.send_to_controller = lambda m: state_at_reply.append(
            (m, len(switch.dataplane))
        )
        sim.run_for(5.0)
        replies = [s for s in state_at_reply if isinstance(s[0], BarrierReply)]
        assert replies and replies[0][1] == 1

    def test_premature_barrier_races_dataplane(self):
        sim, switch, _ = make_switch(profile=HP_5406ZL)
        state_at_reply = []
        switch.send_to_controller = lambda m: state_at_reply.append(
            (type(m).__name__, len(switch.dataplane))
        )
        switch.receive_message(add_mod(1, 2))
        switch.receive_message(BarrierRequest(xid=5))
        sim.run_for(5.0)
        replies = [s for s in state_at_reply if s[0] == "BarrierReply"]
        assert replies and replies[0][1] == 0  # lied: dataplane empty

    def test_behavior_factory(self):
        from repro.sim.random import DeterministicRandom

        rng = DeterministicRandom(0)
        assert isinstance(behavior_for(PICA8, rng), ReorderingBehavior)
        assert isinstance(behavior_for(HP_5406ZL, rng), PrematureAckBehavior)
        assert isinstance(behavior_for(IDEAL, rng), FaithfulBehavior)


class TestDataPlane:
    def craft(self, dst, vlan=0xFFF):
        return craft_packet(
            {
                FieldName.DL_TYPE: 0x0800,
                FieldName.NW_PROTO: 17,
                FieldName.NW_DST: dst,
                FieldName.DL_VLAN: vlan,
            },
            b"payload",
        )

    def test_forwarding(self):
        sim, switch, _ = make_switch()
        emitted = []
        switch.attach_port(2, emitted.append)
        switch.install_directly(
            Rule(priority=5, match=Match.build(nw_dst=7), actions=output(2))
        )
        switch.inject(self.craft(7), in_port=1)
        sim.run_for(0.1)
        assert len(emitted) == 1
        assert switch.stats.packets_forwarded == 1

    def test_miss_drops(self):
        sim, switch, _ = make_switch()
        switch.inject(self.craft(7), in_port=1)
        sim.run_for(0.1)
        assert switch.stats.packets_dropped == 1

    def test_rewrite_applied_on_wire(self):
        from repro.packets.parse import parse_packet

        sim, switch, _ = make_switch()
        emitted = []
        switch.attach_port(2, emitted.append)
        switch.install_directly(
            Rule(
                priority=5,
                match=Match.build(nw_dst=7),
                actions=output(2, nw_tos=0x19),
            )
        )
        switch.inject(self.craft(7), in_port=1)
        sim.run_for(0.1)
        values, payload = parse_packet(emitted[0])
        assert values[FieldName.NW_TOS] == 0x19
        assert payload == b"payload"

    def test_controller_bound_rule_sends_packetin(self):
        from repro.openflow.actions import CONTROLLER_PORT

        sim, switch, received = make_switch()
        switch.install_directly(
            Rule(
                priority=5,
                match=Match.build(nw_dst=7),
                actions=output(CONTROLLER_PORT),
            )
        )
        switch.inject(self.craft(7), in_port=4)
        sim.run_for(0.1)
        packet_ins = [m for m in received if isinstance(m, PacketIn)]
        assert len(packet_ins) == 1
        assert packet_ins[0].in_port == 4

    def test_packetin_rate_limit(self):
        from repro.openflow.actions import CONTROLLER_PORT
        from repro.switches.profiles import SwitchProfile

        slow = SwitchProfile(
            name="slow",
            flowmod_rate=100,
            packetout_rate=100,
            packetin_rate=10,
            packetin_interference=0.0,
            install_latency=0.0,
            install_jitter=0.0,
            premature_ack=False,
            reorders=False,
        )
        sim, switch, received = make_switch(profile=slow)
        switch.install_directly(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=output(CONTROLLER_PORT),
            )
        )
        for _ in range(50):
            switch.inject(self.craft(7), in_port=1)
        sim.run_for(0.5)
        assert switch.stats.packetins_sent <= 11
        assert switch.stats.packetins_dropped >= 39

    def test_parse_errors_counted(self):
        sim, switch, _ = make_switch()
        switch.inject(b"\x01\x02", in_port=1)
        assert switch.stats.parse_errors == 1


class TestFaults:
    def test_fail_rule_in_dataplane_only(self):
        sim, switch, _ = make_switch()
        rule = Rule(priority=5, match=Match.build(nw_dst=7), actions=output(2))
        switch.install_directly(rule)
        assert switch.fail_rule_in_dataplane(rule)
        assert len(switch.control_table) == 1
        assert len(switch.dataplane) == 0

    def test_corrupt_rule(self):
        sim, switch, _ = make_switch()
        rule = Rule(priority=5, match=Match.build(nw_dst=7), actions=output(2))
        switch.install_directly(rule)
        switch.corrupt_rule_in_dataplane(rule, output(9))
        assert switch.dataplane.lookup(
            {FieldName.NW_DST: 7}
        ).forwarding_set() == {9}
        assert switch.control_table.lookup(
            {FieldName.NW_DST: 7}
        ).forwarding_set() == {2}

    def test_corrupt_missing_rule_raises(self):
        sim, switch, _ = make_switch()
        rule = Rule(priority=5, match=Match.build(nw_dst=7), actions=output(2))
        with pytest.raises(KeyError):
            switch.corrupt_rule_in_dataplane(rule, output(9))

    def test_fail_port_blackholes(self):
        sim, switch, _ = make_switch()
        emitted = []
        switch.attach_port(2, emitted.append)
        switch.install_directly(
            Rule(priority=5, match=Match.wildcard(), actions=output(2))
        )
        switch.fail_port(2)
        switch.inject(
            craft_packet({FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 6}),
            in_port=1,
        )
        sim.run_for(0.1)
        assert emitted == []
        switch.restore_port(2)
        switch.inject(
            craft_packet({FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 6}),
            in_port=1,
        )
        sim.run_for(0.1)
        assert len(emitted) == 1


class TestReordering:
    def test_pica8_can_apply_out_of_order(self):
        # With many installs, the reordering behaviour must produce at
        # least one inversion between issue order and dataplane order.
        sim = Simulator()
        switch = SimulatedSwitch(sim, switch_id=1, profile=PICA8)
        apply_times = {}
        original = switch._apply_to_dataplane

        def spy(mod):
            apply_times[mod.xid] = sim.now
            original(mod)

        switch._apply_to_dataplane = spy
        mods = [add_mod(i, 1) for i in range(30)]
        for mod in mods:
            switch.receive_message(mod)
        sim.run_for(10.0)
        order = [m.xid for m in mods]
        applied = sorted(order, key=lambda x: apply_times[x])
        assert applied != order  # at least one inversion
