"""A CDCL SAT solver (the reproduction's PicoSAT stand-in).

Implements the standard conflict-driven clause learning loop:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* VSIDS-style exponential variable activity with decay (served from a
  lazy max-heap so branching stays cheap on large variable spaces),
* Luby-sequence restarts,
* phase saving.

The solver is deliberately self-contained (lists of ints, no numpy) so
its behaviour is easy to audit and to cross-check against the
brute-force reference in :mod:`repro.sat.brute`.

Beyond the one-shot `solve(cnf)` entry point, the solver supports
*incremental* use — the substrate of the per-switch probe-generation
context (:mod:`repro.sat.incremental`):

* clauses may be added between `solve` calls (:meth:`add_clause`),
* assumptions are asserted as their own decision levels (the MiniSat
  discipline), so every learned clause is implied by the clause
  database alone and can safely be kept across calls,
* the trail is rewound to level 0 after every call, leaving only
  formula-implied assignments behind.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sat.cnf import CNF, Lit


@dataclass
class SatResult:
    """Outcome of a solve call.

    Attributes:
        satisfiable: True / False, or None if the budget ran out.
        assignment: var -> bool for a satisfying model (only when SAT).
        conflicts: number of conflicts encountered.
        decisions: number of branching decisions made.
        propagations: number of literals assigned by unit propagation.
        learned_clauses: number of clauses learned.
    """

    satisfiable: bool | None
    assignment: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned_clauses: int = 0


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if i == (1 << k) - 1:
        return 1 << (k - 1)
    return _luby(i - (1 << (k - 1)) + 1)


class SatSolver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` formula.

    The constructor loads the formula; further clauses may be appended
    with :meth:`add_clause` and variables allocated with
    :meth:`new_var` between `solve` calls.
    """

    _UNASSIGNED = 0
    _TRUE = 1
    _FALSE = -1

    def __init__(
        self,
        cnf: CNF,
        enable_learning: bool = True,
        enable_vsids: bool = True,
        restart_base: int = 64,
        check_models: bool = True,
    ) -> None:
        self.enable_learning = enable_learning
        self.enable_vsids = enable_vsids
        self.restart_base = restart_base
        #: Run the O(database) defensive model check on every SAT
        #: answer.  Incremental callers whose results are verified
        #: independently (probe generation re-simulates Table 1 on the
        #: decoded model) disable it: on a persistent clause database
        #: the scan costs more than the solve it double-checks.
        self.check_models = check_models

        self.num_vars = 0
        # Clause database: list of literal lists.  Original clauses and
        # learned clauses share it; learned ones are appended.
        self.clauses: list[list[int]] = []
        #: Indices into :attr:`clauses` holding learned (non-unit)
        #: lemmas; incremental compaction uses this to carry solver
        #: warmth across database rebuilds.
        self.learned_idx: list[int] = []
        self._contradiction = False
        #: Unit clauses not yet asserted on the trail (consumed by solve).
        self._pending_units: list[int] = []
        #: All unit clauses ever added (for the defensive model check).
        self._units: list[int] = []
        #: Number of currently assigned variables; lets the branching
        #: loop detect "model found" in O(1) instead of scanning the
        #: whole variable space once per solve.
        self._num_assigned = 0
        #: Bumped whenever the formula changes (clauses or variables);
        #: callers memoizing solve results key on it.
        self.generation = 0

        # Assignment state (index 0 unused).
        self.values: list[int] = [self._UNASSIGNED]
        self.levels: list[int] = [0]
        self.reasons: list[list[int] | None] = [None]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.phase: list[bool] = [False]

        # Watched literals: watch lit -> clause indices.
        self.watches: dict[int, list[int]] = {}

        # VSIDS activity, served by a lazy max-heap of (-act, var).
        self.activity: list[float] = [0.0]
        self.act_inc = 1.0
        self.act_decay = 0.95
        self._heap: list[tuple[float, int]] = []

        self.stats = SatResult(satisfiable=None)

        self.ensure_num_vars(cnf.num_vars)
        for clause in cnf.clauses():
            self.add_clause(clause)

    # ----- setup helpers -------------------------------------------------

    @staticmethod
    def _simplify_clause(clause: Sequence[int]) -> list[int] | None:
        """Drop duplicate literals; return None for tautologies."""
        seen: set[int] = set()
        out: list[int] = []
        for lit in clause:
            if -lit in seen:
                return None
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        return out

    def _watch(self, lit: int, clause_idx: int) -> None:
        self.watches.setdefault(lit, []).append(clause_idx)

    # ----- incremental interface ----------------------------------------

    def ensure_num_vars(self, count: int) -> None:
        """Grow the variable space to at least ``count`` variables."""
        if self.num_vars < count:
            self.generation += 1
        while self.num_vars < count:
            self.num_vars += 1
            self.values.append(self._UNASSIGNED)
            self.levels.append(0)
            self.reasons.append(None)
            self.phase.append(False)
            self.activity.append(0.0)
            heapq.heappush(self._heap, (0.0, self.num_vars))

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.ensure_num_vars(self.num_vars + 1)
        return self.num_vars

    def learned_clauses(self) -> list[list[int]]:
        """The non-unit lemmas currently in the database."""
        return [self.clauses[idx] for idx in self.learned_idx]

    def clone(self) -> "SatSolver":
        """An independent copy sharing no mutable state.

        Legal only at decision level 0 (between ``solve`` calls, where
        the solver always rests).  Clause lists are copied one level
        deep because propagation reorders their literals in place;
        level-0 reasons are dropped (they are never resolved on — the
        first-UIP walk stops at the current decision level).
        """
        if self.trail_lim:
            raise RuntimeError("cannot clone mid-solve")
        dup = SatSolver.__new__(SatSolver)
        dup.enable_learning = self.enable_learning
        dup.enable_vsids = self.enable_vsids
        dup.restart_base = self.restart_base
        dup.check_models = self.check_models
        dup.num_vars = self.num_vars
        dup.clauses = [list(clause) for clause in self.clauses]
        dup.learned_idx = list(self.learned_idx)
        dup._contradiction = self._contradiction
        dup._pending_units = list(self._pending_units)
        dup._units = list(self._units)
        dup._num_assigned = self._num_assigned
        dup.generation = self.generation
        dup.values = list(self.values)
        dup.levels = list(self.levels)
        reasons: list[list[int] | None] = [None] * (self.num_vars + 1)
        dup.reasons = reasons
        dup.trail = list(self.trail)
        dup.trail_lim = []
        dup.phase = list(self.phase)
        dup.watches = {
            lit: list(indices) for lit, indices in self.watches.items()
        }
        dup.activity = list(self.activity)
        dup.act_inc = self.act_inc
        dup.act_decay = self.act_decay
        dup._heap = list(self._heap)
        dup.stats = SatResult(satisfiable=None)
        return dup

    def add_clause(self, clause: Iterable[Lit]) -> None:
        """Append one clause to the database.

        Legal at any time between `solve` calls (the solver is always at
        decision level 0 then).  Tautologies are dropped; an empty
        clause makes the formula permanently unsatisfiable.

        The clause is evaluated against the permanent level-0 trail
        left behind by earlier `solve` calls: literals already false
        there can never help and are removed, a literal already true
        makes the clause redundant.  Without this, a clause whose two
        watched literals were falsified in a *previous* call would
        never fire a watch event — `solve` does not re-propagate the
        old trail — and the solver would silently ignore it.
        """
        self.generation += 1
        unique = self._simplify_clause(list(clause))
        if unique is None:
            return  # tautology
        for lit in unique:
            self.ensure_num_vars(abs(lit))
        live: list[int] = []
        for lit in unique:
            value = self._lit_value(lit)
            if value == self._TRUE:
                return  # satisfied by a formula-implied fact
            if value == self._UNASSIGNED:
                live.append(lit)
        if not live:
            self._contradiction = True
        elif len(live) == 1:
            self._units.append(live[0])
            self._pending_units.append(live[0])
        else:
            self.clauses.append(live)
            idx = len(self.clauses) - 1
            self._watch(live[0], idx)
            self._watch(live[1], idx)

    # ----- assignment ------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self.values[abs(lit)]
        if value == self._UNASSIGNED:
            return self._UNASSIGNED
        return value if lit > 0 else -value

    def _assign(self, lit: int, reason: list[int] | None) -> None:
        var = abs(lit)
        self.values[var] = self._TRUE if lit > 0 else self._FALSE
        self.levels[var] = self._decision_level()
        self.reasons[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        self._num_assigned += 1
        self.stats.propagations += 1

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # ----- propagation ------------------------------------------------------

    def _propagate(self, queue_start: int) -> list[int] | None:
        """Propagate from trail position; return conflicting clause or None."""
        i = queue_start
        while i < len(self.trail):
            lit = self.trail[i]
            i += 1
            falsified = -lit
            watch_list = self.watches.get(falsified)
            if not watch_list:
                continue
            new_watch_list: list[int] = []
            j = 0
            while j < len(watch_list):
                clause_idx = watch_list[j]
                j += 1
                clause = self.clauses[clause_idx]
                # Normalize: put the falsified watch at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == self._TRUE:
                    new_watch_list.append(clause_idx)
                    continue
                # Find a replacement watch.
                replaced = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != self._FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause_idx)
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                new_watch_list.append(clause_idx)
                if self._lit_value(first) == self._FALSE:
                    new_watch_list.extend(watch_list[j:])
                    self.watches[falsified] = new_watch_list
                    return clause
                self._assign(first, clause)
            self.watches[falsified] = new_watch_list
        return None

    # ----- conflict analysis ---------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis.

        Returns (learned_clause, backjump_level) with the asserting
        literal first in the learned clause.  Because assumptions are
        decisions, the learned clause is always a resolvent of database
        clauses — implied by the formula alone — so keeping it across
        `solve` calls with different assumptions is sound.
        """
        level = self._decision_level()
        seen = [False] * (self.num_vars + 1)
        learned: list[int] = []
        counter = 0
        lit = 0
        reason: list[int] = conflict
        index = len(self.trail)

        while True:
            for reason_lit in reason:
                var = abs(reason_lit)
                if reason_lit == lit or seen[var]:
                    continue
                seen[var] = True
                self._bump(var)
                if self.levels[var] >= level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                trail_lit = self.trail[index]
                if seen[abs(trail_lit)]:
                    break
            lit = trail_lit
            counter -= 1
            if counter == 0:
                break
            var_reason = self.reasons[abs(lit)]
            assert var_reason is not None, "decision reached before UIP"
            reason = var_reason
        learned.insert(0, -lit)

        if len(learned) == 1:
            return learned, 0
        backjump = max(self.levels[abs(lit)] for lit in learned[1:])
        # Put a literal from the backjump level in watch position 1.
        for i in range(1, len(learned)):
            if self.levels[abs(learned[i])] == backjump:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, backjump

    def _bump(self, var: int) -> None:
        if not self.enable_vsids:
            return
        act = self.activity[var] + self.act_inc
        self.activity[var] = act
        if act > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.act_inc *= 1e-100
            self._rebuild_heap()
        else:
            heapq.heappush(self._heap, (-act, var))

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-self.activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self.values[v] == self._UNASSIGNED
        ]
        heapq.heapify(self._heap)

    def _decay(self) -> None:
        if self.enable_vsids:
            self.act_inc /= self.act_decay

    def _backjump(self, level: int) -> None:
        while self._decision_level() > level:
            limit = self.trail_lim.pop()
            while len(self.trail) > limit:
                lit = self.trail.pop()
                var = abs(lit)
                self.values[var] = self._UNASSIGNED
                self.reasons[var] = None
                self._num_assigned -= 1
                heapq.heappush(self._heap, (-self.activity[var], var))

    # ----- branching -----------------------------------------------------

    def _pick_branch(self) -> int:
        # The assigned counter makes "model found" O(1); without it the
        # loop ended every solve with an O(vars) confirmation scan (and
        # the no-VSIDS ablation paid it on every single decision).
        if self._num_assigned == self.num_vars:
            return 0
        # With VSIDS off all activities stay 0.0, so the lazy max-heap
        # degenerates to serving the lowest unassigned variable index —
        # the same order the old linear scan produced.
        while True:
            if not self._heap:
                # Defensive: the lazy heap lost an unassigned variable
                # (cannot happen while the push invariants hold).
                self._rebuild_heap()
                if not self._heap:
                    raise AssertionError(
                        "unassigned variables exist but heap is empty"
                    )
            neg_act, var = heapq.heappop(self._heap)
            if self.values[var] != self._UNASSIGNED:
                continue
            if -neg_act != self.activity[var]:
                continue  # stale entry; a fresher one exists
            return var if self.phase[var] else -var

    # ----- main loop -------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: int | None = None,
    ) -> SatResult:
        """Run the CDCL loop.

        Args:
            assumptions: literals asserted for this call only.  Each is
                given its own decision level (the MiniSat discipline) so
                learned clauses remain valid when the assumptions change
                on the next call.
            max_conflicts: optional conflict budget; exceeding it returns
                ``satisfiable=None``.

        The solver backtracks to decision level 0 before returning, so
        it can be reused: clauses added and lemmas learned in earlier
        calls are retained; assumption effects are not.
        """
        self.stats = SatResult(satisfiable=None)
        assumption_list = [lit for lit in assumptions]
        if self._contradiction:
            self.stats.satisfiable = False
            return self.stats
        self._backjump(0)

        # Flush unit clauses at level 0 (their effects are permanent).
        queue_start = len(self.trail)
        pending, self._pending_units = self._pending_units, []
        for lit in pending:
            value = self._lit_value(lit)
            if value == self._FALSE:
                self._contradiction = True
                self.stats.satisfiable = False
                return self.stats
            if value == self._UNASSIGNED:
                self._assign(lit, None)

        restarts = 0
        conflicts_until_restart = self.restart_base * _luby(1)

        while True:
            conflict = self._propagate(queue_start)
            queue_start = len(self.trail)
            if conflict is not None:
                self.stats.conflicts += 1
                if self._decision_level() == 0:
                    # Conflict among formula-implied facts: permanent.
                    self._contradiction = True
                    self.stats.satisfiable = False
                    return self.stats
                if (
                    max_conflicts is not None
                    and self.stats.conflicts > max_conflicts
                ):
                    self.stats.satisfiable = None
                    self._backjump(0)
                    return self.stats
                if self.enable_learning:
                    learned, backjump = self._analyze(conflict)
                    self._backjump(backjump)
                    if len(learned) == 1:
                        value = self._lit_value(learned[0])
                        if value == self._FALSE:
                            # Unit lemma contradicts a level-0 fact.
                            self._contradiction = True
                            self.stats.satisfiable = False
                            self._backjump(0)
                            return self.stats
                        if value == self._UNASSIGNED:
                            self._assign(learned[0], None)
                    else:
                        self.clauses.append(learned)
                        idx = len(self.clauses) - 1
                        self.learned_idx.append(idx)
                        self._watch(learned[0], idx)
                        self._watch(learned[1], idx)
                        self._assign(learned[0], learned)
                        self.stats.learned_clauses += 1
                    self._decay()
                else:
                    # Chronological backtracking: flip the last decision.
                    if self._decision_level() <= len(assumption_list):
                        # The would-be flip target is an assumption: the
                        # formula is UNSAT under these assumptions.
                        self.stats.satisfiable = False
                        self._backjump(0)
                        return self.stats
                    limit = self.trail_lim[-1]
                    decision = self.trail[limit]
                    self._backjump(self._decision_level() - 1)
                    self._assign(-decision, [-decision])
                # Resume propagation AT the literal just asserted — it has
                # not been propagated yet.
                queue_start = len(self.trail) - 1
                conflicts_until_restart -= 1
                if self.enable_learning and conflicts_until_restart <= 0:
                    restarts += 1
                    conflicts_until_restart = self.restart_base * _luby(
                        restarts + 1
                    )
                    self._backjump(0)
                    queue_start = 0
                continue

            # Assert the next assumption, one decision level each.
            level = self._decision_level()
            if level < len(assumption_list):
                lit = assumption_list[level]
                value = self._lit_value(lit)
                if value == self._FALSE:
                    # Incompatible with the formula or an earlier
                    # assumption: UNSAT *under these assumptions* only.
                    self.stats.satisfiable = False
                    self._backjump(0)
                    return self.stats
                self.trail_lim.append(len(self.trail))
                if value == self._UNASSIGNED:
                    self._assign(lit, None)
                    queue_start = len(self.trail) - 1
                # Already-true assumptions get a dummy level so that
                # assumption index == decision level stays invariant.
                continue

            branch = self._pick_branch()
            if branch == 0:
                assignment = {
                    var: self.values[var] == self._TRUE
                    for var in range(1, self.num_vars + 1)
                }
                if self.check_models:
                    self._assert_model(assignment)
                self.stats.satisfiable = True
                self.stats.assignment = assignment
                self._backjump(0)
                return self.stats
            self.trail_lim.append(len(self.trail))
            self.stats.decisions += 1
            self._assign(branch, None)

    def _assert_model(self, assignment: dict[int, bool]) -> None:
        """Defensive final check: the returned model satisfies every
        original clause.  A violation is a solver bug, not user error."""
        for clause in self.clauses:
            if not any(
                (lit > 0) == assignment[abs(lit)] for lit in clause
            ):
                raise AssertionError(
                    f"solver produced an invalid model; clause {clause} "
                    "unsatisfied"
                )
        for lit in self._units:
            if (lit > 0) != assignment[abs(lit)]:
                raise AssertionError(
                    f"solver produced an invalid model; unit {lit} violated"
                )


def solve(cnf: CNF, **kwargs) -> SatResult:
    """One-shot convenience wrapper: build a solver and run it."""
    return SatSolver(cnf, **kwargs).solve()
