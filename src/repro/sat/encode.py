"""CNF encoding building blocks (paper Appendix B).

The probe-generation compiler needs a handful of formula operations that
stay polynomial when converted to CNF:

* conjunction of clause lists — concatenation;
* disjunction — Tseitin transform with fresh selector variables rather
  than distribution (which blows up exponentially);
* negation — only of conjunctions of literals / single clauses, which is
  all the compiler requires;
* the if-then-else *chain* encoding of the Distinguish constraint,
  mimicking TCAM priority evaluation, using the quadratic construction of
  Velev cited by the paper.

Each helper appends clauses to a shared :class:`~repro.sat.cnf.CNF` and
returns, where meaningful, a literal that is true iff the encoded
sub-formula holds (equisatisfiability via Tseitin).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.sat.cnf import Lit


class ClauseSink(Protocol):
    """Where encode helpers put clauses.

    Satisfied structurally by :class:`~repro.sat.cnf.CNF` and by the
    incremental solver adapter (:class:`~repro.core.constraints.
    SolverSink`), so the same helpers target a throwaway formula or a
    persistent solver context.
    """

    def new_var(self) -> int: ...

    def add_clause(self, literals: Sequence[Lit]) -> None: ...

    def add_unit(self, lit: Lit) -> None: ...


def clause_and(cnf: ClauseSink, literals: Sequence[Lit]) -> Lit:
    """Fresh literal ``s`` with ``s <-> AND(literals)``.

    Empty input yields a literal constrained to true.
    """
    s = cnf.new_var()
    if not literals:
        cnf.add_unit(s)
        return s
    # s -> li  for each i
    for lit in literals:
        cnf.add_clause((-s, lit))
    # (l1 & ... & ln) -> s
    cnf.add_clause([s] + [-lit for lit in literals])
    return s


def clause_or(cnf: ClauseSink, literals: Sequence[Lit]) -> Lit:
    """Fresh literal ``s`` with ``s <-> OR(literals)``.

    Empty input yields a literal constrained to false.
    """
    s = cnf.new_var()
    if not literals:
        cnf.add_unit(-s)
        return s
    # li -> s  for each i
    for lit in literals:
        cnf.add_clause((-lit, s))
    # s -> (l1 | ... | ln)
    cnf.add_clause([-s] + list(literals))
    return s


def negate_clause(literals: Sequence[Lit]) -> list[list[Lit]]:
    """CNF of ``NOT(l1 | ... | ln)``: the unit clauses ``{-li}``."""
    return [[-lit] for lit in literals]


def negate_conjunction(literals: Sequence[Lit]) -> list[Lit]:
    """CNF (single clause) of ``NOT(l1 & ... & ln)``: ``(-l1 | ... | -ln)``."""
    return [-lit for lit in literals]


def at_most_one(cnf: ClauseSink, literals: Sequence[Lit]) -> None:
    """Pairwise at-most-one constraint over ``literals``."""
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            cnf.add_clause((-literals[i], -literals[j]))


def implies(cnf: ClauseSink, antecedent: Lit, consequent: Lit) -> None:
    """Add ``antecedent -> consequent``."""
    cnf.add_clause((-antecedent, consequent))


def ite_chain(
    cnf: ClauseSink,
    branches: Sequence[tuple[Lit, Lit]],
    else_lit: Lit,
    max_segment: int = 16,
) -> Lit:
    """Encode ``s = if(i1,t1, if(i2,t2, ... , else))`` and return ``s``.

    ``branches`` is a list of ``(condition_lit, then_lit)`` pairs in
    priority order — exactly the shape of the Distinguish constraint,
    where condition ``i_k`` is "probe matches lower-priority rule k" and
    ``t_k`` is "rule k's outcome differs from the probed rule's".

    Uses the quadratic Velev construction from Appendix B.  Because the
    construction is quadratic in the number of branches, long chains are
    split into segments of ``max_segment`` branches, each segment's tail
    replaced by a fresh variable (the appendix's "substituting some
    postfix of the chain by a fresh variable").
    """
    if not branches:
        return else_lit
    if len(branches) > max_segment:
        head = branches[:max_segment]
        tail_lit = ite_chain(
            cnf, branches[max_segment:], else_lit, max_segment=max_segment
        )
        return ite_chain(cnf, head, tail_lit, max_segment=max_segment)

    s = cnf.new_var()
    # Velev: for branch k with guard i_k and value t_k, with all earlier
    # guards false:
    #   (i1..ik-1 false, ik true) -> (s <-> tk)
    # realized as two clauses per branch; plus two for the else branch.
    prefix: list[Lit] = []  # literals i1, i2, ... of earlier branches
    for cond, then in branches:
        cnf.add_clause(prefix + [-cond, -then, s])
        cnf.add_clause(prefix + [-cond, then, -s])
        prefix.append(cond)
    cnf.add_clause(prefix + [-else_lit, s])
    cnf.add_clause(prefix + [else_lit, -s])
    return s


def assert_ite_chain(
    cnf: ClauseSink,
    branches: Sequence[tuple[Lit, "bool | Lit"]],
    else_value: "bool | Lit",
) -> None:
    """Assert ``If(g1,v1, If(g2,v2, ..., else)) = true`` in linear size.

    ``branches`` is a list of ``(guard_lit, value)`` pairs in priority
    order; values may be constants (``True``/``False``) or literals.

    Unlike the quadratic constructions (:func:`ite_chain`, and the
    clause-per-branch prefix expansion it replaced), this uses one fresh
    *prefix* variable per branch: ``q_k`` is forced true exactly when
    guards ``1..k`` are all false (one-sided Plaisted–Greenbaum
    direction, sufficient because the chain is only asserted, never
    negated), giving 2 clauses of <= 3 literals per branch:

        q_{k-1} & g_k  -> v_k        (the branch fires)
        q_{k-1} & !g_k -> q_k        (the prefix stays all-false)
        q_n -> else                  (no guard fired)

    ``cnf`` only needs ``new_var``/``add_clause``, so incremental
    solver adapters work as well as a plain :class:`CNF`.
    """
    prev_q: Lit | None = None  # None encodes the constant-true prefix
    for guard, value in branches:
        if value is not True:
            clause: list[Lit] = [] if prev_q is None else [-prev_q]
            clause.append(-guard)
            if value is not False:
                clause.append(value)
            cnf.add_clause(clause)
        q = cnf.new_var()
        clause = [] if prev_q is None else [-prev_q]
        clause.extend((guard, q))
        cnf.add_clause(clause)
        prev_q = q
    if else_value is not True:
        clause = [] if prev_q is None else [-prev_q]
        if else_value is not False:
            clause.append(else_value)
        cnf.add_clause(clause)


def xor_lit(cnf: ClauseSink, a: Lit, b: Lit) -> Lit:
    """Fresh literal ``s`` with ``s <-> (a XOR b)``."""
    s = cnf.new_var()
    cnf.add_clause((-s, a, b))
    cnf.add_clause((-s, -a, -b))
    cnf.add_clause((s, -a, b))
    cnf.add_clause((s, a, -b))
    return s


def constant(cnf: ClauseSink, value: bool) -> Lit:
    """Fresh literal pinned to ``value``."""
    s = cnf.new_var()
    cnf.add_unit(s if value else -s)
    return s
