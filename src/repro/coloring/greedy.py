"""Greedy vertex-coloring heuristics.

Used for large graphs (the paper falls back to a greedy heuristic for
strategy 2 on Rocketfuel, where its ILP ran out of memory) and as the
upper-bound seed for the exact branch-and-bound solver.
"""

from __future__ import annotations

import enum

import networkx as nx


class GreedyOrder(str, enum.Enum):
    """Vertex orderings for the greedy coloring sweep."""

    LARGEST_FIRST = "largest_first"
    DSATUR = "dsatur"
    NATURAL = "natural"


def greedy_coloring(
    graph: nx.Graph, order: GreedyOrder = GreedyOrder.DSATUR
) -> dict:
    """Proper coloring via a greedy sweep; returns node -> color (0-based).

    DSATUR picks the node with the most distinctly-colored neighbors
    next; largest-first sorts by degree once.  Both are classical
    heuristics surveyed in the paper's coloring reference [18].
    """
    if order is GreedyOrder.DSATUR:
        return _dsatur(graph)
    if order is GreedyOrder.LARGEST_FIRST:
        nodes = sorted(graph.nodes, key=lambda n: -graph.degree[n])
    else:
        nodes = list(graph.nodes)
    return _sweep(graph, nodes)


def _sweep(graph: nx.Graph, nodes: list) -> dict:
    colors: dict = {}
    for node in nodes:
        used = {colors[nbr] for nbr in graph.neighbors(node) if nbr in colors}
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


def _dsatur(graph: nx.Graph) -> dict:
    colors: dict = {}
    saturation: dict = {node: set() for node in graph.nodes}
    uncolored = set(graph.nodes)
    while uncolored:
        # Highest saturation; break ties by degree, then by node repr for
        # determinism across runs.
        node = max(
            uncolored,
            key=lambda n: (len(saturation[n]), graph.degree[n], repr(n)),
        )
        used = saturation[node]
        color = 0
        while color in used:
            color += 1
        colors[node] = color
        uncolored.discard(node)
        for nbr in graph.neighbors(node):
            if nbr in uncolored:
                saturation[nbr].add(color)
    return colors
