"""The observer facade: one object every layer publishes through.

:class:`Observer` bundles a :class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.metrics.MetricsRegistry`, a span-id allocator and a
clock binding.  Components hold an ``obs`` attribute and guard every
publication site with ``if self.obs.enabled:`` — with the default
:class:`NullObserver` (:data:`NULL_OBSERVER`), the disabled path is a
single attribute read and a falsy test, nothing else (no argument
construction, no dict lookups; regression-gated by
``BENCH_obs.json``).

:meth:`Observer.install` binds the observer to a
:class:`~repro.sim.kernel.Simulator`: the clock becomes the sim clock
(every event and metric is stamped with *simulation* time) and, when a
``snapshot_interval`` is configured, the kernel's event-dispatch hook
drives periodic metric snapshots.  Snapshots ride the hook instead of
self-rescheduling timer events so an idle deployment's event queue can
still drain — the same reason the fleet's re-dedupe timer arms lazily.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder


class Observer:
    """Live tracing + metrics, stamped with simulation time.

    Args:
        trace_capacity: ring-buffer bound of the trace recorder.
        snapshot_interval: sim seconds between metric snapshots; None
            (or 0) disables periodic snapshots (explicit
            :meth:`snapshot_now` calls still work).
    """

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 65536,
        snapshot_interval: float | None = None,
    ) -> None:
        if snapshot_interval is not None and snapshot_interval < 0:
            raise ValueError(
                f"snapshot_interval must be >= 0: {snapshot_interval}"
            )
        self.trace = TraceRecorder(capacity=trace_capacity)
        self.metrics = MetricsRegistry()
        self.snapshot_interval = snapshot_interval or None
        self._clock: Callable[[], float] = lambda: 0.0
        self._spans = 0
        self._next_snapshot: float | None = None

    # ----- clock and spans --------------------------------------------------

    def now(self) -> float:
        """The bound clock's current (simulation) time."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Stamp subsequent events/snapshots with ``clock()``."""
        self._clock = clock

    def next_span(self) -> int:
        """A fresh span id (one probe's or one update's lifecycle)."""
        self._spans += 1
        return self._spans

    # ----- publication --------------------------------------------------------

    def emit(
        self,
        etype: str,
        node: object = None,
        span: int | None = None,
        **args: Any,
    ) -> None:
        """Record one trace event at the current sim time."""
        self.trace.record(self._clock(), etype, node, span, args)

    # ----- simulator wiring -----------------------------------------------------

    def install(self, sim: Any) -> None:
        """Bind to a simulator: sim-time clock + snapshot pacing.

        ``sim`` is anything with ``.now`` and (for snapshots)
        ``set_dispatch_hook`` — in practice a
        :class:`~repro.sim.kernel.Simulator`; typed loosely so this
        package stays dependency-free.
        """
        prop = getattr(type(sim), "now", None)
        if isinstance(prop, property) and prop.fget is not None:
            # Bind the property getter directly: one Python call per
            # event stamp instead of lambda + property dispatch.
            self.bind_clock(prop.fget.__get__(sim))
        else:
            self.bind_clock(lambda: sim.now)
        if self.snapshot_interval:
            self._next_snapshot = sim.now  # t=0 baseline snapshot
            sim.set_dispatch_hook(self._on_dispatch)

    def _on_dispatch(self, ts: float) -> None:
        """Kernel hook: snapshot each time sim time crosses a boundary."""
        due = self._next_snapshot
        if due is None or ts < due:
            return
        interval = self.snapshot_interval
        assert interval is not None
        while due <= ts:
            self.metrics.snapshot(due)
            due += interval
        self._next_snapshot = due

    def snapshot_now(self) -> dict[str, Any]:
        """Take one snapshot at the current sim time."""
        return self.metrics.snapshot(self._clock())


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry:
    """Metrics sink that swallows everything (cold-path safety net)."""

    __slots__ = ()
    snapshots: list[dict[str, Any]] = []

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        pass

    def family_total(self, name: str) -> float:
        return 0.0

    def snapshot(self, ts: float) -> dict[str, Any]:
        return {"ts": ts, "counters": {}, "gauges": {}, "histograms": {}}

    def prometheus_text(self) -> str:
        return ""


class NullObserver:
    """The default, disabled observer.

    ``enabled`` is False, so correctly guarded hot paths never call
    anything here; the methods exist (as no-ops) so unguarded cold
    paths stay safe too.  One module-level instance
    (:data:`NULL_OBSERVER`) is shared by every component.
    """

    enabled = False

    def __init__(self) -> None:
        self.trace = TraceRecorder(capacity=1)
        self.metrics: Any = _NullRegistry()
        self.snapshot_interval = None

    def now(self) -> float:
        return 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def next_span(self) -> int:
        return 0

    def emit(
        self,
        etype: str,
        node: object = None,
        span: int | None = None,
        **args: Any,
    ) -> None:
        pass

    def install(self, sim: Any) -> None:
        pass

    def snapshot_now(self) -> dict[str, Any]:
        return self.metrics.snapshot(0.0)


#: The shared disabled observer every component defaults to.
NULL_OBSERVER = NullObserver()
