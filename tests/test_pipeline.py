"""Tests for probe pipelining (PR 10): reserved-value slot pools,
windowed steady-state monitoring, clamping, and promotion grace."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catching import (
    ReservedValuePool,
    plan_catching_rules,
)
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.openflow.actions import output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, next_xid
from repro.openflow.rule import Rule
from repro.network import Network
from repro.sim.kernel import Simulator
from repro.switches.profiles import OVS, SwitchProfile
from repro.topology.generators import star


def triangle():
    return nx.Graph([("a", "b"), ("b", "c"), ("a", "c")])


# ----- reserved-value pools ---------------------------------------------


class TestReservedValuePool:
    def pool(self):
        return ReservedValuePool(
            FieldName.DL_VLAN, (0xF00, 0xF03, 0xF06)
        )

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ReservedValuePool(FieldName.DL_VLAN, ())

    def test_allocates_lowest_first(self):
        pool = self.pool()
        assert pool.canonical == 0xF00
        assert pool.allocate() == 0xF00
        assert pool.allocate() == 0xF03
        assert pool.allocate() == 0xF06

    def test_exhaustion_counts_not_raises(self):
        pool = self.pool()
        for _ in range(3):
            assert pool.allocate() is not None
        assert pool.allocate() is None
        assert pool.allocate() is None
        assert pool.overflows == 2
        assert pool.in_use == 3

    def test_release_recycles(self):
        pool = self.pool()
        pool.allocate(), pool.allocate()
        pool.release(0xF00)
        # Lowest-free preference again after recycling.
        assert pool.allocate() == 0xF00
        assert pool.in_use == 2

    def test_release_foreign_value_rejected(self):
        with pytest.raises(ValueError):
            self.pool().release(0xABC)

    def test_double_release_rejected(self):
        pool = self.pool()
        value = pool.allocate()
        pool.release(value)
        with pytest.raises(ValueError):
            pool.release(value)


# ----- slot-aware catching plans ----------------------------------------


class TestPlanSlots:
    def test_slot_values_globally_distinct(self):
        graph = nx.erdos_renyi_graph(12, 0.3, seed=6)
        plan = plan_catching_rules(graph, strategy=1, slots=4)
        assert plan.slots == 4
        all_values = [
            v for node in graph.nodes for v in plan.probe_values(node)
        ]
        # Distinct (slot, color) pairs map to distinct wire values, so
        # two in-flight probes can never be mis-attributed — even
        # across switches.
        colors = {plan.color_of[n] for n in graph.nodes}
        assert len(set(all_values)) == 4 * len(colors)

    def test_slot_zero_is_classic_value(self):
        plan1 = plan_catching_rules(triangle(), strategy=1)
        plan4 = plan_catching_rules(triangle(), strategy=1, slots=4)
        for node in ("a", "b", "c"):
            assert plan4.value1(node, slot=0) == plan1.value1(node)

    def test_single_slot_catching_rules_unchanged(self):
        plan1 = plan_catching_rules(triangle(), strategy=1)
        assert plan1.slots == 1
        explicit = plan_catching_rules(triangle(), strategy=1, slots=1)
        for node in ("a", "b", "c"):
            # Cookies are globally sequential; compare the wire shape.
            assert [
                (r.priority, r.match, r.actions)
                for r in plan1.catching_rules(node)
            ] == [
                (r.priority, r.match, r.actions)
                for r in explicit.catching_rules(node)
            ]

    def test_catch_rules_cover_every_slot(self):
        plan = plan_catching_rules(triangle(), strategy=1, slots=3)
        rules = plan.catching_rules("a")
        caught = {
            rule.match.constraint(FieldName.DL_VLAN).value
            for rule in rules
        }
        expected = {
            plan.value1(node, slot)
            for node in ("b", "c")
            for slot in range(3)
        }
        assert caught == expected

    def test_own_color_never_caught_at_any_slot(self):
        plan = plan_catching_rules(triangle(), strategy=1, slots=3)
        for node in ("a", "b", "c"):
            caught = {
                rule.match.constraint(FieldName.DL_VLAN).value
                for rule in plan.catching_rules(node)
            }
            assert not caught & set(plan.probe_values(node))

    def test_strategy2_one_catch_rule_filters_per_slot(self):
        plan = plan_catching_rules(triangle(), strategy=2, slots=3)
        rules = plan.catching_rules("a")
        from repro.core.catching import CATCH_PRIORITY, FILTER_PRIORITY

        catches = [r for r in rules if r.priority == CATCH_PRIORITY]
        filters = [r for r in rules if r.priority == FILTER_PRIORITY]
        assert len(catches) == 1
        assert len(filters) == 3 * 2  # 3 slots x 2 foreign colors

    def test_narrow_field_clamps_slots(self):
        # DL_VLAN tops out at 0xFFF; base 0xFFC leaves 4 values and the
        # triangle's stride is 3 -> exactly 1 slot fits.
        plan = plan_catching_rules(
            triangle(), strategy=1, base1=0xFFC, slots=8
        )
        assert plan.slots == 1
        for node in ("a", "b", "c"):
            assert plan.value1(node) <= 0xFFF

    def test_out_of_range_slot_rejected(self):
        plan = plan_catching_rules(triangle(), strategy=1, slots=2)
        with pytest.raises(ValueError):
            plan.value1("a", slot=2)

    def test_bad_slots_rejected(self):
        with pytest.raises(ValueError):
            plan_catching_rules(triangle(), slots=0)


# ----- windowed steady-state monitoring ---------------------------------


def windowed_setup(
    window,
    num_rules=20,
    probe_rate=500.0,
    seed=3,
    plan=None,
    profile=None,
):
    sim = Simulator()
    net = Network(
        sim,
        star(4),
        seed=seed,
        profiles=profile if profile is not None else OVS,
    )
    system = MonocleSystem(
        net,
        plan=plan,
        config=MonitorConfig(
            probe_rate=probe_rate, probe_window=window
        ),
        dynamic=False,
    )
    rules = []
    for i in range(num_rules):
        leaf = f"leaf{i % 4}"
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000000 + i),
            actions=output(net.port_toward["hub"][leaf]),
        )
        system.preinstall_production_rule("hub", rule)
        rules.append(rule)
    return sim, net, system, rules


class TestWindowedMonitor:
    def test_single_window_has_no_pool(self):
        _sim, _net, system, _rules = windowed_setup(window=1)
        monitor = system.monitor("hub")
        assert monitor.value_pool is None
        assert monitor.window == 1
        assert monitor.window_clamp == 0

    def test_window_fills_and_probes_confirm(self):
        sim, _net, system, _rules = windowed_setup(window=4)
        monitor = system.monitor("hub")
        assert monitor.window == 4
        monitor.start_steady_state()
        sim.run_for(0.5)
        assert monitor.window_peak == 4
        assert monitor.probes_confirmed > 0
        assert monitor.reserved_overflows == 0
        assert not monitor.alarms

    def test_windowed_drop_detected_no_false_alarms(self):
        sim, net, system, rules = windowed_setup(window=4, num_rules=40)
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        sim.run_for(0.05)
        victim = rules[17]
        assert net.switch("hub").fail_rule_in_dataplane(victim)
        sim.run_for(0.5)
        keys = {a.rule.key() for a in monitor.alarms}
        assert keys == {victim.key()}
        assert monitor.alarms[0].kind == "missing"

    def test_in_flight_values_distinct(self):
        sim, _net, system, _rules = windowed_setup(window=8)
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        for _ in range(100):
            sim.run_for(0.002)
            live = [
                p.reserved_value
                for p in monitor.outstanding.values()
                if not p.done and p.reserved_value is not None
            ]
            assert len(live) == len(set(live))
            assert set(live) <= set(monitor.value_pool.values)

    @settings(max_examples=12, deadline=None)
    @given(
        window=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_no_reserved_value_sharing(self, window, seed):
        """In-flight probes of one switch never share a reserved value,
        at any window depth, under concurrent timeouts (dropped rule)."""
        sim, net, system, rules = windowed_setup(
            window=window, num_rules=12, seed=seed
        )
        monitor = system.monitor("hub")
        monitor.start_steady_state()
        net.switch("hub").fail_rule_in_dataplane(rules[seed % 12])
        for _ in range(60):
            sim.run_for(0.005)
            live = [
                p.reserved_value
                for p in monitor.outstanding.values()
                if not p.done and p.reserved_value is not None
            ]
            assert len(live) == len(set(live))
        # Every slot came back: the pool drains to empty when the
        # cycle stops.
        monitor.stop_steady_state()
        sim.run_for(1.0)
        assert monitor.value_pool.in_use == 0

    def test_narrow_field_degrades_to_smaller_window(self):
        """A catch field too narrow for the requested window clamps the
        effective window — visibly, and without mis-attribution."""
        # 4 values of headroom / stride 2 on the star -> 2 slots.
        plan = plan_catching_rules(
            star(4), strategy=1, base1=0xFFC, slots=8
        )
        assert plan.slots == 2
        sim, net, system, rules = windowed_setup(
            window=8, num_rules=40, plan=plan
        )
        monitor = system.monitor("hub")
        assert monitor.window == 2
        assert monitor.window_clamp == 6
        monitor.start_steady_state()
        sim.run_for(0.05)
        victim = rules[11]
        assert net.switch("hub").fail_rule_in_dataplane(victim)
        sim.run_for(0.5)
        keys = {a.rule.key() for a in monitor.alarms}
        assert keys == {victim.key()}
        assert monitor.window_peak <= 2


# ----- promotion grace (static deployments) -----------------------------

#: An honest switch with a long application window: plenty of room for
#: a promoted probe to race the install.
SLOW_HONEST = SwitchProfile(
    name="slow-honest",
    flowmod_rate=20000.0,
    packetout_rate=50000.0,
    packetin_rate=50000.0,
    packetin_interference=0.0,
    install_latency=0.050,
    install_jitter=0.0,
    premature_ack=False,
    reorders=False,
)


def grace_setup(grace):
    """400 rules at 1000 probes/s: the natural cycle takes 0.4 s, so a
    rule just *behind* the cursor is only probed inside the switch's
    50 ms application window if a promotion rushes it there."""
    sim = Simulator()
    net = Network(sim, star(4), seed=5, profiles=SLOW_HONEST)
    system = MonocleSystem(
        net,
        config=MonitorConfig(
            probe_rate=1000.0, promotion_grace=grace
        ),
        dynamic=False,
        probe_policy="churn_first",
    )
    rules = []
    for i in range(400):
        leaf = f"leaf{i % 4}"
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000000 + i),
            actions=output(net.port_toward["hub"][leaf]),
        )
        system.preinstall_production_rule("hub", rule)
        rules.append(rule)
    monitor = system.monitor("hub")
    monitor.start_steady_state()
    sim.run_for(0.02)
    return sim, net, system, rules, monitor


def modify_port(net, rule):
    ports = sorted(net.port_toward["hub"].values())
    current = next(iter(rule.forwarding_set()))
    other = next(p for p in ports if p != current)
    return FlowMod(
        xid=next_xid(),
        command=FlowModCommand.MODIFY_STRICT,
        match=rule.match,
        priority=rule.priority,
        actions=output(other),
    )


class TestPromotionGrace:
    def test_without_grace_promotion_races_install(self):
        """The race the knob closes: churn_first probes the modified
        rule inside the switch's application window and alarms on the
        old data-plane state."""
        sim, net, system, rules, monitor = grace_setup(grace=False)
        system.send_to_switch("hub", modify_port(net, rules[5]))
        sim.run_for(0.3)
        assert monitor.promotions_held == 0
        assert any(
            a.kind == "misbehaving"
            and a.rule.key() == rules[5].key()
            for a in monitor.alarms
        )

    def test_grace_holds_promotion_until_barrier(self):
        sim, net, system, rules, monitor = grace_setup(grace=True)
        system.send_to_switch("hub", modify_port(net, rules[5]))
        assert monitor.promotions_held == 1
        assert len(monitor._grace_pending) == 1
        sim.run_for(0.3)
        # Barrier replied (after the data plane caught up), promotion
        # released, and the probe saw the *new* state: no alarm.
        assert not monitor._grace_pending
        assert not monitor.alarms
        # The deferred churn touch did land: the scheduler served the
        # promoted rule.
        assert monitor.scheduler.stats.scheduler_promotions >= 1

    def test_grace_ignores_deletes(self):
        sim, net, system, rules, monitor = grace_setup(grace=True)
        system.send_to_switch(
            "hub",
            FlowMod(
                xid=next_xid(),
                command=FlowModCommand.DELETE_STRICT,
                match=rules[3].match,
                priority=rules[3].priority,
            ),
        )
        assert monitor.promotions_held == 0
        sim.run_for(0.2)
        assert not monitor.alarms
