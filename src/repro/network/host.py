"""End hosts: traffic sources and sinks attached to edge ports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.openflow.fields import FieldName
from repro.packets.craft import craft_packet
from repro.packets.parse import ParseError, parse_packet
from repro.sim.kernel import Simulator


@dataclass
class ReceivedPacket:
    """One packet recorded by a host."""

    time: float
    values: dict
    payload: bytes


class Host:
    """A host with one NIC plugged into a switch edge port.

    Sending goes through ``transmit`` (wired by the Network to the
    switch's ingress); everything received is recorded and optionally
    forwarded to ``on_receive``.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.transmit: Callable[[bytes], None] | None = None
        self.on_receive: Callable[[ReceivedPacket], None] | None = None
        self.received: list[ReceivedPacket] = []
        self.sent_count = 0
        self.record_packets = True

    def send_raw(self, raw: bytes) -> None:
        """Transmit raw packet bytes."""
        if self.transmit is None:
            raise RuntimeError(f"host {self.name} is not attached")
        self.sent_count += 1
        self.transmit(raw)

    def send(self, payload: bytes = b"", **header_fields: int) -> None:
        """Craft and transmit a packet from abstract header fields."""
        values = {FieldName(k): v for k, v in header_fields.items()}
        self.send_raw(craft_packet(values, payload))

    def receive(self, raw: bytes) -> None:
        """Called by the network when a packet reaches this host."""
        try:
            values, payload = parse_packet(raw)
        except ParseError:
            values, payload = {}, raw
        packet = ReceivedPacket(
            time=self.sim.now, values=values, payload=payload
        )
        if self.record_packets:
            self.received.append(packet)
        if self.on_receive is not None:
            self.on_receive(packet)

    def __repr__(self) -> str:
        return f"Host({self.name}, received={len(self.received)})"
