"""Figure 7 (+ §8.3.1 PacketIn rates): PacketIn impact on rule mods.

Paper setup: perform a continuous update (delete+add pairs) while data
plane packets arrive at a fixed rate r, each producing a PacketIn; plot
the FlowMod rate normalized to the PacketIn-free baseline.

Paper result: PacketIns barely affect any switch — except the Dell
S4810 in its equal-priority configuration (high FlowMod baseline),
which loses up to ~60%.  Beyond a switch's maximum PacketIn rate,
PacketIns are dropped rather than slowing rule updates further.
"""

from repro.analysis import format_table
from repro.openflow.actions import CONTROLLER_PORT, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule
from repro.packets.craft import craft_packet
from repro.sim.kernel import Simulator
from repro.switches.profiles import (
    DELL_8132F,
    DELL_S4810,
    DELL_S4810_SAME_PRIO,
    HP_5406ZL,
)
from repro.switches.switch import SimulatedSwitch

from .conftest import print_header

RATES = [0, 100, 200, 300, 400, 1000, 5000]
PROFILES = [HP_5406ZL, DELL_8132F, DELL_S4810, DELL_S4810_SAME_PRIO]
MEASURE_TIME = 3.0

TRAFFIC_PACKET = craft_packet(
    {
        FieldName.DL_TYPE: 0x0800,
        FieldName.NW_PROTO: 17,
        FieldName.NW_DST: 0x0A0000FE,
    },
    b"production traffic",
)


def flowmod_rate_under_packetins(profile, packetin_rate: float) -> float:
    """FlowMod throughput while the data plane generates PacketIns.

    The FlowMod queue is pre-saturated; traffic arrives on a timer at
    ``packetin_rate`` and is steered to the controller by a catch-all
    rule, stealing control-CPU per the profile's interference model.
    """
    sim = Simulator()
    switch = SimulatedSwitch(sim, switch_id=1, profile=profile)
    switch.attach_port(1, lambda raw: None)
    switch.send_to_controller = lambda msg: None
    # A rule steering the traffic to the controller: every injected
    # packet becomes a PacketIn (up to the rate cap).
    switch.install_directly(
        Rule(
            priority=1, match=Match.wildcard(), actions=output(CONTROLLER_PORT)
        )
    )

    last_completion = [0.0]
    original = switch._complete_flowmod

    def spy(mod):
        original(mod)
        last_completion[0] = sim.now

    switch._complete_flowmod = spy

    if packetin_rate > 0:
        interval = 1.0 / packetin_rate

        def traffic():
            switch.inject(TRAFFIC_PACKET, in_port=1)
            if sim.now < MEASURE_TIME:
                sim.schedule(interval, traffic)

        sim.schedule(0.0, traffic)

    batches = int(MEASURE_TIME * profile.flowmod_rate / 2) + 1
    for batch in range(batches):
        match = Match.build(nw_dst=0x0A000000 + batch % 4096)
        switch.receive_message(
            FlowMod(
                command=FlowModCommand.DELETE_STRICT, match=match, priority=10
            )
        )
        switch.receive_message(
            FlowMod(
                command=FlowModCommand.ADD,
                match=match,
                priority=10,
                actions=output(1),
            )
        )
    sim.run()
    return switch.stats.flowmods_processed / max(last_completion[0], 1e-9)


def test_figure7_packetin_overhead(benchmark):
    baselines = {p.name: flowmod_rate_under_packetins(p, 0) for p in PROFILES}

    rows = []
    normalized = {p.name: {} for p in PROFILES}
    for rate in RATES:
        row = [str(rate)]
        for profile in PROFILES:
            achieved = flowmod_rate_under_packetins(profile, rate)
            norm = achieved / baselines[profile.name]
            normalized[profile.name][rate] = norm
            row.append(f"{norm:.2f}")
        rows.append(row)

    print_header("Figure 7 — normalized FlowMod rate vs PacketIn rate")
    print(format_table(["PacketIn/s"] + [p.name for p in PROFILES], rows))
    print(
        "\npaper shape: negligible impact on all switches except Dell "
        "S4810 with\nequal-priority rules, which drops by up to ~60%."
    )

    for profile in (HP_5406ZL, DELL_8132F, DELL_S4810):
        # "Almost unaffected": >= 85% at every tested rate.
        worst = min(normalized[profile.name].values())
        assert worst >= 0.85, (profile.name, worst)
    # The equal-priority S4810 visibly degrades at high PacketIn rates.
    assert normalized[DELL_S4810_SAME_PRIO.name][5000] <= 0.60

    benchmark.pedantic(
        lambda: flowmod_rate_under_packetins(HP_5406ZL, 1000),
        rounds=2,
        iterations=1,
    )
