"""CNF formula container and DIMACS serialization.

Literals use the DIMACS convention: variable ``v`` (a positive integer)
appears as ``v`` for the positive literal and ``-v`` for its negation.

Clauses are stored in a single flat list of ints with ``0`` terminators —
the one-dimensional layout the paper adopted after finding that nested
vectors (one small allocation per clause) dominated conversion time (§7).
The container hides the flat layout behind iteration helpers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

#: A DIMACS literal: +v or -v for variable v >= 1.
Lit = int


class CNF:
    """A growable CNF formula.

    Example:
        >>> cnf = CNF()
        >>> x, y = cnf.new_var(), cnf.new_var()
        >>> cnf.add_clause([x, -y])
        >>> cnf.num_clauses
        1
    """

    def __init__(self, num_vars: int = 0) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self._num_vars = num_vars
        # Flat clause storage: literals with a 0 terminator per clause.
        self._flat: list[int] = []
        self._num_clauses = 0

    # ----- variables ----------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Highest variable index allocated so far."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        return self._num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def ensure_var(self, var: int) -> None:
        """Grow the variable space to include ``var``."""
        if var > self._num_vars:
            self._num_vars = var

    # ----- clauses --------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        """Number of clauses added."""
        return self._num_clauses

    def add_clause(self, literals: Iterable[Lit]) -> None:
        """Append one clause (a disjunction of literals).

        An empty clause is legal and makes the formula trivially UNSAT.
        """
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_var(abs(lit))
            self._flat.append(lit)
        # Dedup-free append; solver tolerates duplicates.
        self._flat.append(0)
        self._num_clauses += 1

    def add_unit(self, lit: Lit) -> None:
        """Append a unit clause."""
        self.add_clause((lit,))

    def extend(self, clauses: Iterable[Iterable[Lit]]) -> None:
        """Append many clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def clauses(self) -> Iterator[list[Lit]]:
        """Iterate clauses as literal lists (decoded from flat storage)."""
        current: list[int] = []
        for lit in self._flat:
            if lit == 0:
                yield current
                current = []
            else:
                current.append(lit)

    def copy(self) -> "CNF":
        """Deep copy."""
        dup = CNF(self._num_vars)
        dup._flat = list(self._flat)
        dup._num_clauses = self._num_clauses
        return dup

    # ----- DIMACS ---------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF text."""
        lines = [f"p cnf {self._num_vars} {self._num_clauses}"]
        for clause in self.clauses():
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def write_dimacs(self, stream: TextIO) -> None:
        """Write DIMACS text to a stream."""
        stream.write(self.to_dimacs())

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text (comments and header tolerated)."""
        cnf = cls()
        declared_vars = 0
        pending: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {line!r}")
                declared_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            # Tolerate a final clause missing its 0 terminator.
            cnf.add_clause(pending)
        cnf.ensure_var(declared_vars)
        return cnf

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a *total* assignment (var -> bool)."""
        for clause in self.clauses():
            satisfied = False
            for lit in clause:
                value = assignment[abs(lit)]
                if (lit > 0) == value:
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def __repr__(self) -> str:
        return f"CNF(vars={self._num_vars}, clauses={self._num_clauses})"
