"""Composable workload generators for fleet scenarios.

Every workload is a small declarative object with a
:meth:`Workload.setup` hook called once against a
:class:`~repro.fleet.deployment.FleetDeployment` before the clock
starts.  All randomness flows through the deployment's seeded RNG, so a
scenario is a pure function of its spec + seed.

Destination-address blocks are partitioned per workload so rule sets
never collide with each other (or with the 10.0.0.0-33.0.0.0/8 space
the synthetic ACL tables draw from):

* ``0x60......`` steady-state forwarding rules,
* ``0x70......`` churn rules,
* ``0x80......`` background-traffic flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.datasets.acl import AclProfile, generate_acl_table
from repro.fleet.deployment import FleetDeployment
from repro.network.traffic import FlowSpec, TrafficGenerator
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand
from repro.openflow.rule import Rule

STEADY_DST_BASE = 0x60000000
CHURN_DST_BASE = 0x70000000
TRAFFIC_DST_BASE = 0x80000000


class Workload:
    """Base workload: installs state and/or schedules activity."""

    name = "workload"

    def setup(self, deployment: FleetDeployment) -> None:
        """Install rules / schedule events on the deployment's kernel."""
        raise NotImplementedError


@dataclass
class SteadyRules(Workload):
    """Per-switch L3 forwarding rules for the §3 steady-state cycle.

    Each switch gets ``rules_per_switch`` exact-match destination rules
    cycling over its switch-facing ports — the monitorable population
    the steady-state probing loop walks.
    """

    rules_per_switch: int = 20
    priority: int = 100
    name = "steady"

    def setup(self, deployment: FleetDeployment) -> None:
        for index, node in enumerate(deployment.nodes):
            # The dst block is keyed by the node's position in the
            # *full* deployment order, so a sharded worker (which only
            # installs on its own shard) builds byte-identical rules.
            if not deployment.owns(node):
                continue
            ports = deployment.neighbor_ports(node)
            if not ports:
                continue
            for i in range(self.rules_per_switch):
                rule = Rule(
                    priority=self.priority,
                    match=Match.build(
                        nw_dst=STEADY_DST_BASE + (index << 12) + i
                    ),
                    actions=output(ports[i % len(ports)]),
                )
                deployment.install_production_rule(node, rule)


@dataclass
class ChurnRecord:
    """One churn FlowMod's lifecycle (for confirmation-latency stats)."""

    node: Hashable
    op: str
    sent_at: float
    confirmed_at: float | None = None

    @property
    def latency(self) -> float | None:
        if self.confirmed_at is None:
            return None
        return self.confirmed_at - self.sent_at


@dataclass
class RuleChurn(Workload):
    """A Poisson stream of add/modify/delete FlowMods (§4 workload).

    Updates go through the controller with the deployment's strongest
    confirmation mode, so under ``dynamic=True`` every operation's
    confirmation latency is recorded in :attr:`records`.

    Args:
        rate: operations per second across the whole fleet.
        start/stop: churn window on the sim clock (``stop=None`` runs
            for the entire scenario).
        mix: relative weights of (add, modify, delete).
        recycle: reuse the destination addresses of deleted rules for
            later adds (per switch).  Real controllers churn a bounded
            rule population rather than an ever-growing address space;
            recycling also drives the incremental probe engine's
            match-guard cache (a re-added match re-uses its persistent
            SAT encoding instead of paying for a fresh one).
    """

    rate: float = 50.0
    start: float = 0.1
    stop: float | None = None
    mix: tuple[float, float, float] = (0.6, 0.25, 0.15)
    priority: int = 200
    recycle: bool = True
    name = "churn"
    records: list[ChurnRecord] = field(default_factory=list)

    def setup(self, deployment: FleetDeployment) -> None:
        if self.rate <= 0:
            raise ValueError(f"churn rate must be positive: {self.rate}")
        self.records = []  # fresh per run; specs may be reused
        self._rng = deployment.rng.fork(0xC4)
        self._deployment = deployment
        self._next_dst = CHURN_DST_BASE
        # The topology is static: compute the eligible nodes and their
        # switch-facing ports once instead of re-sorting per operation.
        self._ports: dict[Hashable, list[int]] = {
            node: deployment.neighbor_ports(node) for node in deployment.nodes
        }
        self._nodes = [n for n, ports in self._ports.items() if ports]
        #: Live churn rules per node: match -> out port.
        self._live: dict[Hashable, dict[Match, int]] = {
            node: {} for node in deployment.nodes
        }
        #: Matches freed by deletes, reused by later adds (see recycle).
        self._free: dict[Hashable, list[Match]] = {
            node: [] for node in deployment.nodes
        }
        deployment.sim.at(self.start, self._tick)

    # ----- event loop -------------------------------------------------

    def _tick(self) -> None:
        sim = self._deployment.sim
        if self.stop is not None and sim.now >= self.stop:
            return
        self._one_operation()
        sim.schedule(self._rng.expovariate(self.rate), self._tick)

    def _one_operation(self) -> None:
        if not self._nodes:
            return
        node = self._rng.choose(self._nodes)
        total = sum(self.mix)
        roll = self._rng.uniform(0.0, total)
        if roll < self.mix[0] or not self._live[node]:
            self._send(node, "add", *self._build_add(node))
        elif roll < self.mix[0] + self.mix[1]:
            self._send(node, "modify", *self._build_modify(node))
        else:
            self._send(node, "delete", *self._build_delete(node))

    def _build_add(self, node: Hashable) -> tuple[Match, FlowMod]:
        ports = self._ports[node]
        if self.recycle and self._free[node]:
            match = self._free[node].pop()
        else:
            match = Match.build(nw_dst=self._next_dst)
            self._next_dst += 1
        port = self._rng.choose(ports)
        self._live[node][match] = port
        return match, FlowMod(
            command=FlowModCommand.ADD,
            match=match,
            priority=self.priority,
            actions=output(port),
        )

    def _build_modify(self, node: Hashable) -> tuple[Match, FlowMod]:
        match = self._rng.choose(sorted(self._live[node], key=repr))
        ports = self._ports[node]
        others = [p for p in ports if p != self._live[node][match]]
        port = self._rng.choose(others) if others else self._live[node][match]
        self._live[node][match] = port
        return match, FlowMod(
            command=FlowModCommand.MODIFY_STRICT,
            match=match,
            priority=self.priority,
            actions=output(port),
        )

    def _build_delete(self, node: Hashable) -> tuple[Match, FlowMod]:
        match = self._rng.choose(sorted(self._live[node], key=repr))
        del self._live[node][match]
        self._free[node].append(match)
        return match, FlowMod(
            command=FlowModCommand.DELETE_STRICT,
            match=match,
            priority=self.priority,
        )

    def _send(
        self, node: Hashable, op: str, match: Match, mod: FlowMod
    ) -> None:
        deployment = self._deployment
        if not deployment.owns(node):
            # Sharded worker: every worker runs the *full* fleet-wide
            # churn bookkeeping (RNG draws, live/free tracking, FlowMod
            # construction) so its stream is an exact restriction of
            # the global one — only the send is ownership-gated.  The
            # per-shard record lists then partition the global list.
            return
        record = ChurnRecord(node=node, op=op, sent_at=deployment.sim.now)
        self.records.append(record)

        def confirmed() -> None:
            record.confirmed_at = deployment.sim.now

        deployment.controller.send_flowmod(
            node, mod, confirm=deployment.confirm_mode, on_confirmed=confirmed
        )

    # ----- stats ------------------------------------------------------

    def confirmation_latencies(self) -> list[float]:
        """Latencies of all confirmed operations, in send order."""
        return [
            latency
            for r in self.records
            if (latency := r.latency) is not None
        ]


@dataclass
class AclTables(Workload):
    """Populate selected switches with ClassBench-style ACL tables.

    A scaled-down :class:`~repro.datasets.acl.AclProfile` keeps the
    steady-state cycle short while preserving the structural mix
    (shadowed / redundant / deny rules) that §3.5 cares about.  Rules
    land on the first ``num_switches`` nodes of the deployment order.
    """

    num_switches: int = 1
    rules_per_table: int = 40
    seed_salt: int = 0xAC1
    name = "acl"

    def setup(self, deployment: FleetDeployment) -> None:
        for index, node in enumerate(deployment.nodes[: self.num_switches]):
            if not deployment.owns(node):
                continue
            ports = deployment.neighbor_ports(node)
            if not ports:
                continue
            profile = AclProfile(
                name=f"fleet-acl-{node}",
                num_rules=self.rules_per_table,
                dst_universes=4,
                p_src=0.35,
                p_proto=0.45,
                p_port=0.55,
                p_drop=0.25,
                shadow_fraction=0.05,
                redundant_fraction=0.04,
                num_ports=len(ports),
                default_drop=False,
            )
            table = generate_acl_table(
                profile, seed=deployment.seed + self.seed_salt + index
            )
            for rule in table:
                # The generator emits ports 1..num_ports; remap them to
                # this switch's actual switch-facing ports.
                remapped = frozenset(
                    ports[(p - 1) % len(ports)] for p in rule.forwarding_set()
                )
                if remapped and remapped != rule.forwarding_set():
                    rule = rule.with_actions(output(min(remapped)))
                deployment.install_production_rule(node, rule)


@dataclass
class BackgroundTraffic(Workload):
    """Constant-rate data-plane flows between hosts on adjacent switches.

    Exercises the fabric under monitoring: forwarding rules compete with
    probes for PacketIn/PacketOut budget on the traversed switches.
    """

    flows: int = 4
    rate: float = 100.0
    priority: int = 300
    name = "traffic"
    generators: list[TrafficGenerator] = field(default_factory=list)
    sinks: list = field(default_factory=list)

    def setup(self, deployment: FleetDeployment) -> None:
        self.generators = []  # fresh per run; specs may be reused
        self.sinks = []
        edges = sorted(
            deployment.topology.edges, key=lambda e: (repr(e[0]), repr(e[1]))
        )
        if not edges:
            return
        rng = deployment.rng.fork(0x7F)
        for i in range(self.flows):
            u, v = edges[i % len(edges)]
            # Draw the jitter before the ownership gate so every
            # sharded worker's RNG stream stays aligned with the
            # single-process run.  Flows whose endpoints span shards
            # are skipped entirely: data-plane traffic does not cross
            # the shard channel (a documented sharding limitation).
            jitter = rng.uniform(0.0, 1.0 / self.rate)
            if not (deployment.owns(u) and deployment.owns(v)):
                continue
            src = deployment.network.add_host(f"src{i}", u)
            dst = deployment.network.add_host(f"dst{i}", v)
            dst_addr = TRAFFIC_DST_BASE + i
            match = Match.build(dl_type=0x0800, nw_proto=17, nw_dst=dst_addr)
            deployment.install_production_rule(
                u,
                Rule(
                    priority=self.priority,
                    match=match,
                    actions=output(deployment.network.port_toward[u][v]),
                ),
            )
            deployment.install_production_rule(
                v,
                Rule(
                    priority=self.priority,
                    match=match,
                    actions=output(
                        deployment.network.port_toward[v][f"dst{i}"]
                    ),
                ),
            )
            spec = FlowSpec(
                flow_id=i,
                header_fields=(
                    ("dl_type", 0x0800),
                    ("nw_proto", 17),
                    ("nw_dst", dst_addr),
                ),
            )
            generator = TrafficGenerator(deployment.sim, src, spec, self.rate)
            generator.start(jitter=jitter)
            self.generators.append(generator)
            self.sinks.append(dst)

    def packets_delivered(self) -> int:
        """Packets that reached their sink host."""
        return sum(len(sink.received) for sink in self.sinks)

    def packets_sent(self) -> int:
        """Packets emitted by all sources."""
        return sum(g.seq for g in self.generators)
