"""Cross-switch shared probe-generation contexts (fleet dedup).

Replicated configurations — the same ACL pushed to dozens of edge
switches — make the per-switch :class:`~repro.core.probegen.
ProbeGenContext` wasteful at fleet scale: N switches with identical
flow tables each warm up their own solver, learn the same lemmas and
solve the same probe instances.  This module dedupes them:

* :func:`table_fingerprint` — canonical, cookie-free hash of a flow
  table (priorities, matches, actions, in table order);
* :class:`SharedContextRegistry` — maps (generator config, table
  fingerprint) to one shared :class:`ProbeGenContext`; switches attach
  via :meth:`~SharedContextRegistry.acquire` and receive a
  :class:`SharedProbeGenContext` *handle*;
* **replicated-churn convergence** — each shared context keeps an
  operation log.  A handle applying the same operation the log already
  holds at its position simply advances (the table was already
  updated by the first replica); only genuinely *new* operations touch
  the shared table.  N switches receiving the same FlowMod wave stay
  deduped and pay one solver's work.
* **copy-on-churn forking** — a handle whose operations *diverge* from
  its replicas forks its own context.  The common case — one switch
  receives a private operation while its siblings stay put — costs
  exactly one *warm* fork: the diverging handle is at the log head, so
  it clones the shared state (:meth:`ProbeGenContext.fork` copies the
  table, probe cache, and the entire solver, making its post-fork
  probes byte-identical to an always-independent context's) and the
  shared log **rewinds** the private operations via per-op undo
  records, leaving the remaining replicas converged and still shared.
  Handles that diverge in ways a rewind cannot untangle (staggered
  multi-switch divergence) start cold from their own table — correct,
  without the shared solver's warmth.  Siblings are never affected by
  a fork either way.
* **soundness while behind** — a handle that has not yet applied
  operations the shared table already holds never exposes foreign
  state: reads serve the handle's own table (maintained through every
  operation), and probes fall back to from-scratch generation against
  it.  A mere read never forces a fork — an in-flight replicated wave
  re-converges for free; only persistent behind-ness resolves the
  divergence (rewind if possible, cold fork otherwise).

Per-switch identity is preserved across sharing: the shared table
holds the *first* replica's rule objects, so each handle overlays its
own rules (same priority/match/actions, its own cookies) onto returned
probe results — alarm attribution and FlowMod bookkeeping stay
per-switch correct.  Monitoring-level validation (observability
demotion) is also per-handle: the shared cache stores raw results and
every handle validates its own copy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Iterable

from repro.core.probegen import (
    ProbeGenContext,
    ProbeGenContextStats,
    ProbeGenerator,
    ProbeResult,
)
from repro.obs import NULL_OBSERVER
from repro.openflow.messages import FlowMod
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable, table_fingerprint

__all__ = [
    "SharedContextRegistry",
    "SharedContextStats",
    "SharedProbeGenContext",
    "generator_key",
    "table_fingerprint",
]

#: Cookie-free value identity of a rule (fingerprints, op signatures).
RuleSig = tuple
#: One logged table operation, compared across replicas by value.
OpSig = tuple

#: ProbeGenContextStats fields describing probe-serving work; handles
#: mirror the shared context's deltas into their own stats so fleet
#: aggregation counts each solve exactly once (on the switch that
#: triggered it) while replicas count cache hits.
_SERVE_FIELDS = tuple(
    f.name
    for f in fields(ProbeGenContextStats)
    if f.name not in ("rules_added", "rules_modified", "rules_removed")
)


def _rule_sig(rule: Rule) -> RuleSig:
    return (rule.priority, rule.match, rule.actions)


def _tables_identical(table: Iterable[Rule], rules: Iterable[Rule]) -> bool:
    """Exact (order-sensitive) cookie-free rule-sequence identity.

    The fingerprint (:func:`~repro.openflow.table.table_fingerprint`,
    re-exported here) is a commutative multiset hash so tables can
    maintain it incrementally; within-priority insertion order — which
    probe generation *does* consume — is therefore not part of it.
    Every sharing decision double-checks a fingerprint hit with this
    sequence comparison, so two tables ever share state only when they
    iterate identically.
    """
    return [_rule_sig(r) for r in table] == [_rule_sig(r) for r in rules]


def generator_key(generator: ProbeGenerator) -> tuple:
    """Value identity of a probe generator's configuration.

    Two switches can share a context only when every knob that shapes
    the emitted constraints agrees: the catching match, the in_port
    domain, the encoding, the conflict budget, the overlap filter and
    the miss rule.
    """
    miss = generator.miss_rule
    return (
        generator.catch_match,
        generator.valid_in_ports,
        generator.encoding,
        generator.max_conflicts,
        generator.overlap_filter,
        None if miss is None else _rule_sig(miss),
    )


@dataclass
class SharedContextStats:
    """Registry-level counters (threaded into fleet metrics)."""

    tables_fingerprinted: int = 0
    contexts_created: int = 0
    #: Switches that attached to an existing context instead of paying
    #: for their own (the fleet-dedup win).
    contexts_deduped: int = 0
    #: Copy-on-churn forks: switches whose tables diverged from their
    #: replicas and took an independent context.
    contexts_forked: int = 0
    #: Forks that could clone the shared solver state (handle at the
    #: log head) vs. cold rebuilds from snapshot + history.
    warm_forks: int = 0
    #: Private operations rolled back off a shared context after their
    #: author warm-forked away (keeps the remaining replicas shared).
    rewinds: int = 0
    #: Forked handles re-attached to a shared context after their
    #: tables became identical again (churn-quiescence re-dedup).
    contexts_remerged: int = 0
    #: Warm re-merges where the *forked* solver was the richer one
    #: (more learned lemmas) and replaced the shared entry's solver
    #: instead of being dropped.
    solvers_kept_on_remerge: int = 0
    #: Probe-cache entries adopted across re-merges (either direction).
    cache_entries_merged: int = 0
    #: Re-fingerprinting sweeps run (each is O(forked + entries) thanks
    #: to the tables' rolling fingerprints).
    rededupe_passes: int = 0


#: What one rewindable log step restores: for every table key the
#: operation touched, the rule that held the key before (None = key was
#: absent).
UndoInfo = list


def _undo_info(table: FlowTable, op: tuple[str, object]) -> UndoInfo:
    """Capture what ``op`` is about to overwrite in ``table``.

    FlowMod semantics are delegated to the one authoritative
    implementation (:func:`repro.switches.switch.apply_flowmod`, run
    against a throwaway copy) so rewind can never drift from what the
    shared context actually does.
    """
    kind, payload = op
    if kind in ("add", "remove"):
        key = payload.key()
        return [(key, table.get(*key))]
    from repro.switches.switch import apply_flowmod  # local: avoid cycle

    scratch = table.copy()
    affected = apply_flowmod(scratch, payload)
    return [(rule.key(), table.get(*rule.key())) for rule in affected]


class _SharedEntry:
    """One shared context plus the replica-convergence machinery."""

    __slots__ = ("context", "handles", "log", "base")

    def __init__(self, context: ProbeGenContext) -> None:
        self.context = context
        self.handles: list["SharedProbeGenContext"] = []
        #: (op signature, undo info) applied to the shared table since
        #: creation; index ``i`` in the log is position ``base + i``.
        self.log: list[tuple[OpSig, UndoInfo]] = []
        self.base = 0

    def head(self) -> int:
        return self.base + len(self.log)

    def rewind_to(self, position: int) -> None:
        """Roll the shared table back to log ``position``.

        Every rolled-back operation's undo record restores the exact
        rule objects that held each touched key (or removes keys the
        operation created); the context's own delta API keeps the probe
        cache consistent.  The solver is untouched — it never encodes
        the table permanently.
        """
        context = self.context
        while self.head() > position:
            _sig, undo = self.log.pop()
            for key, previous in reversed(undo):
                if previous is None:
                    current = context.table.get(*key)
                    if current is not None:
                        context.remove_rule(current)
                else:
                    context.add_rule(previous)

    def trim(self) -> None:
        """Drop log prefix every handle has already replayed."""
        if not self.handles or len(self.log) < 64:
            return
        floor = min(handle._log_pos for handle in self.handles)
        drop = floor - self.base
        if drop > 0:
            del self.log[:drop]
            self.base = floor


class SharedContextRegistry:
    """Fleet-wide dedup of probe-generation contexts.

    One registry per deployment.  ``context_factory`` exists for tests
    (it must be call-compatible with :class:`ProbeGenContext`).
    """

    def __init__(
        self,
        context_factory: Callable[..., ProbeGenContext] = ProbeGenContext,
    ) -> None:
        self._factory = context_factory
        #: (generator key, fingerprint) -> entries still in their
        #: pristine (no operations yet) state; only those are joinable,
        #: which is exactly the deployment-build pattern where all
        #: replicas acquire before any churn.  A *list* because the
        #: multiset fingerprint can collide for tables whose equal-
        #: priority rules were installed in different orders — each
        #: candidate is probed with the exact rule-sequence check.
        self._attachable: dict[tuple, list[_SharedEntry]] = {}
        self.entries: list[_SharedEntry] = []
        #: Handles that forked off (copy-on-churn); candidates for
        #: re-merging once their tables converge back (:meth:`rededupe`).
        self.forked: list["SharedProbeGenContext"] = []
        #: Total table operations applied through any handle; a caller
        #: sampling this between ticks gets a churn-quiescence signal.
        self.churn_ops = 0
        #: Invoked whenever a handle forks — the fleet deployment uses
        #: it to (re-)arm its re-dedupe timer only while there is
        #: something to re-merge.
        self.on_fork: Callable[[], None] | None = None
        self.stats = SharedContextStats()

    def acquire(
        self,
        generator: ProbeGenerator,
        rules: Iterable[Rule] = (),
        validate_result: "Callable[[ProbeResult], ProbeResult] | None" = None,
    ) -> "SharedProbeGenContext":
        """A probe-context handle for one switch.

        Switches presenting an identical (generator config, initial
        table) pair share one underlying context; others get their own.
        """
        initial = tuple(rules)
        key = (generator_key(generator), table_fingerprint(initial))
        self.stats.tables_fingerprinted += 1
        entry = next(
            (
                candidate
                for candidate in self._attachable.get(key, ())
                if not candidate.log
                and _tables_identical(candidate.context.table, initial)
            ),
            None,
        )
        if entry is not None:
            self.stats.contexts_deduped += 1
        else:
            table = FlowTable(initial, check_overlap=False)
            entry = _SharedEntry(self._factory(generator, table=table))
            self._attachable.setdefault(key, []).append(entry)
            self.entries.append(entry)
            self.stats.contexts_created += 1
        handle = SharedProbeGenContext(
            self, entry, generator, initial, validate_result
        )
        entry.handles.append(handle)
        return handle

    def _detach(
        self, entry: _SharedEntry, handle: "SharedProbeGenContext"
    ) -> None:
        entry.handles.remove(handle)
        if not entry.handles:
            self.entries.remove(entry)
            self._mark_dirty(entry)

    def _mark_dirty(self, entry: _SharedEntry) -> None:
        """An entry that saw operations can no longer be joined."""
        for key, candidates in list(self._attachable.items()):
            if entry in candidates:
                candidates.remove(entry)
                if not candidates:
                    del self._attachable[key]

    # ----- re-convergence after forks --------------------------------------

    def rededupe(self) -> int:
        """Re-merge forked handles whose tables converged back.

        A copy-on-churn fork is forever under the base machinery — even
        when the diverging operation is later reversed and the tables
        are identical again.  This sweep re-fingerprints every forked
        handle and live shared entry (O(1) each: the tables maintain
        rolling fingerprints) and re-attaches matches — first forked ->
        existing shared entry, then forked <-> forked pairs, where one
        handle's private context is *promoted* to a fresh shared entry
        the others join.  Every fingerprint hit is double-checked with
        an exact rule-sequence comparison before any state is shared.

        Intended to run on a churn-quiescence signal (see
        :attr:`churn_ops`; the fleet deployment wires a periodic tick).
        Returns the number of handles re-attached.
        """
        self.stats.rededupe_passes += 1
        if not self.forked:
            return 0
        merged = 0
        entry_by_key: dict[tuple, _SharedEntry] = {}
        for entry in self.entries:
            gkey = generator_key(entry.handles[0].generator)
            entry_by_key[(gkey, entry.context.table.fingerprint())] = entry

        def handle_key(handle: "SharedProbeGenContext") -> tuple:
            return (
                generator_key(handle.generator),
                handle._my_table.fingerprint(),
            )

        remaining: list[SharedProbeGenContext] = []
        for handle in self.forked:
            entry = entry_by_key.get(handle_key(handle))
            if entry is not None and _tables_identical(
                entry.context.table, handle._my_table
            ):
                handle._reattach(entry)
                merged += 1
            else:
                remaining.append(handle)

        # Forked handles matching each other: promote the first of a
        # group to a shared entry, attach the rest.
        groups: dict[tuple, list[SharedProbeGenContext]] = {}
        for handle in remaining:
            groups.setdefault(handle_key(handle), []).append(handle)
        leftovers: list[SharedProbeGenContext] = []
        for handles in groups.values():
            if len(handles) < 2:
                leftovers.extend(handles)
                continue
            host = handles[0]
            entry = host._promote()
            for other in handles[1:]:
                if _tables_identical(
                    entry.context.table, other._my_table
                ):
                    other._reattach(entry)
                    merged += 1
                else:
                    leftovers.append(other)
        self.forked = leftovers
        self.stats.contexts_remerged += merged
        return merged


class SharedProbeGenContext:
    """Per-switch handle over a (possibly shared) probe-gen context.

    API-compatible with :class:`ProbeGenContext` as the Monitor uses
    it: ``table``, ``stats``, ``validate_result``, :meth:`add_rule`,
    :meth:`remove_rule`, :meth:`apply_flowmod`, :meth:`probe_for`,
    :meth:`clear_cache`.
    """

    #: From-scratch probes tolerated while waiting for replicas to
    #: converge; persistent behind-ness forces a divergence resolution
    #: (rewind if possible, else a cold fork) after this many.
    MAX_BEHIND_PROBES = 8

    def __init__(
        self,
        registry: SharedContextRegistry,
        entry: _SharedEntry,
        generator: ProbeGenerator,
        initial: tuple[Rule, ...],
        validate_result: "Callable[[ProbeResult], ProbeResult] | None",
    ) -> None:
        self._registry = registry
        self._entry: _SharedEntry | None = entry
        self._own: ProbeGenContext | None = None
        self.generator = generator
        self.validate_result = validate_result
        self.stats = ProbeGenContextStats()
        self._obs = NULL_OBSERVER
        self._obs_node: object | None = None
        self.forked = False
        self._log_pos = entry.head()
        #: This switch's own table: same (priority, match, actions)
        #: content as its replicas but holding its *own* rule objects
        #: (cookies), maintained through every operation.  Serves as
        #: the cookie overlay for probe results, as the private view
        #: while the handle is behind the shared log, and as the
        #: rebuild source for a cold fork.
        self._my_table = FlowTable(initial, check_overlap=False)
        self._behind_probes = 0
        #: Per-handle validation memo: rule key -> (raw result identity,
        #: validated per-switch copy).
        self._validated: dict[
            tuple[int, Match], tuple[ProbeResult, ProbeResult]
        ] = {}

    # ----- introspection --------------------------------------------------

    @property
    def table(self) -> FlowTable:
        """This switch's expected table.

        The shared table while converged; the handle's private table
        while replicas it has not caught up with are ahead (a read
        never exposes foreign operations — and never forces a fork).
        """
        entry = self._entry
        if entry is not None and self._log_pos != entry.head():
            return self._my_table
        return self._context().table

    @property
    def is_shared(self) -> bool:
        """Currently sharing an underlying context with other switches."""
        return self._entry is not None and len(self._entry.handles) > 1

    def fingerprint(self) -> str:
        """Fingerprint of the current table (O(1): rolling, diagnostics)."""
        return self.table.fingerprint()

    def _context(self) -> ProbeGenContext:
        if self._own is not None:
            return self._own
        assert self._entry is not None
        return self._entry.context

    def base_context(self) -> ProbeGenContext:
        """The backing :class:`ProbeGenContext` currently serving us.

        For cross-process gossip: the shard layer fingerprints and
        exports/imports probe caches against the *underlying* context
        (the one whose table the cache entries actually describe),
        which for a behind handle differs from :attr:`table`.
        """
        return self._context()

    def attach_obs(self, obs: object, node: object) -> None:
        """Publish this handle's lifecycle + solve timings.

        Solve-time attribution on a *shared* context is inherently
        approximate — replicas take turns on one solver, and the
        context's histogram label follows the last attacher — but the
        fork/remerge trace events are exact and per-handle.
        """
        self._obs = obs
        self._obs_node = node
        self._context().attach_obs(node=node, obs=obs)

    # ----- delta API -------------------------------------------------------

    # The per-switch mirror is mutated AFTER ``_apply``: a divergent op
    # may fork the handle off the shared entry, and the undo-based fork
    # verifies its reconstruction against ``_my_table``, which must
    # still reflect the handle's log position (not the in-flight op).

    def add_rule(self, rule: Rule) -> None:
        self.stats.rules_added += 1
        self._apply(
            ("add", _rule_sig(rule)),
            ("add", rule),
            lambda ctx: ctx.add_rule(rule),
        )
        self._my_table.install(rule)

    def remove_rule(self, rule: Rule) -> None:
        self._validated.pop(rule.key(), None)
        self.stats.rules_removed += 1
        self._apply(
            ("remove", rule.priority, rule.match),
            ("remove", rule),
            lambda ctx: ctx.remove_rule(rule),
        )
        self._my_table.remove(rule)

    def apply_flowmod(self, mod: FlowMod) -> list[Rule]:
        """Apply FlowMod semantics; returns this switch's affected rules."""
        self._apply(
            (
                "flowmod",
                mod.command.value,
                mod.priority,
                mod.match,
                mod.actions,
            ),
            ("flowmod", mod),
            lambda ctx: ctx.apply_flowmod(mod),
        )
        return self._track_flowmod(mod)

    def _track_flowmod(self, mod: FlowMod) -> list[Rule]:
        """Apply the FlowMod to this switch's own table.

        Delegates to the one authoritative OF 1.0 implementation
        (:func:`repro.switches.switch.apply_flowmod`) so the overlay
        can never drift from what the shared context does.
        """
        from repro.switches.switch import apply_flowmod  # avoid cycle

        deleting = mod.command.is_delete
        modifying = mod.command.is_modify
        had_key = self._my_table.get(mod.priority, mod.match) is not None
        affected = apply_flowmod(self._my_table, mod)
        for rule in affected:
            if deleting:
                self.stats.rules_removed += 1
                self._validated.pop(rule.key(), None)
            elif modifying and (
                rule.key() != (mod.priority, mod.match) or had_key
            ):
                self.stats.rules_modified += 1
            else:
                self.stats.rules_added += 1
        return affected

    def _apply(
        self,
        sig: OpSig,
        op: tuple[str, object],
        run: Callable[[ProbeGenContext], object],
    ) -> None:
        self._registry.churn_ops += 1
        entry = self._entry
        if entry is None:
            assert self._own is not None
            self._run_mirrored(self._own, run)
            return
        index = self._log_pos - entry.base
        if index < len(entry.log):
            if entry.log[index][0] == sig:
                # A replica already applied this exact operation to the
                # shared table; just advance.
                self._log_pos += 1
                if self._log_pos == entry.head():
                    self._behind_probes = 0
                return
            # Diverging while behind: try to roll the ahead replicas'
            # private operations off the shared context (they warm-fork
            # away); fall back to a cold fork of this handle.
            if not self._try_rewind(entry):
                self._fork()
                assert self._own is not None
                self._run_mirrored(self._own, run)
                return
        # At the head (possibly after a rewind): mutate the shared table.
        undo = _undo_info(entry.context.table, op)
        self._run_mirrored(entry.context, run)
        entry.log.append((sig, undo))
        self._log_pos += 1
        if entry.base == 0 and len(entry.log) == 1:
            self._registry._mark_dirty(entry)
        entry.trim()

    # ----- convergence ----------------------------------------------------

    def _try_rewind(self, entry: _SharedEntry) -> bool:
        """Undo ahead replicas' private operations, warm-forking them.

        Possible exactly when every handle ahead of this one sits at
        the log head — then each of them can clone the shared state
        verbatim (their tables ARE the shared table), after which the
        shared context rolls back to this handle's position and the
        remaining replicas are converged again.  Returns True when the
        handle ends up at the head.
        """
        target = self._log_pos
        ahead = [h for h in entry.handles if h._log_pos > target]
        if not ahead:
            return True
        if any(h._log_pos != entry.head() for h in ahead):
            return False  # staggered divergence; cannot untangle
        for handle in list(ahead):
            handle._fork_warm(entry)
        entry.rewind_to(target)
        self._registry.stats.rewinds += 1
        self._behind_probes = 0
        return True

    def _run_mirrored(
        self,
        context: ProbeGenContext,
        run: Callable[[ProbeGenContext], object],
    ) -> None:
        """Run a context call, mirroring its stat deltas onto the handle."""
        before = [getattr(context.stats, name) for name in _SERVE_FIELDS]
        run(context)
        self._mirror(context, before)

    def _mirror(self, context: ProbeGenContext, before: list) -> None:
        for name, prior in zip(_SERVE_FIELDS, before):
            delta = getattr(context.stats, name) - prior
            if delta:
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # ----- forking ---------------------------------------------------------

    def _fork_warm(self, entry: _SharedEntry) -> None:
        """Clone the shared state (only legal at the log head)."""
        assert self._log_pos == entry.head()
        self._own = entry.context.fork()
        self._finish_fork(entry)
        self._registry.stats.warm_forks += 1

    def _fork(self) -> None:
        """Take an independent context (copy-on-churn divergence)."""
        entry = self._entry
        assert entry is not None
        if self._log_pos == entry.head():
            self._fork_warm(entry)
            return
        # Behind the log: the shared table contains operations this
        # switch never applied.  Clone the shared state anyway and
        # undo the foreign operations on the *private* copy — the same
        # per-op undo records `rewind_to` replays on the shared table,
        # applied to the clone instead — so solver warmth survives
        # even the staggered multi-switch divergences a shared rewind
        # cannot untangle.  The clone's delta API stale-marks affected
        # cached probes as each undo lands, exactly as live churn
        # would.
        own = entry.context.fork()
        for _sig, undo in reversed(entry.log[self._log_pos - entry.base :]):
            for key, previous in reversed(undo):
                if previous is None:
                    current = own.table.get(*key)
                    if current is not None:
                        own.remove_rule(current)
                else:
                    own.add_rule(previous)
        if _tables_identical(own.table, self._my_table):
            self._own = own
            self._registry.stats.warm_forks += 1
        else:
            # Undo reconstruction disagreed with the handle's own view
            # (it never should — the safety net exists so a bug here
            # degrades to the old cold fork instead of corrupting
            # probes).  Start cold from the handle's own table.
            self._own = self._registry._factory(
                self.generator, table=self._my_table.copy()
            )
        self._finish_fork(entry)

    def _finish_fork(self, entry: _SharedEntry) -> None:
        self.forked = True
        self._entry = None
        self._validated.clear()
        self._registry.stats.contexts_forked += 1
        self._registry.forked.append(self)
        self._registry._detach(entry, self)
        if self._obs.enabled:  # type: ignore[attr-defined]
            assert self._own is not None
            self._own.attach_obs(self._obs, self._obs_node)
            self._obs.emit(  # type: ignore[attr-defined]
                "context.forked",
                node=self._obs_node,
                warm=self._own.solver.lemma_count() > 0,
                total_forked=self._registry.stats.contexts_forked,
            )
        if self._registry.on_fork is not None:
            self._registry.on_fork()

    # ----- re-convergence (registry.rededupe) ------------------------------

    def _reattach(self, entry: _SharedEntry) -> None:
        """Re-join a shared entry after the tables converged back.

        Only called by :meth:`SharedContextRegistry.rededupe` once the
        entry's table is rule-sequence-identical to this handle's.
        When the fork was warm, its accumulated state is not simply
        dropped: probe caches merge in both directions (a result is a
        pure function of the now-identical table), and whichever
        context holds the richer solver — more learned lemmas —
        becomes the entry's context, so the warmth the fork earned
        while diverged survives the re-merge.  Future probes are served
        — and cookie-overlaid, validated per-handle — from the shared
        context exactly as before the fork.
        """
        own = self._own
        if own is not None:
            stats = self._registry.stats
            shared = entry.context
            if own.solver.lemma_count() > shared.solver.lemma_count():
                # The fork learned more than the entry did: keep its
                # solver, graft the entry's probe cache onto it.
                stats.cache_entries_merged += own.merge_cache_from(shared)
                entry.context = own
                stats.solvers_kept_on_remerge += 1
            else:
                stats.cache_entries_merged += shared.merge_cache_from(own)
        self._own = None
        self._entry = entry
        self._log_pos = entry.head()
        self.forked = False
        self._behind_probes = 0
        self._validated.clear()
        entry.handles.append(self)
        if self._obs.enabled:  # type: ignore[attr-defined]
            self._obs.emit(  # type: ignore[attr-defined]
                "context.remerged",
                node=self._obs_node,
                mode="reattach",
                sharers=len(entry.handles),
            )

    def _promote(self) -> _SharedEntry:
        """Turn this forked handle's private context into a shared entry.

        The handle keeps its context (no state is copied or lost); the
        context merely becomes joinable so sibling forked handles with
        identical tables can re-attach to it.
        """
        assert self._own is not None
        entry = _SharedEntry(self._own)
        self._own = None
        self._entry = entry
        self._log_pos = 0
        self.forked = False
        self._behind_probes = 0
        entry.handles.append(self)
        self._registry.entries.append(entry)
        if self._obs.enabled:  # type: ignore[attr-defined]
            self._obs.emit(  # type: ignore[attr-defined]
                "context.remerged",
                node=self._obs_node,
                mode="promote",
                sharers=len(entry.handles),
            )
        return entry

    # ----- probe serving ---------------------------------------------------

    def probe_for(self, rule: Rule) -> ProbeResult:
        """A probe for ``rule``, served through the shared context.

        Work done by the underlying context on behalf of this call is
        mirrored into this handle's stats (a solve triggered here
        counts here; a result another replica already paid for counts
        as this switch's cache hit).  The returned result carries this
        switch's own rule object, validated by this switch's
        ``validate_result`` on a private copy — the shared cache is
        never mutated.

        While replicas this switch has not caught up with are ahead of
        it (a churn wave in flight), the probe is generated from
        scratch against the handle's own table instead — never from
        foreign state, and never forcing a fork for a mere read; only
        *persistent* behind-ness resolves the divergence (rewinding the
        ahead replicas off if possible, cold-forking otherwise).
        """
        entry = self._entry
        if entry is not None and self._log_pos != entry.head():
            self._behind_probes += 1
            if self._behind_probes <= self.MAX_BEHIND_PROBES:
                return self._scratch_probe(rule)
            if not self._try_rewind(entry):
                self._fork()
        else:
            self._behind_probes = 0
        context = self._context()
        before = [getattr(context.stats, name) for name in _SERVE_FIELDS]
        raw = context.probe_for(rule)
        self._mirror(context, before)
        key = rule.key()
        memo = self._validated.get(key)
        if memo is not None and memo[0] is raw:
            return memo[1]
        own = self._my_table.get(*key)
        result = replace(raw, rule=own if own is not None else rule)
        if result.ok and self.validate_result is not None:
            result = self.validate_result(result)
        self._validated[key] = (raw, result)
        return result

    def _scratch_probe(self, rule: Rule) -> ProbeResult:
        """From-scratch generation against the own table (uncached)."""
        result = self.generator.generate(self._my_table, rule)
        self.stats.probes_generated += 1
        self.stats.solver_conflicts += result.solver_conflicts
        self.stats.generation_seconds += result.generation_time
        own = self._my_table.get(*rule.key())
        result = replace(result, rule=own if own is not None else rule)
        if result.ok and self.validate_result is not None:
            result = self.validate_result(result)
        return result

    def clear_cache(self) -> None:
        """Drop cached probes (benchmark hook; affects co-shared switches)."""
        self._context().clear_cache()
        self._validated.clear()

    def __repr__(self) -> str:
        state = "forked" if self.forked else (
            "shared" if self.is_shared else "sole"
        )
        return (
            f"SharedProbeGenContext({state}, "
            f"rules={len(self._my_table)}, log_pos={self._log_pos})"
        )
