#!/usr/bin/env python3
"""Steady-state failure detection (the paper's §8.1.1 scenario).

A hub switch (HP-5406zl-like) holds 200 L3 forwarding rules toward four
leaf switches.  Monocle cycles through the rules at 500 probes/s.  We
then (a) silently remove one rule from the data plane, (b) corrupt a
rule to forward to the wrong port, and (c) fail a whole link — and
report how long Monocle takes to notice each.

Run:  python examples/failure_detection.py
"""

from repro import MonitorConfig, MonocleSystem, Network, Rule, Simulator
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.switches.profiles import HP_5406ZL, OVS
from repro.topology.generators import star

NUM_RULES = 200
PROBE_RATE = 500.0


def main():
    sim = Simulator()
    net = Network(
        sim,
        star(4),
        profiles=lambda n: HP_5406ZL if n == "hub" else OVS,
        seed=42,
    )
    system = MonocleSystem(
        net,
        config=MonitorConfig(probe_rate=PROBE_RATE, probe_timeout=0.150),
        dynamic=False,
    )

    rules = []
    for i in range(NUM_RULES):
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000000 + i),
            actions=output(net.port_toward["hub"][f"leaf{i % 4}"]),
        )
        system.preinstall_production_rule("hub", rule)
        rules.append(rule)

    monitor = system.monitor("hub")
    monitor.start_steady_state()
    print(f"monitoring {NUM_RULES} rules at {PROBE_RATE:.0f} probes/s "
          f"(cycle = {NUM_RULES / PROBE_RATE:.2f} s)")

    sim.run_for(1.0)
    print(f"[t={sim.now:.2f}s] warm-up: {monitor.probes_confirmed} probes "
          f"confirmed, {len(monitor.alarms)} alarms")

    # (a) Fail one rule silently in the data plane.
    victim = rules[123]
    net.switch("hub").fail_rule_in_dataplane(victim)
    t_fail = sim.now
    print(f"[t={sim.now:.2f}s] FAILED rule nw_dst=10.0.0.123 in data plane")
    sim.run_for(1.5)
    first = next(a for a in monitor.alarms if a.rule.cookie == victim.cookie)
    print(f"  -> detected after {first.time - t_fail:.3f} s ({first.kind})")

    # (b) Corrupt a rule: forwards to the wrong leaf.
    alarm_count = len(monitor.alarms)
    victim2 = rules[7]
    wrong = net.port_toward["hub"]["leaf2"]
    if victim2.forwarding_set() == {wrong}:
        wrong = net.port_toward["hub"]["leaf3"]
    net.switch("hub").corrupt_rule_in_dataplane(victim2, output(wrong))
    t_fail = sim.now
    print(f"[t={sim.now:.2f}s] CORRUPTED rule nw_dst=10.0.0.7 (wrong port)")
    sim.run_for(1.5)
    first = next(
        a for a in monitor.alarms[
            alarm_count:
        ] if a.rule.cookie == victim2.cookie
    )
    print(f"  -> detected after {first.time - t_fail:.3f} s ({first.kind})")

    # (c) Fail a whole link: ~50 rules die at once.
    alarm_count = len(monitor.alarms)
    net.fail_link("hub", "leaf1")
    t_fail = sim.now
    affected = {
        r.cookie
        for r in rules
        if r.forwarding_set() == {net.port_toward["hub"]["leaf1"]}
    }
    print(
        f"[t={sim.now:.2f}s] FAILED link hub<->leaf1 ({len(affected)} rules)"
    )
    sim.run_for(2.5)
    new_alarms = [
        a for a in monitor.alarms[alarm_count:] if a.rule.cookie in affected
    ]
    times = sorted(a.time - t_fail for a in new_alarms)
    detected = {a.rule.cookie for a in new_alarms}
    print(f"  -> {len(detected)}/{len(affected)} affected rules alarmed; "
          f"first after {times[0]:.3f} s, "
          f"5th after {times[min(4, len(times) - 1)]:.3f} s "
          "(a multi-rule alarm burst indicates a link failure)")

    print(f"\ntotals: {monitor.probes_sent} probes sent, "
          f"{monitor.probes_confirmed} confirmed, "
          f"{monitor.probes_timed_out} timed out, "
          f"{len(monitor.alarms)} alarms")


if __name__ == "__main__":
    main()
