"""Tests for flow-table semantics: priority lookup, FlowMod-style
mutation, overlap queries, and outcome processing."""

import pytest

from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable, OverlapError


def header(**kwargs):
    return {FieldName(k): v for k, v in kwargs.items()}


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = Rule(priority=1, match=Match.wildcard(), actions=output(1))
        high = Rule(priority=9, match=Match.build(nw_src=5), actions=output(2))
        table.install(low)
        table.install(high)
        assert table.lookup(header(nw_src=5)) is high
        assert table.lookup(header(nw_src=6)) is low

    def test_miss_returns_none(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        )
        assert table.lookup(header(nw_src=2)) is None

    def test_lookup_agrees_with_linear_scan(self):
        # Reference property: lookup == max-priority matching rule.
        table = FlowTable(check_overlap=False)
        rules = [
            Rule(
                priority=p,
                match=Match.build(nw_dst=(0x0A000000, p % 9)),
                actions=output(p % 4 + 1),
            )
            for p in range(1, 30)
        ]
        for rule in rules:
            table.install(rule)
        probe = header(nw_dst=0x0A000001)
        expected = max(
            (r for r in rules if r.match.matches(probe)),
            key=lambda r: r.priority,
            default=None,
        )
        assert table.lookup(probe) is expected


class TestInstallSemantics:
    def test_replaces_same_key(self):
        table = FlowTable()
        match = Match.build(nw_src=1)
        table.install(Rule(priority=5, match=match, actions=output(1)))
        table.install(Rule(priority=5, match=match, actions=output(2)))
        assert len(table) == 1
        assert table.lookup(header(nw_src=1)).forwarding_set() == {2}

    def test_equal_priority_overlap_rejected(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        )
        with pytest.raises(OverlapError):
            table.install(
                Rule(priority=5, match=Match.wildcard(), actions=output(2))
            )

    def test_equal_priority_disjoint_allowed(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        )
        table.install(
            Rule(priority=5, match=Match.build(nw_src=2), actions=output(2))
        )
        assert len(table) == 2

    def test_overlap_check_can_be_disabled(self):
        table = FlowTable(check_overlap=False)
        table.install(
            Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        )
        table.install(
            Rule(priority=5, match=Match.wildcard(), actions=output(2))
        )
        assert len(table) == 2

    def test_rules_sorted_desc_priority(self):
        table = FlowTable()
        for priority in (3, 9, 1, 5):
            table.install(
                Rule(
                    priority=priority,
                    match=Match.build(nw_src=priority),
                    actions=output(1),
                )
            )
        assert [r.priority for r in table.rules()] == [9, 5, 3, 1]


class TestRemoval:
    def test_remove_by_key(self):
        table = FlowTable()
        rule = Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        table.install(rule)
        assert table.remove(rule)
        assert len(table) == 0
        assert not table.remove(rule)

    def test_remove_matching_nonstrict_covers(self):
        table = FlowTable(check_overlap=False)
        inside = Rule(
            priority=5,
            match=Match.build(nw_dst=(0x0A000000, 24)),
            actions=output(1),
        )
        outside = Rule(
            priority=6,
            match=Match.build(nw_dst=(0x0B000000, 24)),
            actions=output(1),
        )
        table.install(inside)
        table.install(outside)
        removed = table.remove_matching(Match.build(nw_dst=(0x0A000000, 8)))
        assert removed == [inside]
        assert len(table) == 1

    def test_remove_matching_strict(self):
        table = FlowTable()
        match = Match.build(nw_src=1)
        rule = Rule(priority=5, match=match, actions=output(1))
        table.install(rule)
        assert table.remove_matching(match, strict_priority=4) == []
        assert table.remove_matching(match, strict_priority=5) == [rule]

    def test_clear(self):
        table = FlowTable()
        table.install(Rule(priority=1, match=Match.wildcard(), actions=drop()))
        table.clear()
        assert len(table) == 0


class TestQueries:
    def test_higher_and_lower_priority(self):
        table = FlowTable(check_overlap=False)
        rules = {
            p: Rule(priority=p, match=Match.build(nw_src=1), actions=output(1))
            for p in (1, 5, 9)
        }
        for rule in rules.values():
            table.install(rule)
        assert table.higher_priority(rules[5]) == [rules[9]]
        assert table.lower_priority(rules[5]) == [rules[1]]

    def test_overlapping_filter(self):
        table = FlowTable(check_overlap=False)
        a = Rule(priority=1, match=Match.build(nw_src=1), actions=output(1))
        b = Rule(priority=2, match=Match.build(nw_src=2), actions=output(1))
        c = Rule(priority=3, match=Match.wildcard(), actions=output(1))
        for rule in (a, b, c):
            table.install(rule)
        overlapping = table.overlapping(Match.build(nw_src=1))
        assert a in overlapping and c in overlapping and b not in overlapping

    def test_overlapping_cache_invalidated_on_mutation(self):
        table = FlowTable(check_overlap=False)
        a = Rule(priority=1, match=Match.build(nw_src=1), actions=output(1))
        table.install(a)
        assert table.overlapping(Match.build(nw_src=1)) == [a]
        b = Rule(priority=2, match=Match.wildcard(), actions=output(2))
        table.install(b)
        assert set(
            r.cookie for r in table.overlapping(Match.build(nw_src=1))
        ) == {a.cookie, b.cookie}
        table.remove(a)
        assert table.overlapping(Match.build(nw_src=1)) == [b]

    def test_copy_independent(self):
        table = FlowTable()
        rule = Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        table.install(rule)
        dup = table.copy()
        dup.remove(rule)
        assert len(table) == 1
        assert len(dup) == 0

    def test_contains(self):
        table = FlowTable()
        rule = Rule(priority=5, match=Match.build(nw_src=1), actions=output(1))
        table.install(rule)
        assert rule in table


class TestProcess:
    def test_unicast_emission(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.build(nw_src=1), actions=output(3))
        )
        outcome = table.process(header(nw_src=1))
        assert outcome.ports() == {3}
        assert not outcome.is_drop()

    def test_drop_outcome(self):
        table = FlowTable()
        table.install(Rule(priority=5, match=Match.wildcard(), actions=drop()))
        assert table.process(header(nw_src=1)).is_drop()

    def test_miss_drops(self):
        table = FlowTable()
        assert table.process(header(nw_src=1)).is_drop()

    def test_rewrite_applied_to_emission(self):
        table = FlowTable()
        table.install(
            Rule(
                priority=5,
                match=Match.build(nw_src=1),
                actions=output(2, nw_tos=0x15),
            )
        )
        outcome = table.process(header(nw_src=1, nw_tos=0))
        (port, items), = outcome.emissions
        assert port == 2
        assert dict(items)[FieldName.NW_TOS] == 0x15

    def test_multicast_emits_on_all_ports(self):
        table = FlowTable()
        table.install(
            Rule(
                priority=5,
                match=Match.wildcard(),
                actions=multicast([1, 2, 3]),
            )
        )
        assert table.process(header()).ports() == {1, 2, 3}

    def test_ecmp_chooser_selects_single_port(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.wildcard(), actions=ecmp([4, 7]))
        )
        outcome = table.process(header(), ecmp_chooser=lambda rule: 7)
        assert outcome.ports() == {7}
        assert not outcome.ecmp

    def test_ecmp_default_chooser_lowest(self):
        table = FlowTable()
        table.install(
            Rule(priority=5, match=Match.wildcard(), actions=ecmp([4, 7]))
        )
        assert table.process(header()).ports() == {4}


class TestRuleOutcomeDistinguishability:
    def test_different_ports_distinguishable(self):
        a = RuleOutcome(emissions=((1, ()),))
        b = RuleOutcome(emissions=((2, ()),))
        assert a.distinguishable_from(b)

    def test_same_emissions_not_distinguishable(self):
        a = RuleOutcome(emissions=((1, ()),))
        b = RuleOutcome(emissions=((1, ()),))
        assert not a.distinguishable_from(b)

    def test_drop_vs_forward_distinguishable(self):
        assert RuleOutcome.dropped().distinguishable_from(
            RuleOutcome(emissions=((1, ()),))
        )

    def test_ecmp_vs_ecmp_shared_port_ambiguous(self):
        a = RuleOutcome(emissions=((1, ()), (2, ())), ecmp=True)
        b = RuleOutcome(emissions=((2, ()), (3, ())), ecmp=True)
        assert not a.distinguishable_from(b)

    def test_ecmp_vs_ecmp_disjoint_distinguishable(self):
        a = RuleOutcome(emissions=((1, ()),), ecmp=True)
        b = RuleOutcome(emissions=((2, ()),), ecmp=True)
        assert a.distinguishable_from(b)

    def test_unicast_inside_ecmp_set_ambiguous(self):
        unicast = RuleOutcome(emissions=((2, ()),))
        group = RuleOutcome(emissions=((1, ()), (2, ())), ecmp=True)
        assert not unicast.distinguishable_from(group)
        assert not group.distinguishable_from(unicast)

    def test_multicast_vs_ecmp_count_exception(self):
        # A 2-port multicast inside the ECMP set: packet count differs.
        multi = RuleOutcome(emissions=((1, ()), (2, ())))
        group = RuleOutcome(emissions=((1, ()), (2, ())), ecmp=True)
        assert multi.distinguishable_from(group)

    def test_drop_vs_ecmp_distinguishable(self):
        group = RuleOutcome(emissions=((1, ()),), ecmp=True)
        assert RuleOutcome.dropped().distinguishable_from(group)
