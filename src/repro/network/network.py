"""Building a full simulated network from a topology graph.

The :class:`Network` assigns ports, creates switches, links and control
channels, attaches hosts, and exposes the lookup maps Monocle needs
(which port of switch X faces switch Y, which ports are switch-facing).
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import networkx as nx

from repro.network.channel import ControlChannel
from repro.network.conditioning import ChannelConditioner
from repro.network.host import Host
from repro.network.link import Link
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.switches.profiles import OVS, SwitchProfile
from repro.switches.switch import SimulatedSwitch


class Network:
    """Switches, links, hosts and channels for one topology.

    Args:
        sim: the simulation kernel.
        topology: switch-level graph; node ids become switch ids
            (mapped to integers in sorted order for packet metadata).
        profiles: per-node profile, a single profile for all, or a
            callable ``node -> profile``.
        seed: base seed for all per-switch randomness.
        link_latency: one-way data-plane link latency.
        control_latency: one-way control-channel latency.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: nx.Graph,
        profiles: SwitchProfile
        | Mapping[Hashable, SwitchProfile]
        | Callable[[Hashable], SwitchProfile] = OVS,
        seed: int = 0,
        link_latency: float = 0.0002,
        control_latency: float = 0.001,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = DeterministicRandom(seed)

        self.switches: dict[Hashable, SimulatedSwitch] = {}
        self.channels: dict[Hashable, ControlChannel] = {}
        self.links: dict[frozenset, Link] = {}
        self.hosts: dict[str, Host] = {}
        #: port_toward[u][v] = the port on u that faces v.
        self.port_toward: dict[Hashable, dict[Hashable, int]] = {}
        #: neighbor_on_port[u][p] = the node (switch or host name) on u's port p.
        self.neighbor_on_port: dict[Hashable, dict[int, Hashable]] = {}
        self._next_port: dict[Hashable, int] = {}
        self._switch_numbers: dict[Hashable, int] = {
            node: i + 1 for i, node in enumerate(
                sorted(topology.nodes, key=repr)
            )
        }

        def profile_of(node: Hashable) -> SwitchProfile:
            if callable(profiles):
                return profiles(node)
            if isinstance(profiles, SwitchProfile):
                return profiles
            return profiles[node]

        max_ports = max(
            (topology.degree[n] for n in topology.nodes), default=0
        ) + 16  # headroom for hosts
        for node in sorted(topology.nodes, key=repr):
            self.switches[node] = SimulatedSwitch(
                sim,
                switch_id=self._switch_numbers[node],
                profile=profile_of(node),
                rng=self.rng.fork(self._switch_numbers[node]),
                num_ports=max_ports,
            )
            self.port_toward[node] = {}
            self.neighbor_on_port[node] = {}
            self._next_port[node] = 1
            # Every channel owns a conditioner with a stream forked by
            # switch number: chaos draws are independent per switch and
            # per direction, and (because an idle conditioner draws
            # nothing) cost nothing until a degradation overlay lands.
            conditioner = ChannelConditioner(
                self.rng.fork(0xC0FD00 + self._switch_numbers[node])
            )
            channel = ControlChannel(
                sim,
                latency=control_latency,
                conditioner=conditioner,
            )
            channel.down_handler = self.switches[node].receive_message
            self.switches[node].send_to_controller = channel.send_up
            self.channels[node] = channel

        for u, v in sorted(
            topology.edges, key=lambda e: (repr(e[0]), repr(e[1]))
        ):
            self._wire_link(u, v, link_latency)

    # ----- wiring ----------------------------------------------------------

    def _alloc_port(self, node: Hashable) -> int:
        port = self._next_port[node]
        self._next_port[node] = port + 1
        return port

    def _wire_link(self, u: Hashable, v: Hashable, latency: float) -> None:
        port_u = self._alloc_port(u)
        port_v = self._alloc_port(v)
        link = Link(self.sim, latency=latency)
        switch_u = self.switches[u]
        switch_v = self.switches[v]
        link.connect(
            a_handler=lambda raw, s=switch_u, p=port_u: s.inject(raw, p),
            b_handler=lambda raw, s=switch_v, p=port_v: s.inject(raw, p),
        )
        switch_u.attach_port(port_u, link.send_from_a)
        switch_v.attach_port(port_v, link.send_from_b)
        self.links[frozenset((u, v))] = link
        self.port_toward[u][v] = port_u
        self.port_toward[v][u] = port_v
        self.neighbor_on_port[u][port_u] = v
        self.neighbor_on_port[v][port_v] = u

    def add_host(
        self, name: str, switch: Hashable, latency: float = 0.0002
    ) -> Host:
        """Attach a new host to an edge port of ``switch``."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self.sim, name)
        port = self._alloc_port(switch)
        link = Link(self.sim, latency=latency)
        sw = self.switches[switch]
        # Endpoint A receives what the switch-side sends and vice versa:
        # the host transmits from the B side (delivering to the switch),
        # the switch emits from the A side (delivering to the host).
        link.connect(
            a_handler=lambda raw, s=sw, p=port: s.inject(raw, p),
            b_handler=host.receive,
        )
        host.transmit = link.send_from_b
        sw.attach_port(port, link.send_from_a)
        self.hosts[name] = host
        self.port_toward[switch][name] = port
        self.neighbor_on_port[switch][port] = name
        return host

    # ----- queries -----------------------------------------------------------

    def switch(self, node: Hashable) -> SimulatedSwitch:
        """The simulated switch for a topology node."""
        return self.switches[node]

    def switch_number(self, node: Hashable) -> int:
        """Integer id used in probe metadata for this node."""
        return self._switch_numbers[node]

    def channel(self, node: Hashable) -> ControlChannel:
        """The control channel of a node's switch."""
        return self.channels[node]

    def conditioner(self, node: Hashable) -> ChannelConditioner:
        """The chaos conditioner on a node's control channel."""
        conditioner = self.channels[node].conditioner
        if conditioner is None:  # pragma: no cover - Network always wires one
            raise ValueError(f"channel of {node!r} has no conditioner")
        return conditioner

    def link_between(self, u: Hashable, v: Hashable) -> Link:
        """The link connecting two adjacent switches."""
        return self.links[frozenset((u, v))]

    def switch_facing_ports(self, node: Hashable) -> list[int]:
        """Ports of ``node`` that lead to other switches (not hosts)."""
        return sorted(
            port
            for port, nbr in self.neighbor_on_port[node].items()
            if nbr in self.switches
        )

    def upstream_options(
        self, node: Hashable
    ) -> dict[int, tuple[Hashable, int]]:
        """For each switch-facing in_port ``p`` of ``node``: the neighbor
        and the neighbor's port that emits into ``p``.

        This is what probe injection needs: to make a probe enter
        ``node`` on port ``p``, PacketOut on the neighbor's port.
        """
        options: dict[int, tuple[Hashable, int]] = {}
        for port, nbr in self.neighbor_on_port[node].items():
            if nbr in self.switches:
                options[port] = (nbr, self.port_toward[nbr][node])
        return options

    def fail_link(self, u: Hashable, v: Hashable) -> None:
        """Fail the link between two switches (both directions).

        Emissions at both switches toward the dead link are also
        suppressed so no traffic crosses.
        """
        self.link_between(u, v).fail()

    def __repr__(self) -> str:
        return (
            f"Network({len(self.switches)} switches, "
            f"{len(self.links)} links, {len(self.hosts)} hosts)"
        )
