"""The Multiplexer proxy and full-system deployment (paper §7).

The paper realizes Monocle as a chain of proxies: one *Monitor* per
switch plus a *Multiplexer* that "connects to Monitors of all monitored
switches and is responsible for forwarding their PacketOut/In messages
to/from the switch".  :class:`Multiplexer` does exactly that routing:

* probe injection: a Monitor probing switch X needs the probe to enter
  X on a specific port, so the Multiplexer sends a PacketOut to the
  *upstream* neighbor with the right output port;
* probe collection: a probe caught by downstream switch Z arrives on
  Z's control channel; the Multiplexer decodes the probe metadata and
  hands it to the owning Monitor, translating Z's ingress port into the
  probed switch's egress port.

:class:`MonocleSystem` wires everything for a
:class:`~repro.network.network.Network`: computes the catching plan
(§6), pre-installs catching rules, builds a Monitor (+ optional
DynamicMonitor) per switch and interposes all control channels.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.core.catching import (
    CatchingPlan,
    ColoringAlgorithm,
    plan_catching_rules,
)
from repro.core.dynamic import DynamicMonitor
from repro.core.monitor import Monitor, MonitorConfig
from repro.core.probegen import ProbeGenerator
from repro.core.schedule import ProbeScheduler, make_policy
from repro.core.shared import SharedContextRegistry
from repro.obs import NULL_OBSERVER, NullObserver, Observer
from repro.openflow.actions import CONTROLLER_PORT
from repro.openflow.messages import Message, PacketIn, PacketOut
from repro.packets.parse import ParseError, parse_packet
from repro.packets.payload import ProbeMetadata
from repro.network.network import Network


class Multiplexer:
    """Routes probe PacketOut/PacketIn traffic between Monitors and
    switches."""

    def __init__(self, network: Network) -> None:
        self.network = network
        #: switch_number -> (node, Monitor), filled by MonocleSystem.
        self.monitors: dict[int, tuple[Hashable, Monitor]] = {}
        self.probes_routed = 0
        self.probes_unroutable = 0

    def register(self, node: Hashable, monitor: Monitor) -> None:
        """Register the Monitor responsible for a switch."""
        self.monitors[monitor.switch_number] = (node, monitor)

    def inject(
        self, probed_node: Hashable, packet: bytes, in_port: int
    ) -> None:
        """Make ``packet`` enter ``probed_node`` on ``in_port``.

        Sends a PacketOut to the upstream neighbor attached to that
        port.  Unroutable requests (no upstream switch there) are
        counted and dropped.
        """
        options = self.network.upstream_options(probed_node)
        target = options.get(in_port)
        if target is None:
            self.probes_unroutable += 1
            return
        upstream_node, upstream_port = target
        self.network.channel(upstream_node).send_down(
            PacketOut(payload=packet, out_port=upstream_port)
        )

    def route_packet_in(
        self, caught_at: Hashable, msg: PacketIn, metadata: ProbeMetadata
    ) -> bool:
        """Deliver a caught probe to its owning Monitor.

        Returns True when the probe was routed; False when no Monitor
        owns it (stale or foreign traffic).
        """
        entry = self.monitors.get(metadata.switch_id)
        if entry is None:
            self.probes_unroutable += 1
            return False
        probed_node, monitor = entry
        egress_port = self._egress_port(probed_node, caught_at)
        if egress_port is None:
            self.probes_unroutable += 1
            return False
        self.probes_routed += 1
        translated = PacketIn(
            xid=msg.xid,
            payload=msg.payload,
            in_port=egress_port,
            reason=msg.reason,
        )
        monitor.handle_caught_probe(translated, metadata)
        return True

    def _egress_port(
        self, probed_node: Hashable, caught_at: Hashable
    ) -> int | None:
        if probed_node == caught_at:
            # The probed switch's own rule sent the packet to the
            # controller (e.g. a controller-bound production rule).
            return CONTROLLER_PORT
        return self.network.port_toward.get(probed_node, {}).get(caught_at)


class MonocleSystem:
    """Monocle deployed over an entire simulated network.

    Args:
        network: the wired network to monitor.
        plan: catching plan; computed (strategy 1, exact coloring) when
            omitted.
        config: monitoring configuration shared by all Monitors.
        dynamic: create a DynamicMonitor per switch so FlowMods are
            confirmed and acknowledged (§4).
        controller_handler: ``(node, message) -> None`` receiving
            non-probe upstream traffic and UpdateAcks.
        shared_contexts: when given, Monitors draw their probe-gen
            contexts from this registry, deduping switches with
            identical tables and compatible generator configs into one
            shared solver context (copy-on-churn).
        probe_policy: probe-scheduling policy per switch — a
            :data:`~repro.core.schedule.POLICIES` name for the whole
            fleet, a node -> name mapping, or a callable
            ``node -> name``.
        monitored_nodes: when given, build Monitors only for these
            switches (a sharded fleet worker owning one shard of a
            full-topology mirror).  Every switch still gets its catch
            rules and an up-handler — an owned switch's probes are
            caught at the local mirrors of unowned neighbors — but
            unowned switches get no Monitor, no production rules, and
            no probing.
    """

    def __init__(
        self,
        network: Network,
        plan: CatchingPlan | None = None,
        config: MonitorConfig | None = None,
        dynamic: bool = True,
        controller_handler: Callable[[Hashable, Message], None] | None = None,
        use_drop_postponing: bool = False,
        shared_contexts: "SharedContextRegistry | None" = None,
        probe_policy: "str | Mapping | Callable" = "round_robin",
        obs: "Observer | NullObserver | None" = None,
        monitored_nodes: "Iterable[Hashable] | None" = None,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.config = config if config is not None else MonitorConfig()
        self.controller_handler = controller_handler
        self.probe_policy = probe_policy
        if plan is None:
            plan = plan_catching_rules(
                network.topology,
                strategy=1,
                algorithm=ColoringAlgorithm.EXACT,
                slots=max(1, self.config.probe_window),
            )
        self.plan = plan
        self.shared_contexts = shared_contexts
        self.multiplexer = Multiplexer(network)
        self.monitors: dict[Hashable, Monitor] = {}
        self.dynamics: dict[Hashable, DynamicMonitor] = {}
        self.monitored_nodes = (
            frozenset(network.topology.nodes)
            if monitored_nodes is None
            else frozenset(monitored_nodes)
        )

        for node in sorted(network.topology.nodes, key=repr):
            self._deploy(node, dynamic, use_drop_postponing)

    def _policy_name(self, node: Hashable) -> str:
        """Resolve the probe-policy name for one switch."""
        spec = self.probe_policy
        if isinstance(spec, str):
            return spec
        if isinstance(spec, Mapping):
            return spec.get(node, "round_robin")
        return spec(node)

    def _deploy(
        self, node: Hashable, dynamic: bool, use_drop_postponing: bool
    ) -> None:
        network = self.network
        switch = network.switch(node)
        channel = network.channel(node)
        switch_facing = network.switch_facing_ports(node)

        # Pre-install the catching rules on the switch and record them
        # in the expected table (they are part of the Hit constraint).
        # This happens on every switch — monitored or not — because a
        # monitored switch's probes are caught at its (possibly
        # unmonitored) neighbors' tables.
        catch_rules = self.plan.catching_rules(node)
        for rule in catch_rules:
            switch.install_directly(rule)
        channel.up_handler = lambda msg, n=node: self._from_switch(n, msg)
        if node not in self.monitored_nodes:
            return

        downstream = next(iter(network.topology.neighbors(node)), None)
        generator = ProbeGenerator(
            catch_match=self.plan.probe_match(node, downstream),
            valid_in_ports=tuple(switch_facing) if switch_facing else None,
        )
        observable = frozenset(switch_facing) | {CONTROLLER_PORT}
        probe_context = None
        if self.shared_contexts is not None:
            # Seed the context with the catch rules so replicas compare
            # equal at acquire time (same-color switches install
            # identical catch sets); the Monitor then skips preinstall.
            probe_context = self.shared_contexts.acquire(
                generator, rules=catch_rules
            )
        monitor = Monitor(
            sim=self.sim,
            node=node,
            switch_number=network.switch_number(node),
            generator=generator,
            config=self.config,
            observable_ports=observable,
            forward_down=channel.send_down,
            forward_up=lambda msg, n=node: self._to_controller(n, msg),
            inject_probe=(
                lambda packet, in_port, n=node: self.multiplexer.inject(
                    n, packet, in_port
                )
            ),
            probe_context=probe_context,
            scheduler=ProbeScheduler(
                policy=make_policy(self._policy_name(node))
            ),
            obs=self.obs,
            # The window pool engages only when pipelining is on: the
            # default probe_window=1 keeps the Monitor on the classic
            # single-probe path (no pool, no header rewrites).  A plan
            # with fewer slots than the requested window — a too-narrow
            # catch field — yields a smaller pool, and the Monitor
            # clamps its effective window to it (Monitor.window_clamp).
            value_pool=(
                self.plan.value_pool(node)
                if self.config.probe_window > 1
                else None
            ),
        )
        if probe_context is None:
            for rule in catch_rules:
                monitor.preinstall(rule)
        self.monitors[node] = monitor
        self.multiplexer.register(node, monitor)
        if dynamic:
            neighbor_port = switch_facing[0] if switch_facing else None
            self.dynamics[node] = DynamicMonitor(
                monitor,
                use_drop_postponing=use_drop_postponing,
                drop_postpone_port=neighbor_port,
            )

    # ----- controller-facing API ----------------------------------------

    def send_to_switch(self, node: Hashable, msg: Message) -> None:
        """Entry point for the controller: goes through Monocle."""
        dynamic = self.dynamics.get(node)
        if dynamic is not None:
            dynamic.from_controller(msg)
        else:
            self.monitors[node].from_controller(msg)

    def monitor(self, node: Hashable) -> Monitor:
        """The Monitor for a switch."""
        return self.monitors[node]

    def dynamic(self, node: Hashable) -> DynamicMonitor:
        """The DynamicMonitor for a switch."""
        return self.dynamics[node]

    def start_steady_state(self) -> None:
        """Start the §3 monitoring cycle on every switch."""
        for monitor in self.monitors.values():
            monitor.start_steady_state()

    def preinstall_production_rule(self, node: Hashable, rule) -> None:
        """Install a production rule directly (pre-experiment setup),
        keeping switch and Monitor views consistent."""
        self.network.switch(node).install_directly(rule)
        self.monitors[node].preinstall(rule)

    # ----- internal routing ----------------------------------------------

    def _from_switch(self, node: Hashable, msg: Message) -> None:
        if isinstance(msg, PacketIn):
            metadata = self._probe_metadata(msg)
            if metadata is not None:
                self.multiplexer.route_packet_in(node, msg, metadata)
                return
        monitor = self.monitors.get(node)
        if monitor is not None:
            monitor.from_switch(msg)

    @staticmethod
    def _probe_metadata(msg: PacketIn) -> ProbeMetadata | None:
        try:
            _values, payload = parse_packet(msg.payload, msg.in_port)
        except ParseError:
            return None
        return ProbeMetadata.decode(payload)

    def _to_controller(self, node: Hashable, msg: Message) -> None:
        if self.controller_handler is not None:
            self.controller_handler(node, msg)

    def total_alarms(self) -> list:
        """All alarms across monitors, time-ordered."""
        alarms = []
        for monitor in self.monitors.values():
            alarms.extend(monitor.alarms)
        return sorted(alarms, key=lambda a: a.time)
