"""Tuple-space overlap index: equivalence, maintenance, fingerprints.

The index is a pure performance structure — every behaviour here is
defined by the linear reference:

* :meth:`FlowTable.overlapping` must return the *identical list* (set
  and order) as the linear packed scan and as a brute-force
  ``Match.overlaps`` sweep, under randomized churn with priority ties
  and wildcard-heavy tables (hypothesis property);
* :meth:`FlowTable.lookup` must pick the same winner as first-match
  iteration in table order;
* the rolling :meth:`FlowTable.fingerprint` must equal the from-scratch
  :func:`table_fingerprint` after every operation;
* churn must never trigger a wholesale rebuild of either engine
  (``index_builds`` / ``packed_builds`` stay at 1 — the O(N)-rebuild
  regression test for the old ``_packed_rows = None`` invalidation).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.actions import ActionList, Drop, output
from repro.openflow.fields import FieldName, HEADER
from repro.openflow.match import FieldMatch, Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable, table_fingerprint
from repro.openflow.tuplespace import TupleSpaceIndex, signature_of


# ----- strategies ---------------------------------------------------------


def _prefix(field_name, value, length):
    field = HEADER.field(field_name)
    return FieldMatch.prefix(field, value, length)


@st.composite
def matches(draw):
    """Wildcard-heavy matches: prefixes, exacts, odd non-prefix masks."""
    fields = {}
    if draw(st.booleans()):
        fields[FieldName.DL_TYPE] = FieldMatch.exact(
            HEADER.field(FieldName.DL_TYPE), 0x0800
        )
    length = draw(st.sampled_from([0, 4, 8, 14, 16, 24, 31, 32]))
    if length:
        value = draw(st.integers(0, (1 << 32) - 1))
        fields[FieldName.NW_DST] = _prefix(FieldName.NW_DST, value, length)
    if draw(st.booleans()):
        length = draw(st.sampled_from([8, 16, 32]))
        value = draw(st.integers(0, (1 << 32) - 1))
        fields[FieldName.NW_SRC] = _prefix(FieldName.NW_SRC, value, length)
    if draw(st.booleans()):
        fields[FieldName.TP_DST] = FieldMatch.exact(
            HEADER.field(FieldName.TP_DST), draw(st.sampled_from([22, 80]))
        )
    if draw(st.booleans()):
        # Non-prefix mask: coarsens to wildcard in the signature, so
        # this exercises the fallback scan path.
        mask = draw(st.sampled_from([0x0F0F, 0x00FF, 0x5555]))
        value = draw(st.integers(0, (1 << 16) - 1)) & mask
        fields[FieldName.TP_SRC] = FieldMatch(value=value, mask=mask)
    return Match(fields)


@st.composite
def rules(draw):
    priority = draw(st.integers(1, 6))  # small range: plenty of ties
    match = draw(matches())
    actions = draw(
        st.sampled_from(
            [output(1), output(2), output(3), ActionList((Drop(),))]
        )
    )
    return Rule(priority=priority, match=match, actions=actions)


@st.composite
def headers(draw):
    values = {
        FieldName.DL_TYPE: draw(st.sampled_from([0x0800, 0x0806])),
        FieldName.NW_DST: draw(st.integers(0, (1 << 32) - 1)),
        FieldName.NW_SRC: draw(st.integers(0, (1 << 32) - 1)),
        FieldName.TP_DST: draw(st.sampled_from([22, 80, 443])),
        FieldName.TP_SRC: draw(st.integers(0, (1 << 16) - 1)),
    }
    return values


def _reference_overlapping(table: FlowTable, match: Match) -> list:
    return [r.key() for r in table.rules() if r.match.overlaps(match)]


def _reference_lookup(table: FlowTable, header) -> Rule | None:
    for rule in table.rules():
        if rule.match.matches(header):
            return rule
    return None


# ----- the equivalence property ------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(rules(), max_size=25),
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove", "modify"]), rules()),
        max_size=25,
    ),
    queries=st.lists(matches(), min_size=1, max_size=4),
    probes=st.lists(headers(), min_size=1, max_size=4),
)
def test_index_linear_equivalence_under_churn(initial, ops, queries, probes):
    indexed = FlowTable(check_overlap=False, use_index=True)
    linear = FlowTable(check_overlap=False, use_index=False)

    def check():
        assert indexed.fingerprint() == table_fingerprint(indexed.rules())
        assert indexed.fingerprint() == linear.fingerprint()
        for match in queries + [r.match for r in indexed.rules()[:3]]:
            expected = _reference_overlapping(linear, match)
            assert [
                r.key() for r in indexed.overlapping(match)
            ] == expected
            assert [
                r.key() for r in linear.overlapping(match)
            ] == expected
        for header in probes:
            expected_rule = _reference_lookup(linear, header)
            got = indexed.lookup(header)
            if expected_rule is None:
                assert got is None
            else:
                assert got is not None
                assert got.key() == expected_rule.key()

    for rule in initial:
        indexed.install(rule)
        linear.install(rule)
    # Force both engines to exist before churn starts.
    indexed.overlapping(Match.wildcard())
    linear.overlapping(Match.wildcard())
    check()

    live = list(initial)
    for kind, rule in ops:
        if kind == "add" or not live:
            indexed.install(rule)
            linear.install(rule)
            live.append(rule)
        elif kind == "remove":
            victim = live[len(live) // 2]
            indexed.remove(victim)
            linear.remove(victim)
            live = [r for r in live if r.key() != victim.key()]
        else:  # modify: same key, new actions (same-key replace path)
            target = live[len(live) // 3]
            new_rule = target.with_actions(output(7))
            indexed.install(new_rule)
            linear.install(new_rule)
            live = [
                new_rule if r.key() == new_rule.key() else r for r in live
            ]
        check()

    # Churn never rebuilt either engine from scratch.
    assert indexed.index_builds == 1
    assert linear.packed_builds == 1


# ----- the no-wholesale-rebuild regression -------------------------------


def _filler(i: int) -> Rule:
    return Rule(
        priority=10 + i,
        match=Match.build(nw_dst=0x0A000000 + i),
        actions=output(1 + i % 3),
    )


class TestNoWholesaleRebuild:
    """The seed behaviour set ``_packed_rows = None`` on every mutation,
    making each churn step pay an O(N) rebuild on the next query.  Both
    engines must instead be maintained incrementally."""

    @pytest.mark.parametrize("use_index", [True, False])
    def test_churn_never_rebuilds(self, use_index):
        table = FlowTable(
            (_filler(i) for i in range(256)),
            check_overlap=False,
            use_index=use_index,
        )
        probe = Match.build(nw_dst=(0x0A000000, 24))
        baseline = {r.key() for r in table.overlapping(probe)}
        assert baseline  # engine built by the first query
        for step in range(120):
            victim = _filler(step % 256)
            table.remove(victim)
            assert table.overlapping(victim.match) == []
            table.install(victim)
            got = {r.key() for r in table.overlapping(probe)}
            assert got == baseline
        if use_index:
            assert table.index_builds == 1
            assert table.packed_builds == 0
        else:
            assert table.packed_builds == 1
            assert table.index_builds == 0

    def test_linear_rows_compact_under_deletion_storms(self):
        table = FlowTable(
            (_filler(i) for i in range(256)),
            check_overlap=False,
            use_index=False,
        )
        table.overlapping(Match.wildcard())
        for i in range(200):
            table.remove(_filler(i))
        assert len(table.overlapping(Match.wildcard())) == 56
        assert table.packed_builds == 1
        assert table.packed_compactions >= 1

    def test_replace_updates_linear_rows_in_place(self):
        table = FlowTable(
            (_filler(i) for i in range(8)),
            check_overlap=False,
            use_index=False,
        )
        table.overlapping(Match.wildcard())
        replacement = _filler(3).with_actions(output(9))
        table.install(replacement)
        hit = [
            r
            for r in table.overlapping(_filler(3).match)
            if r.key() == replacement.key()
        ]
        assert hit == [replacement]
        assert table.packed_builds == 1


# ----- rolling fingerprint ------------------------------------------------


class TestRollingFingerprint:
    def test_matches_from_scratch_after_every_operation(self):
        table = FlowTable(check_overlap=False)
        history = [_filler(i) for i in range(20)]
        for rule in history:
            table.install(rule)
            assert table.fingerprint() == table_fingerprint(table.rules())
        for rule in history[::2]:
            table.remove(rule)
            assert table.fingerprint() == table_fingerprint(table.rules())
        replacement = history[1].with_actions(output(9))
        table.install(replacement)
        assert table.fingerprint() == table_fingerprint(table.rules())
        table.clear()
        assert table.fingerprint() == table_fingerprint([])

    def test_cookie_free_and_order_insensitive(self):
        a = [_filler(1), _filler(2)]
        b = [
            Rule(priority=r.priority, match=r.match, actions=r.actions)
            for r in reversed(a)
        ]
        ta = FlowTable(a, check_overlap=False)
        tb = FlowTable(b, check_overlap=False)
        assert ta.fingerprint() == tb.fingerprint()

    def test_copy_carries_the_accumulator(self):
        table = FlowTable((_filler(i) for i in range(10)),
                          check_overlap=False)
        dup = table.copy()
        assert dup.fingerprint() == table.fingerprint()
        dup.remove(_filler(0))
        assert dup.fingerprint() != table.fingerprint()
        assert dup.fingerprint() == table_fingerprint(dup.rules())


# ----- index internals ----------------------------------------------------


class TestTupleSpaceIndex:
    def test_signature_is_intersection_compatible(self):
        masks = [
            Match.build(nw_dst=(0x0A000000, 20)).packed()[1],
            Match.build(nw_dst=(0x0A000000, 8), dl_type=0x0800).packed()[1],
            Match.build(tp_dst=80).packed()[1],
            0,
        ]
        for a in masks:
            sig = signature_of(a)
            for b in masks:
                assert signature_of(sig & b) == sig & signature_of(b)

    def test_tombstones_compact(self):
        index = TupleSpaceIndex()
        match = Match.build(nw_dst=(0x0A000000, 24))
        value, mask = match.packed()
        for i in range(100):
            index.add(i, value | i, mask)
        for i in range(90):
            index.discard(i)
        assert index.compactions >= 1
        assert len(index) == 10
        assert sorted(index.query(value, mask)) == list(range(90, 100))

    def test_copy_is_independent(self):
        index = TupleSpaceIndex()
        value, mask = Match.build(nw_dst=0x0A000001).packed()
        index.add("a", value, mask)
        dup = index.copy()
        dup.discard("a")
        assert "a" in index and "a" not in dup
        assert index.query(value, mask) == ["a"]
        assert dup.query(value, mask) == []

    def test_level_cap_evicts_but_stays_correct(self):
        index = TupleSpaceIndex()
        value, mask = Match.build(
            nw_dst=(0x0A000000, 32), nw_src=(0x14000000, 32)
        ).packed()
        index.add("r", value, mask)
        # Query with many distinct query signatures to churn levels.
        for dst_len in (8, 16, 24, 32):
            for src_len in (0, 8, 16, 24, 32):
                kwargs = {"nw_dst": (0x0A000000, dst_len)}
                if src_len:
                    kwargs["nw_src"] = (0x14000000, src_len)
                q = Match.build(**kwargs)
                assert index.query(*q.packed()) == ["r"]
