"""Pipelined monitoring: detection latency vs. probe window size.

The paper's §3 steady-state cycle serves one rule per probe tick, so
detection latency on an N-rule table is cycle-bound:
``~uniform(0, N/probe_rate) + probe_timeout``.  PR 10 pipelines the
cycle — a per-switch window of W concurrent outstanding probes, each
carrying a distinct §6 reserved header value so the catching plane
attributes every PacketIn unambiguously — and each tick tops the window
back up, so the sustained probe rate approaches ``W * probe_rate`` and
detection latency scales toward 1/W.

This benchmark measures that trajectory on one monitored star hub with
a ~4k-rule table (scaled by ``REPRO_BENCH_SCALE``): for each
W ∈ {1, 4, 8}, silently drop a data-plane rule (the §2 failure), wait
for the steady cycle to raise the ``missing`` alarm, repair, repeat.

Writes ``BENCH_pipeline.json`` and **fails** unless

* the W=8 median detection latency is ≤ 0.35x the W=1 median,
* no arm raises a single false alarm (probe pipelining must not
  confuse the catching plane's attribution), and
* the W=1 arm's alarm timeline is byte-identical to a default-config
  run (``probe_window=1`` keeps the paper path exactly).

Throughput note: the window refills once per tick, so the sustained
rate is ``W * probe_rate / (1 + RTT * probe_rate)`` — the probe RTT
(~2 ms on the simulated star) must be well under the tick interval for
the speedup to approach W.  The 250/s probe rate (4 ms ticks) keeps
this benchmark in that regime; at 500/s the same hardware would only
reach ~W/2.
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import print_header, write_bench_artifact
from repro.analysis import format_table
from repro.core.monitor import Monitor, MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.topology.generators import star

NUM_RULES = 4096
#: 4 ms ticks: an order of magnitude above the simulated probe RTT, so
#: the windowed arms actually sustain ~W probes per tick (see module
#: docstring).
PROBE_RATE = 250.0
TIMEOUT = 0.150
REPS = 7
WINDOWS = (1, 4, 8)


class PipelineRig:
    """One monitored star hub; drops are injected straight into the
    data plane (control plane and Monitor both still expect the rule)."""

    def __init__(
        self, window: int | None, seed: int, num_rules: int
    ) -> None:
        self.num_rules = num_rules
        self.sim = Simulator()
        self.net = Network(self.sim, star(4), seed=seed)
        config = dict(probe_rate=PROBE_RATE, probe_timeout=TIMEOUT)
        if window is not None:
            config["probe_window"] = window
        self.system = MonocleSystem(
            self.net,
            config=MonitorConfig(**config),
            dynamic=False,
            probe_policy="round_robin",
        )
        self.rng = DeterministicRandom(seed).fork(0x919E)
        self.rules: list[Rule] = []
        for i in range(num_rules):
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(
                    self.net.port_toward["hub"][f"leaf{i % 4}"]
                ),
            )
            self.system.preinstall_production_rule("hub", rule)
            self.rules.append(rule)
        self.monitor: Monitor = self.system.monitor("hub")
        self.victim_keys: set[tuple] = set()
        self.monitor.start_steady_state()
        self.sim.run_for(0.05)

    def run_rep(self) -> float:
        """Silently drop one data-plane rule; returns detection latency
        (drop -> first alarm on the victim's key)."""
        victim = self.rng.choose(self.rules)
        victim_key = victim.key()
        self.victim_keys.add(victim_key)
        alarm_start = len(self.monitor.alarms)
        t_drop = self.sim.now
        assert self.net.switch("hub").fail_rule_in_dataplane(victim)

        detection = None
        deadline = (
            t_drop + 2 * self.num_rules / PROBE_RATE + 10 * TIMEOUT
        )
        while self.sim.now < deadline:
            self.sim.run_for(0.02)
            hits = [
                a.time
                for a in self.monitor.alarms[alarm_start:]
                if a.rule.key() == victim_key
            ]
            if hits:
                detection = hits[0] - t_drop
                break
        assert detection is not None, "dropped rule never detected"

        # Repair the data plane, then drain in-flight probes (a probe
        # launched just before the repair may still time out).
        self.net.switch("hub").dataplane.install(victim)
        self.sim.run_for(2 * TIMEOUT)
        return detection

    def false_alarms(self) -> list:
        """Alarms on rules that were never dropped."""
        return [
            a
            for a in self.monitor.alarms
            if a.rule.key() not in self.victim_keys
        ]

    def timeline(self) -> list[tuple[float, tuple, str]]:
        return [
            (a.time, a.rule.key(), a.kind) for a in self.monitor.alarms
        ]


def test_pipeline_detection_latency_by_window(scale, seed):
    num_rules = max(256, int(NUM_RULES * scale))
    cycle_s = num_rules / PROBE_RATE

    results: dict[int, list[float]] = {}
    rigs: dict[int, PipelineRig] = {}
    for window in WINDOWS:
        rig = PipelineRig(window, seed, num_rules)
        results[window] = [rig.run_rep() for _ in range(REPS)]
        rigs[window] = rig
        # Pipelining must never confuse the catching plane: an alarm on
        # a never-dropped rule would mean a probe was mis-attributed.
        assert not rig.false_alarms(), (
            f"W={window}: false alarms {rig.false_alarms()!r}"
        )

    # Paper-path pin: a default config (no probe_window) must produce
    # the exact alarm timeline of the explicit W=1 arm.
    pin = PipelineRig(None, seed, num_rules)
    pin_latencies = [pin.run_rep() for _ in range(REPS)]
    assert pin.timeline() == rigs[1].timeline(), (
        "default-config alarm timeline diverged from probe_window=1"
    )
    assert pin_latencies == results[1]

    print_header(
        f"Pipelined monitoring — silent-drop detection latency by "
        f"window ({num_rules} rules, {PROBE_RATE:.0f} probes/s paced, "
        f"{TIMEOUT * 1e3:.0f} ms timeout, {REPS} reps)"
    )
    rows = []
    table_rows = []
    base_median = statistics.median(results[WINDOWS[0]])
    for window in WINDOWS:
        latencies = results[window]
        monitor = rigs[window].monitor
        median = statistics.median(latencies)
        row = {
            "window": window,
            "median_s": round(median, 4),
            "min_s": round(min(latencies), 4),
            "max_s": round(max(latencies), 4),
            "vs_w1": round(median / base_median, 4),
            "probes_sent": monitor.probes_sent,
            "window_peak": monitor.window_peak,
            "window_clamp": monitor.window_clamp,
            "reserved_overflows": monitor.reserved_overflows,
            "false_alarms": 0,
        }
        rows.append(row)
        table_rows.append(
            [
                window,
                f"{row['median_s']:.3f}",
                f"{row['min_s']:.3f}",
                f"{row['max_s']:.3f}",
                f"{row['vs_w1']:.2f}x",
                row["window_peak"],
                row["probes_sent"],
            ]
        )
    print(
        format_table(
            [
                "W",
                "median s",
                "min s",
                "max s",
                "vs W=1",
                "peak depth",
                "probes",
            ],
            table_rows,
        )
    )
    print(
        f"\ncycle time at W=1 is {cycle_s:.2f}s; detection pays "
        "~uniform(0, cycle/W) + timeout, so the ratio floors at the "
        f"{TIMEOUT:.3f}s probe timeout."
    )

    path = write_bench_artifact(
        "pipeline",
        {
            "bench": "pipeline_detection_latency_by_window",
            "unit": "seconds_detection_latency",
            "rules": num_rules,
            "probe_rate": PROBE_RATE,
            "probe_timeout_s": TIMEOUT,
            "reps": REPS,
            "rows": rows,
        },
    )
    print(f"artifact: {path}")

    medians = {row["window"]: row["median_s"] for row in rows}
    # CI gate: W=8 must cut the W=1 median by at least ~3x (0.35
    # leaves slack for the probe-timeout floor and window stalls while
    # a dead rule's probe holds a slot for the full timeout).
    assert medians[8] <= 0.35 * medians[1], (
        f"W=8 median {medians[8]:.3f}s not <= 0.35x W=1 median "
        f"{medians[1]:.3f}s"
    )
    # Monotone: a wider window never slows detection down.
    assert medians[8] <= medians[4] <= medians[1]
