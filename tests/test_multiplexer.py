"""Tests for the Multiplexer and MonocleSystem wiring (§6/§7)."""


from repro.core.multiplexer import MonocleSystem, Multiplexer
from repro.network import Network
from repro.openflow.actions import CONTROLLER_PORT, output
from repro.openflow.match import Match
from repro.openflow.messages import (
    EchoRequest,
    FlowMod,
    FlowModCommand,
    PacketIn,
)
from repro.openflow.rule import Rule
from repro.packets.craft import craft_packet
from repro.packets.payload import ProbeMetadata
from repro.sim.kernel import Simulator
from repro.topology.generators import star, triangle


def make_system(**kwargs):
    sim = Simulator()
    net = Network(sim, triangle(), seed=2)
    upstream = []
    system = MonocleSystem(
        net,
        dynamic=False,
        controller_handler=lambda node, msg: upstream.append((node, msg)),
        **kwargs,
    )
    return sim, net, system, upstream


class TestDeployment:
    def test_monitor_per_switch(self):
        _, net, system, _ = make_system()
        assert set(system.monitors) == set(net.switches)

    def test_catch_rules_installed_everywhere(self):
        _, net, system, _ = make_system()
        for node in net.switches:
            rules = system.plan.catching_rules(node)
            for rule in rules:
                assert net.switch(
                    node
                ).dataplane.get(rule.priority, rule.match)
                assert system.monitors[node].expected.get(
                    rule.priority, rule.match
                )

    def test_switch_numbers_registered(self):
        _, net, system, _ = make_system()
        for node in net.switches:
            number = net.switch_number(node)
            assert system.multiplexer.monitors[number][0] == node


class TestInjection:
    def test_inject_reaches_probed_switch_on_right_port(self):
        sim, net, system, _ = make_system()
        target_port = net.port_toward["s3"]["s1"]
        seen = []
        switch3 = net.switch("s3")
        original = switch3.inject
        switch3.inject = lambda raw, in_port: seen.append(in_port) or original(
            raw, in_port
        )
        packet = craft_packet(
            {
                __import__(
                    "repro.openflow.fields", fromlist=["FieldName"]
                ).FieldName.DL_TYPE: 0x0800,
                __import__(
                    "repro.openflow.fields", fromlist=["FieldName"]
                ).FieldName.NW_PROTO: 17,
            },
            b"x",
        )
        system.multiplexer.inject("s3", packet, target_port)
        sim.run_for(0.1)
        assert seen == [target_port]

    def test_unroutable_port_counted(self):
        sim, net, system, _ = make_system()
        system.multiplexer.inject("s3", b"payload", in_port=99)
        assert system.multiplexer.probes_unroutable == 1


class TestPacketInRouting:
    def test_foreign_packetins_reach_controller(self):
        sim, net, system, upstream = make_system()
        # A production rule sends traffic to the controller.
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000042),
            actions=output(CONTROLLER_PORT),
        )
        system.preinstall_production_rule("s1", rule)
        from repro.openflow.fields import FieldName

        raw = craft_packet(
            {
                FieldName.DL_TYPE: 0x0800,
                FieldName.NW_PROTO: 17,
                FieldName.NW_DST: 0x0A000042,
            },
            b"production",
        )
        net.switch("s1").inject(raw, in_port=net.port_toward["s1"]["s2"])
        sim.run_for(0.1)
        packet_ins = [
            (node, msg)
            for node, msg in upstream
            if isinstance(msg, PacketIn)
        ]
        assert len(packet_ins) == 1
        assert packet_ins[0][0] == "s1"

    def test_stale_probe_metadata_not_forwarded(self):
        sim, net, system, upstream = make_system()
        from repro.openflow.fields import FieldName

        # A probe-looking packet whose nonce no monitor knows.
        meta = ProbeMetadata(
            switch_id=net.switch_number("s1"), rule_cookie=1, nonce=999999
        )
        raw = craft_packet(
            {FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 17},
            meta.encode(),
        )
        system._from_switch("s2", PacketIn(payload=raw, in_port=1))
        # Routed to s1's monitor (registered) but stale there; never
        # surfaces to the controller.
        assert system.monitors["s1"].stale_probes == 1
        assert not any(isinstance(m, PacketIn) for _n, m in upstream)

    def test_unknown_switch_id_counted_unroutable(self):
        sim, net, system, upstream = make_system()
        from repro.openflow.fields import FieldName

        meta = ProbeMetadata(switch_id=777, rule_cookie=1, nonce=5)
        raw = craft_packet(
            {FieldName.DL_TYPE: 0x0800, FieldName.NW_PROTO: 17},
            meta.encode(),
        )
        system._from_switch("s2", PacketIn(payload=raw, in_port=1))
        assert system.multiplexer.probes_unroutable == 1


class TestControllerPassThrough:
    def test_non_flowmod_messages_forwarded_down(self):
        sim, net, system, _ = make_system()
        system.send_to_switch("s1", EchoRequest(xid=4))
        sim.run_for(0.1)
        # EchoReply comes back up through the monitor to the controller.

    def test_flowmods_update_expected_table(self):
        sim, net, system, _ = make_system()
        mod = FlowMod(
            command=FlowModCommand.ADD,
            match=Match.build(nw_dst=1),
            priority=10,
            actions=output(net.port_toward["s1"]["s2"]),
        )
        system.send_to_switch("s1", mod)
        assert system.monitors["s1"].expected.get(10, mod.match) is not None

    def test_total_alarms_sorted(self):
        sim, net, system, _ = make_system()
        from repro.core.monitor import MonitorAlarm

        system.monitors["s1"].alarms.append(
            MonitorAlarm(time=2.0, rule=None, kind="missing")
        )
        system.monitors["s2"].alarms.append(
            MonitorAlarm(time=1.0, rule=None, kind="missing")
        )
        alarms = system.total_alarms()
        assert [a.time for a in alarms] == [1.0, 2.0]


class TestEgressObservability:
    def test_host_facing_rule_unmonitorable(self):
        """A rule forwarding only to a host port can't be probed: the
        probe would exit the network (§3.5 egress rules)."""
        sim = Simulator()
        net = Network(sim, star(2), seed=4)
        net.add_host("h1", "hub")
        system = MonocleSystem(net, dynamic=False)
        host_port = net.port_toward["hub"]["h1"]
        rule = Rule(
            priority=100,
            match=Match.build(nw_dst=0x0A000001),
            actions=output(host_port),
        )
        system.preinstall_production_rule("hub", rule)
        default = Rule(
            priority=1,
            match=Match.wildcard(),
            actions=output(net.port_toward["hub"]["leaf0"]),
        )
        system.preinstall_production_rule("hub", default)
        result = system.monitors["hub"].probe_for_rule(rule)
        # Present outcome emits only on the host port (unobservable);
        # absent outcome emits toward leaf0 — still distinguishable by
        # where/if the probe comes back, so Monocle can monitor it as a
        # negative probe... unless the absent outcome is also invisible.
        # Either way the result must be consistent with observability.
        if result.ok:
            from repro.core.monitor import outcome_observations

            present = outcome_observations(
                result.outcome_present, system.monitors["hub"].observable_ports
            )
            absent = outcome_observations(
                result.outcome_absent, system.monitors["hub"].observable_ports
            )
            assert present != absent or bool(present) != bool(absent)
