"""OpenFlow control-plane messages.

In-process message objects standing in for the OF 1.0 wire protocol.  The
semantics that matter to Monocle are preserved: transaction ids, FlowMod
commands (add / modify / modify-strict / delete / delete-strict), barrier
ordering, PacketOut injection and PacketIn delivery.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.openflow.actions import ActionList
from repro.openflow.match import Match

_xid_counter = itertools.count(1)


def next_xid() -> int:
    """Allocate a fresh OpenFlow transaction id."""
    return next(_xid_counter)


@dataclass
class Message:
    """Base class for control-plane messages."""

    xid: int = field(default_factory=next_xid)


class FlowModCommand(enum.Enum):
    """OpenFlow 1.0 flow-mod commands."""

    ADD = "add"
    MODIFY = "modify"
    MODIFY_STRICT = "modify_strict"
    DELETE = "delete"
    DELETE_STRICT = "delete_strict"

    @property
    def is_delete(self) -> bool:
        """Removal semantics (strict or not).

        The one definition every affected-rule consumer (probe context,
        shared-context overlay, probe scheduler) classifies against, so
        a future delete-like command cannot desynchronize them.
        """
        return self in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT)

    @property
    def is_modify(self) -> bool:
        """In-place modification semantics (strict or not)."""
        return self in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT)


@dataclass
class FlowMod(Message):
    """A flow-table modification request.

    For ADD / MODIFY_STRICT / DELETE_STRICT the (priority, match) pair
    identifies the rule.  Non-strict MODIFY/DELETE apply to every rule
    covered by the match, per the OF 1.0 spec.
    """

    command: FlowModCommand = FlowModCommand.ADD
    match: Match = field(default_factory=Match.wildcard)
    priority: int = 0
    actions: ActionList = field(default_factory=ActionList)
    cookie: int = 0

    def __repr__(self) -> str:
        return (
            f"FlowMod(xid={self.xid}, {self.command.value}, "
            f"prio={self.priority}, {self.match!r})"
        )


@dataclass
class BarrierRequest(Message):
    """Request: reply only after all earlier messages are processed."""


@dataclass
class BarrierReply(Message):
    """Reply to a BarrierRequest (same xid)."""


@dataclass
class PacketOut(Message):
    """Controller-to-switch packet injection.

    Attributes:
        payload: raw packet bytes to emit.
        out_port: port to emit the packet on.
    """

    payload: bytes = b""
    out_port: int = 0


@dataclass
class PacketIn(Message):
    """Switch-to-controller packet delivery.

    Attributes:
        payload: raw packet bytes as received.
        in_port: port the packet arrived on.
        reason: "action" (a rule sent it to the controller) or "no_match".
    """

    payload: bytes = b""
    in_port: int = 0
    reason: str = "action"


@dataclass
class FlowRemoved(Message):
    """Notification that a rule was removed (e.g. by delete)."""

    match: Match = field(default_factory=Match.wildcard)
    priority: int = 0
    cookie: int = 0


@dataclass
class ErrorMsg(Message):
    """An OpenFlow error (e.g. overlap, table full)."""

    error_type: str = "unknown"
    detail: str = ""


@dataclass
class EchoRequest(Message):
    """Liveness probe from either side of the channel."""


@dataclass
class EchoReply(Message):
    """Reply to an EchoRequest (same xid)."""
