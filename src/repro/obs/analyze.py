"""Trace reconstruction: probe spans and detection latencies.

The trace schema is flat (one event per line); this module rebuilds the
structures the events encode:

* :func:`probe_spans` — one :class:`ProbeSpan` per span id, stitching
  ``probe.generated`` -> ``probe.sent`` -> ``probe.confirmed`` /
  ``probe.timeout`` -> ``alarm.raised`` into a lifecycle with the
  solve / scheduler-wait / wire latency breakdown.
* :func:`detection_latencies` — replays the metrics layer's alarm
  attribution purely from the trace: each ``failure.injected`` event is
  matched with the first ``alarm.raised`` whose node and rule cookie
  the injection covers; the resulting latencies must equal
  :class:`~repro.fleet.metrics.DetectionRecord` latencies exactly
  (pinned by ``tests/test_obs_fleet.py``).

All helpers accept live :class:`~repro.obs.trace.TraceEvent` objects
and JSONL-loaded dicts interchangeably — analysis works the same on an
in-memory run and on a ``--trace-out`` file read back later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.trace import TraceEvent, node_label


def _normalize(event: "TraceEvent | dict[str, Any]") -> dict[str, Any]:
    """One canonical event shape: the JSONL dict (node repr-encoded)."""
    if isinstance(event, dict):
        return event
    return {
        "ts": event.ts,
        "type": event.etype,
        "node": node_label(event.node),
        "span": event.span,
        "args": dict(event.args),
    }


@dataclass
class ProbeSpan:
    """One probe's reconstructed lifecycle."""

    span: int
    node: str | None = None
    priority: int | None = None
    match: str | None = None
    cookie: int | None = None
    #: How probe generation was served: "cache", "revalidate", "solve".
    source: str | None = None
    generated_at: float | None = None
    solve_seconds: float | None = None
    #: Scheduler wait: touch (churn/update/alarm signal) -> serve.
    wait_seconds: float | None = None
    first_sent_at: float | None = None
    injections: int = 0
    confirmed_at: float | None = None
    timed_out_at: float | None = None
    alarm_at: float | None = None
    alarm_kind: str | None = None
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def wire_seconds(self) -> float | None:
        """First injection -> confirmation (the on-the-wire latency)."""
        if self.first_sent_at is None:
            return None
        end = self.confirmed_at
        if end is None:
            end = self.timed_out_at
        if end is None:
            return None
        return end - self.first_sent_at

    @property
    def outcome(self) -> str:
        if self.alarm_at is not None:
            return f"alarm:{self.alarm_kind}"
        if self.confirmed_at is not None:
            return "confirmed"
        if self.timed_out_at is not None:
            return "timeout"
        return "in-flight"


def probe_spans(
    events: Iterable["TraceEvent | dict[str, Any]"],
) -> dict[int, ProbeSpan]:
    """Group span-carrying probe events into :class:`ProbeSpan` records."""
    spans: dict[int, ProbeSpan] = {}
    for raw in events:
        event = _normalize(raw)
        span_id = event.get("span")
        etype = event["type"]
        if span_id is None or not etype.startswith(
            ("probe.", "alarm.", "update.")
        ):
            continue
        span = spans.get(span_id)
        if span is None:
            span = spans[span_id] = ProbeSpan(span=span_id)
        span.events.append(event)
        if span.node is None:
            span.node = event.get("node")
        args = event.get("args", {})
        ts = event["ts"]
        if etype == "probe.generated":
            span.generated_at = ts
            span.priority = args.get("priority")
            span.match = args.get("match")
            span.cookie = args.get("cookie")
            span.source = args.get("source")
            span.solve_seconds = args.get("solve_seconds")
            span.wait_seconds = args.get("wait_seconds")
        elif etype == "probe.sent":
            span.injections += 1
            if span.first_sent_at is None:
                span.first_sent_at = ts
        elif etype == "probe.confirmed":
            span.confirmed_at = ts
        elif etype == "probe.timeout":
            span.timed_out_at = ts
        elif etype == "alarm.raised":
            span.alarm_at = ts
            span.alarm_kind = args.get("kind")
            if span.cookie is None:
                span.cookie = args.get("cookie")
    return spans


@dataclass
class TraceDetection:
    """One injection's detection, reconstructed purely from the trace."""

    kind: str
    injected_at: float
    nodes: tuple[str, ...]
    cookies: tuple[int, ...]
    detected_at: float | None = None
    detected_on: str | None = None
    alarm_kind: str | None = None

    @property
    def latency(self) -> float | None:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at


def detection_latencies(
    events: Iterable["TraceEvent | dict[str, Any]"],
) -> list[TraceDetection]:
    """Replay alarm attribution from the trace alone.

    Mirrors :meth:`repro.fleet.failures.Injection.is_detection`: an
    ``alarm.raised`` detects a ``failure.injected`` when it is not
    earlier, lands on one of the injection's nodes, and carries one of
    its victim cookies.  Each injection takes its *earliest* such
    alarm, exactly as :func:`~repro.fleet.metrics.collect_fleet_metrics`
    does.
    """
    normalized = [_normalize(e) for e in events]
    detections = [
        TraceDetection(
            kind=event["args"].get("kind", "failure"),
            injected_at=event["ts"],
            nodes=tuple(event["args"].get("nodes", ())),
            cookies=tuple(event["args"].get("cookies", ())),
        )
        for event in normalized
        if event["type"] == "failure.injected"
    ]
    for event in normalized:
        if event["type"] != "alarm.raised":
            continue
        node = event.get("node")
        cookie = event.get("args", {}).get("cookie")
        ts = event["ts"]
        for record in detections:
            if (
                ts >= record.injected_at
                and node in record.nodes
                and cookie in record.cookies
                and (record.detected_at is None or ts < record.detected_at)
            ):
                record.detected_at = ts
                record.detected_on = node
                record.alarm_kind = event["args"].get("kind")
    return detections


def format_span_table(
    spans: Iterable[ProbeSpan], limit: int | None = None
) -> str:
    """A plain-text per-probe latency breakdown (the examples' output)."""
    header = (
        f"{'span':>6}  {'node':<10} {'source':<10} {'solve ms':>9} "
        f"{'wait ms':>9} {'wire ms':>9}  outcome"
    )
    lines = [header, "-" * len(header)]
    shown = 0
    for span in sorted(spans, key=lambda s: s.span):
        if limit is not None and shown >= limit:
            break
        shown += 1

        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value * 1000:.3f}"

        lines.append(
            f"{span.span:>6}  {span.node or '-':<10} "
            f"{span.source or '-':<10} {ms(span.solve_seconds):>9} "
            f"{ms(span.wait_seconds):>9} {ms(span.wire_seconds):>9}  "
            f"{span.outcome}"
        )
    return "\n".join(lines)
