"""Network-wide monitoring runtime (the paper's §6 at fleet scale).

Where :mod:`repro.core.multiplexer` wires Monocle onto one network,
this package turns a *topology name* into a running, monitored,
failure-injected deployment and aggregates what happened:

* :mod:`~repro.fleet.deployment` — one sim kernel, one switch + one
  Monitor per node, catching rules installed per the coloring plan.
* :mod:`~repro.fleet.workloads` — steady-state rule populations, rule
  churn, ACL tables, background data-plane traffic.
* :mod:`~repro.fleet.failures` — rule drops, corruption, priority
  swaps, link/port failures, silently-ignored FlowMods.
* :mod:`~repro.fleet.metrics` / :mod:`~repro.fleet.report` — per-switch
  and aggregate detection/overhead metrics, plain-text reports.
* :mod:`~repro.fleet.runner` — :func:`run_scenario` over a declarative
  :class:`ScenarioSpec`; also the ``repro-fleet`` console entry point.
"""

from repro.fleet.deployment import FleetDeployment
from repro.fleet.failures import (
    ChannelDegradation,
    ControlPlaneFlap,
    FailureSpec,
    FailureSpecError,
    FlowModBlackhole,
    Injection,
    LinkFailure,
    PortFailure,
    PrioritySwap,
    RuleCorruption,
    RuleDrop,
    schedule_failures,
)
from repro.fleet.metrics import (
    DetectionRecord,
    FleetMetrics,
    SwitchMetrics,
    collect_fleet_metrics,
)
from repro.fleet.report import format_fleet_report
from repro.fleet.runner import (
    ScenarioError,
    ScenarioResult,
    ScenarioSpec,
    run_scenario,
)
from repro.fleet.shardworker import WorkerCrash, WorkerHang
from repro.fleet.workloads import (
    AclTables,
    BackgroundTraffic,
    RuleChurn,
    SteadyRules,
    Workload,
)

__all__ = [
    "FleetDeployment",
    "ChannelDegradation",
    "ControlPlaneFlap",
    "FailureSpec",
    "FailureSpecError",
    "FlowModBlackhole",
    "Injection",
    "LinkFailure",
    "PortFailure",
    "PrioritySwap",
    "RuleCorruption",
    "RuleDrop",
    "schedule_failures",
    "DetectionRecord",
    "FleetMetrics",
    "SwitchMetrics",
    "collect_fleet_metrics",
    "format_fleet_report",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "run_scenario",
    "WorkerCrash",
    "WorkerHang",
    "AclTables",
    "BackgroundTraffic",
    "RuleChurn",
    "SteadyRules",
    "Workload",
]
