"""Turning a topology into a running, network-wide monitored deployment.

:class:`FleetDeployment` owns everything one fleet scenario needs: a
fresh :class:`~repro.sim.kernel.Simulator`, the wired
:class:`~repro.network.network.Network`, the catching plan (§6), one
Monitor (plus optional DynamicMonitor) per switch via
:class:`~repro.core.multiplexer.MonocleSystem`, and an
:class:`~repro.controller.controller.SdnController` whose messages flow
through Monocle.  Workloads and failure models operate on a deployment;
they never touch the wiring themselves.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Iterable, Mapping

import networkx as nx

from repro.controller import ConfirmMode, SdnController
from repro.core.catching import (
    CatchingPlan,
    ColoringAlgorithm,
    plan_catching_rules,
)
from repro.core.monitor import Monitor, MonitorConfig
from repro.core.probegen import ProbeGenContextStats
from repro.core.multiplexer import MonocleSystem
from repro.core.schedule import SchedulerStats
from repro.core.shared import SharedContextRegistry, SharedContextStats
from repro.network.network import Network
from repro.obs import NULL_OBSERVER, NullObserver, Observer
from repro.openflow.messages import Message
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.switches.profiles import OVS, SwitchProfile
from repro.switches.switch import SimulatedSwitch


class FleetDeployment:
    """One topology, fully instrumented and ready to run.

    Args:
        topology: switch-level graph (from :mod:`repro.topology`).
        profiles: per-node profile, one profile for all, or a callable
            ``node -> profile`` (same contract as :class:`Network`).
        plan: catching plan; computed from ``strategy``/``algorithm``
            when omitted.
        config: monitoring configuration shared by all Monitors.
        dynamic: interpose a DynamicMonitor per switch so FlowMods are
            confirmed and acknowledged (§4).
        seed: base seed for all deployment-level randomness; the
            network forks its own streams from the same value.
        share_contexts: dedupe probe-generation contexts across
            switches with identical tables and compatible generator
            configs (one shared solver per replica group, copy-on-churn
            forking).  On by default; disable for A/B benchmarking.
        rededupe_interval: how often (sim seconds) to check for churn
            quiescence and re-merge forked contexts whose tables became
            identical again (rolling re-fingerprinting; see
            :meth:`~repro.core.shared.SharedContextRegistry.rededupe`).
            ``None``/0 disables the sweep.
        probe_policy: probe-scheduling policy per switch — one
            :data:`~repro.core.schedule.POLICIES` name for the whole
            fleet, a node -> name mapping, or a callable
            ``node -> name`` (``round_robin``, ``churn_first`` or
            ``weighted``).
        obs: an :class:`~repro.obs.Observer` to thread through every
            layer (sim-time trace + live metrics); defaults to the
            disabled :data:`~repro.obs.NULL_OBSERVER`, whose hot path
            is a single attribute read.
        monitored_nodes: when given, only these switches get Monitors,
            production rules, and workload activity — a sharded fleet
            worker builds the *full* topology (so port numbers, switch
            numbers, and the catching plan match every other worker)
            but owns just its shard.  ``None`` means own everything.
    """

    def __init__(
        self,
        topology: nx.Graph,
        profiles: SwitchProfile
        | Mapping[Hashable, SwitchProfile]
        | Callable[[Hashable], SwitchProfile] = OVS,
        plan: CatchingPlan | None = None,
        config: MonitorConfig | None = None,
        dynamic: bool = True,
        seed: int = 0,
        strategy: int = 1,
        algorithm: ColoringAlgorithm = ColoringAlgorithm.EXACT,
        use_drop_postponing: bool = False,
        share_contexts: bool = True,
        rededupe_interval: float | None = 0.5,
        probe_policy: str
        | Mapping[Hashable, str]
        | Callable[[Hashable], str] = "round_robin",
        obs: Observer | NullObserver | None = None,
        monitored_nodes: "Iterable[Hashable] | None" = None,
    ) -> None:
        if topology.number_of_nodes() == 0:
            raise ValueError("cannot deploy a fleet on an empty topology")
        self.topology = topology
        self._monitored_set = (
            frozenset(topology.nodes)
            if monitored_nodes is None
            else frozenset(monitored_nodes)
        )
        self.sim = Simulator()
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.obs.install(self.sim)
        self.seed = seed
        self.dynamic = dynamic
        self.rng = DeterministicRandom(seed).fork(0xF1EE7)
        self.network = Network(
            self.sim, topology, profiles=profiles, seed=seed
        )
        self.config = config if config is not None else MonitorConfig()
        if plan is None:
            # The catching plan budgets one reserved value per window
            # slot; a too-narrow field clamps plan.slots (and thus the
            # effective per-monitor window) instead of failing.
            plan = plan_catching_rules(
                topology,
                strategy=strategy,
                algorithm=algorithm,
                slots=max(1, self.config.probe_window),
            )
        self.plan = plan
        self.shared_contexts = (
            SharedContextRegistry() if share_contexts else None
        )
        self.rededupe_interval = rededupe_interval
        #: churn_ops sample from the previous tick; a tick that sees
        #: no new operations treats the fleet as churn-quiescent.
        self._churn_ops_seen = -1
        self._rededupe_armed = False
        if self.shared_contexts is not None and rededupe_interval:
            # Armed lazily: the timer only runs while forked contexts
            # exist, so an idle deployment's event queue can drain.
            self.shared_contexts.on_fork = self._arm_rededupe
        self.probe_policy = probe_policy
        self.system = MonocleSystem(
            self.network,
            plan=plan,
            config=self.config,
            dynamic=dynamic,
            controller_handler=self._handle_upstream,
            use_drop_postponing=use_drop_postponing,
            shared_contexts=self.shared_contexts,
            probe_policy=probe_policy,
            obs=self.obs,
            monitored_nodes=self._monitored_set,
        )
        if self.obs.enabled:
            self.obs.metrics.add_collect_hook(self._sync_obs_metrics)
        self.controller = SdnController(
            self.sim, send=self.system.send_to_switch
        )
        #: Production rules installed per node (workload bookkeeping);
        #: failure models pick their victims from here.
        self.production_rules: dict[Hashable, list[Rule]] = {
            node: [] for node in self.nodes
        }
        #: Non-probe upstream messages the controller did not consume.
        self.upstream_messages: list[tuple[Hashable, Message]] = []
        self._started = False

    # ----- wiring ----------------------------------------------------------

    def _handle_upstream(self, node: Hashable, msg: Message) -> None:
        self.controller.handle_message(node, msg)
        self.upstream_messages.append((node, msg))

    def _arm_rededupe(self) -> None:
        """Schedule the next re-dedupe tick (idempotent)."""
        if self._rededupe_armed or not self.rededupe_interval:
            return
        registry = self.shared_contexts
        assert registry is not None
        self._rededupe_armed = True
        self._churn_ops_seen = registry.churn_ops
        self.sim.schedule(self.rededupe_interval, self._rededupe_tick)

    def _rededupe_tick(self) -> None:
        """Re-merge forked contexts once the churn wave has settled.

        Runs every ``rededupe_interval`` while forked contexts exist
        (armed by the registry's fork hook, disarmed when nothing is
        left to re-merge); only a tick observing zero new table
        operations since the previous one (churn quiescence) pays for
        the re-fingerprinting sweep — and that sweep is O(1) per
        context thanks to the tables' rolling fingerprints.
        """
        registry = self.shared_contexts
        assert registry is not None
        self._rededupe_armed = False
        ops = registry.churn_ops
        quiescent = ops == self._churn_ops_seen
        self._churn_ops_seen = ops
        if quiescent and registry.forked:
            registry.rededupe()
        if registry.forked:
            self._arm_rededupe()

    def _sync_obs_metrics(self) -> None:
        """Registry collect hook: mirror live stats into obs instruments.

        Runs before every metrics snapshot / exposition, so the hot
        monitoring paths never pay per-event counter updates — the
        counters are synced from the stats the layers already keep,
        and the gauges read live structure sizes.
        """
        registry = self.obs.metrics

        def sync(name: str, value: float, **labels: str) -> None:
            counter = registry.counter(name, **labels)
            counter.inc(value - counter.value)

        for node in self.monitored_nodes:
            label = repr(node)
            monitor = self.monitor(node)
            sync("monocle_probes_sent_total", monitor.probes_sent,
                 node=label)
            sync("monocle_probes_confirmed_total",
                 monitor.probes_confirmed, node=label)
            sync("monocle_probes_timed_out_total",
                 monitor.probes_timed_out, node=label)
            sync("monocle_alarms_total", len(monitor.alarms), node=label)
            sync("monocle_alarms_suppressed_total",
                 monitor.alarms_suppressed, node=label)
            sync("monocle_quarantines_total", monitor.quarantines,
                 node=label)
            context = monitor.probe_context
            genstats = context.stats
            sync("monocle_probegen_solves_total",
                 genstats.probes_generated, node=label)
            sync("monocle_probe_cache_hits_total", genstats.cache_hits,
                 node=label)
            sync("monocle_probe_revalidations_total",
                 genstats.revalidations, node=label)
            registry.gauge("monocle_outstanding_probes", node=label).set(
                len(monitor.outstanding)
            )
            registry.gauge("monocle_cycle_keys", node=label).set(
                len(monitor.scheduler)
            )
            if monitor.window > 1 or monitor.window_clamp:
                # Probe pipelining: live window occupancy plus the
                # static clamp (requested slots the catch field could
                # not back with reserved values).
                registry.gauge("monocle_window_depth", node=label).set(
                    monitor._steady_depth
                )
                registry.gauge("monocle_probe_window", node=label).set(
                    monitor.window
                )
                registry.gauge("monocle_window_clamp", node=label).set(
                    monitor.window_clamp
                )
                sync("monocle_reserved_overflows_total",
                     monitor.reserved_overflows, node=label)
            solver = getattr(context, "solver", None)
            if solver is None and hasattr(context, "_context"):
                # Shared handle: read the backing context's solver.
                solver = context._context().solver
            if solver is not None:
                health = solver.health()
                registry.gauge("monocle_solver_clauses", node=label).set(
                    health["num_clauses"]
                )
                registry.gauge("monocle_solver_lemmas", node=label).set(
                    health["lemma_count"]
                )
            dyn = self.system.dynamics.get(node)
            if dyn is not None:
                sync("monocle_updates_confirmed_total",
                     dyn.updates_confirmed, node=label)
                sync("monocle_updates_given_up_total",
                     dyn.updates_given_up, node=label)
        if self.shared_contexts is not None:
            stats = self.shared_contexts.stats
            registry.gauge("monocle_contexts_forked").set(
                len(self.shared_contexts.forked)
            )
            sync("monocle_contexts_forked_total", stats.contexts_forked)
            sync("monocle_contexts_remerged_total", stats.contexts_remerged)

    # ----- accessors -------------------------------------------------------

    @property
    def nodes(self) -> list[Hashable]:
        """Topology nodes in the deployment's canonical (sorted) order."""
        return sorted(self.topology.nodes, key=repr)

    @property
    def monitored_nodes(self) -> list[Hashable]:
        """The nodes this deployment owns, in canonical order.

        Equal to :attr:`nodes` except in a sharded fleet worker, where
        it is the worker's shard of the full topology.
        """
        return sorted(self._monitored_set, key=repr)

    def owns(self, node: Hashable) -> bool:
        """Whether this deployment monitors (and drives) ``node``."""
        return node in self._monitored_set

    def monitor(self, node: Hashable) -> Monitor:
        """The Monitor watching ``node``."""
        return self.system.monitor(node)

    def switch(self, node: Hashable) -> SimulatedSwitch:
        """The simulated switch at ``node``."""
        return self.network.switch(node)

    @property
    def confirm_mode(self) -> ConfirmMode:
        """The strongest confirmation mode this deployment supports."""
        return ConfirmMode.MONOCLE_ACK if self.dynamic else ConfirmMode.NONE

    # ----- setup helpers ---------------------------------------------------

    def install_production_rule(self, node: Hashable, rule: Rule) -> Rule:
        """Pre-install a production rule (both planes + expected table)."""
        self.system.preinstall_production_rule(node, rule)
        self.production_rules[node].append(rule)
        return rule

    def neighbor_ports(self, node: Hashable) -> list[int]:
        """Switch-facing ports of ``node`` (observable egress candidates)."""
        return self.network.switch_facing_ports(node)

    # ----- lifecycle -------------------------------------------------------

    def start_monitoring(self) -> None:
        """Start the §3 steady-state cycle on every Monitor."""
        self._started = True
        self.system.start_steady_state()

    def run(self, duration: float, max_events: int | None = None) -> None:
        """Advance the shared sim kernel by ``duration`` seconds."""
        self.sim.run_for(duration, max_events=max_events)

    def total_alarms(self):
        """All alarms across the fleet, time-ordered."""
        return self.system.total_alarms()

    def probegen_stats(self) -> ProbeGenContextStats:
        """Fleet-wide aggregate of the incremental probe-gen counters.

        Sums every Monitor's :class:`~repro.core.probegen.
        ProbeGenContextStats`; the ratio of ``cache_hits`` +
        ``revalidations`` to ``probes_generated`` is the work the delta
        API saved over from-scratch generation.
        """
        total = ProbeGenContextStats()
        for node in self.monitored_nodes:
            stats = self.monitor(node).probe_context.stats
            # Field-driven so counters added to the dataclass can never
            # be silently dropped from the aggregate.
            for stat_field in dataclasses.fields(ProbeGenContextStats):
                setattr(
                    total,
                    stat_field.name,
                    getattr(total, stat_field.name)
                    + getattr(stats, stat_field.name),
                )
        return total

    def scheduler_stats(self) -> SchedulerStats:
        """Fleet-wide aggregate of the probe-scheduler counters.

        ``cycle_rebuilds`` must equal the switch count however much the
        fleet churns: each Monitor pays exactly one construction-time
        cycle build, then O(delta) maintenance.
        """
        total = SchedulerStats()
        for node in self.monitored_nodes:
            stats = self.monitor(node).scheduler.stats
            for stat_field in dataclasses.fields(SchedulerStats):
                setattr(
                    total,
                    stat_field.name,
                    getattr(total, stat_field.name)
                    + getattr(stats, stat_field.name),
                )
        return total

    def shared_context_stats(self) -> SharedContextStats:
        """Registry counters (all zero when sharing is disabled)."""
        if self.shared_contexts is None:
            return SharedContextStats()
        return self.shared_contexts.stats

    def __repr__(self) -> str:
        return (
            f"FleetDeployment({self.topology.number_of_nodes()} switches, "
            f"strategy={self.plan.strategy}, "
            f"{self.plan.num_reserved_values} reserved values"
            f"{f' x {self.plan.slots} slots' if self.plan.slots > 1 else ''}, "
            f"dynamic={self.dynamic})"
        )
