"""Benchmark: observability overhead on a churning fleet.

Tracing is only usable if it is cheap enough to leave on: this
benchmark runs the same churn scenario twice — once with the default
:class:`~repro.obs.NullObserver` (every publication site reduced to one
attribute read and a falsy test) and once with a full
:class:`~repro.obs.Observer` (event tracing + histograms + periodic
sim-time snapshots) — and gates the traced run at <= 10% wall-clock
overhead.  Timing is paired (arms back-to-back, after an untimed
warm-up pair) so machine drift cancels within each ratio; the gate
takes the *minimum* paired ratio — on a noisy shared runner any single
iteration can be descheduled, but a *consistent* overhead above the
gate cannot produce even one favorable pair, so the minimum still
fails real regressions while shrugging off scheduler noise.  The
median ratio is reported alongside as the central estimate.

The NullObserver arm doubles as the no-obs baseline: it *is* the
default path every other benchmark (``BENCH_fleet.json``,
``BENCH_cycle.json``, ``BENCH_probegen.json``) runs on, so their
unchanged gates pin "NullObserver within noise of no observability"
continuously.  Both arms must produce a byte-identical alarm timeline
— observability must never perturb the simulation it observes.

Writes ``BENCH_obs.json`` and **fails** the CI gate when tracing costs
more than :data:`OVERHEAD_GATE`.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_header, write_bench_artifact
from repro.fleet import RuleChurn, RuleDrop, ScenarioSpec, run_scenario

#: Traced wall-clock must stay within this factor of the null arm.
OVERHEAD_GATE = 1.10
REPEATS = 5


def _spec(observe: bool, scale: float, seed: int) -> ScenarioSpec:
    """A churn-heavy fleet scenario, identical across both arms."""
    return ScenarioSpec(
        topology="ring",
        size=6,
        duration=2.0,
        seed=seed,
        rules_per_switch=max(6, int(round(16 * min(scale, 1.0)))),
        probe_rate=300.0,
        dynamic=True,
        workloads=(RuleChurn(rate=25.0),),
        failures=(RuleDrop(at=0.7, node="sw0", rule_index=1),),
        observe=observe,
        obs_snapshot_interval=0.2 if observe else None,
    )


def _run(observe: bool, scale: float, seed: int):
    start = time.perf_counter()
    result = run_scenario(_spec(observe, scale, seed))
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_observability_overhead(scale, seed):
    print_header(
        "Observability overhead: full tracing vs NullObserver "
        "(fleet churn scenario)"
    )

    _run(False, scale, seed)  # untimed warm-up pair
    _run(True, scale, seed)

    null_times: list[float] = []
    traced_times: list[float] = []
    ratios: list[float] = []
    null_result = traced_result = None
    # Paired back-to-back so machine drift cancels within each ratio.
    for _ in range(REPEATS):
        null_s, null_result = _run(False, scale, seed)
        traced_s, traced_result = _run(True, scale, seed)
        null_times.append(null_s)
        traced_times.append(traced_s)
        ratios.append(traced_s / null_s)
    assert null_result is not None and traced_result is not None

    # Tracing must observe, not perturb: identical simulation output.
    assert (
        traced_result.metrics.alarm_timeline
        == null_result.metrics.alarm_timeline
    ), "tracing changed the simulation's alarm timeline"
    assert (
        traced_result.metrics.probes_sent
        == null_result.metrics.probes_sent
    )

    null_s = min(null_times)
    traced_s = min(traced_times)
    overhead = min(ratios)
    overhead_median = sorted(ratios)[len(ratios) // 2]

    trace = traced_result.observer.trace
    registry = traced_result.observer.metrics
    row = {
        "switches": 6,
        "rules_per_switch": traced_result.spec.rules_per_switch,
        "sim_duration_s": traced_result.spec.duration,
        "probes_sent": traced_result.metrics.probes_sent,
        "trace_events": trace.emitted,
        "trace_dropped": trace.dropped,
        "metric_snapshots": len(registry.snapshots),
        "null_observer_s": round(null_s, 4),
        "traced_s": round(traced_s, 4),
        "overhead": round(overhead, 4),
        "overhead_median": round(overhead_median, 4),
        "paired_ratios": [round(r, 4) for r in ratios],
    }
    print(
        f"null observer: {null_s * 1e3:8.1f} ms "
        f"(best of {REPEATS}; {row['probes_sent']} probes)"
    )
    print(
        f"traced:        {traced_s * 1e3:8.1f} ms "
        f"({row['trace_events']} events, "
        f"{row['metric_snapshots']} snapshots)"
    )
    print(
        f"overhead:      {overhead:8.3f}x best paired ratio "
        f"(median {overhead_median:.3f}x; gate: <= {OVERHEAD_GATE}x)"
    )

    path = write_bench_artifact(
        "obs",
        {
            "bench": "observability_overhead",
            "unit": "seconds_wall_per_run",
            "gate_overhead": OVERHEAD_GATE,
            "rows": [row],
        },
    )
    print(f"\nartifact: {path}")

    # Sanity: the traced arm really traced.
    assert trace.emitted > traced_result.metrics.probes_sent
    assert len(registry.snapshots) >= 5
    assert trace.dropped == 0

    # CI gate: tracing must be cheap enough to leave on.  A consistent
    # overhead above the gate cannot yield a single paired ratio below
    # it, so gating the minimum is noise-robust but still binding.
    assert overhead <= OVERHEAD_GATE, (
        f"full tracing costs >= {overhead:.3f}x the NullObserver "
        f"baseline in every paired run (gate: <= {OVERHEAD_GATE}x)"
    )
