"""Figure 8: batched path installation in a larger network.

Paper setup: k=4 FatTree of 20 OpenVSwitches, each behind a proxy that
emulates Pica8 misbehaviour, monitored by Monocle — compared against
the same FatTree built of "ideal" switches with reliable rule-update
acknowledgments.  The controller installs 2000 random paths in two
phases (all rules except ingress, then the ingress rule), starting 40
new path updates every 10 ms.

Paper result: Monocle's rule-modification throughput is comparable to
the ideal network — the entire 2000-path update takes only ~350 ms
longer.

Default scale installs 2000 * REPRO_BENCH_SCALE/8 paths (250 at scale
1) to keep the bench under a couple of minutes; the ratio between the
two arms is scale-invariant.
"""

import networkx as nx

from repro.analysis import format_table
from repro.controller import ConfirmMode, SdnController
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.openflow.match import Match
from repro.sim.kernel import Simulator
from repro.sim.random import DeterministicRandom
from repro.fleet import RuleChurn, RuleDrop, ScenarioSpec, run_scenario
from repro.switches.profiles import IDEAL, PICA8
from repro.topology.generators import fat_tree

from .conftest import (
    bench_scale,
    bench_seed,
    print_header,
    write_bench_artifact,
)

BATCH_SIZE = 40
BATCH_INTERVAL = 0.010


def random_paths(graph, count, rng):
    edges = sorted(n for n in graph.nodes if n.startswith("edge"))
    paths = []
    for _ in range(count):
        src = rng.choose(edges)
        dst = rng.choose([e for e in edges if e != src])
        paths.append(nx.shortest_path(graph, src, dst))
    return paths


def run_arm(use_monocle, num_paths, seed):
    """Install paths in batches; returns per-path completion times."""
    sim = Simulator()
    graph = fat_tree(4)
    profile = PICA8 if use_monocle else IDEAL
    net = Network(sim, graph, profiles=profile, seed=seed)
    rng = DeterministicRandom(seed)
    paths = random_paths(graph, num_paths, rng)

    if use_monocle:
        box = {}
        system = MonocleSystem(
            net,
            config=MonitorConfig(update_probe_interval=0.004),
            dynamic=True,
            controller_handler=lambda n, m: box["c"].handle_message(n, m),
        )
        controller = SdnController(sim, send=system.send_to_switch)
        box["c"] = controller
        confirm = ConfirmMode.MONOCLE_ACK
    else:
        controller = SdnController(
            sim, send=lambda n, m: net.channel(n).send_down(m)
        )
        for node in net.switches:
            net.channel(node).up_handler = (
                lambda m, n=node: controller.handle_message(n, m)
            )
        confirm = ConfirmMode.BARRIER

    completions: dict[int, float] = {}

    def start_path(index):
        path = paths[index]
        match = Match.build(nw_dst=0x0A000000 + index)
        final_port = net.switch_facing_ports(path[-1])[0]

        def phase2():
            # Phase 2: the ingress rule, fire-and-forget (its switch is
            # the safe end of the two-phase update).
            from repro.openflow.actions import output

            ingress_port = (
                net.port_toward[path[0]][path[1]]
                if len(path) > 1
                else final_port
            )
            controller.install_rule(
                path[0], match, 100, output(ingress_port),
                confirm=ConfirmMode.NONE,
            )
            completions[index] = sim.now

        controller.install_path(
            path=path,
            match=match,
            priority=100,
            port_toward=net.port_toward,
            final_port=final_port,
            confirm=confirm,
            on_all_confirmed=phase2,
            skip_ingress=True,
        )

    # Batched arrivals: BATCH_SIZE new paths every BATCH_INTERVAL.
    for batch_start in range(0, num_paths, BATCH_SIZE):
        offset = (batch_start // BATCH_SIZE) * BATCH_INTERVAL
        for index in range(
            batch_start, min(batch_start + BATCH_SIZE, num_paths)
        ):
            sim.at(offset, lambda i=index: start_path(i))

    sim.run_for(120.0)
    missing = [i for i in range(num_paths) if i not in completions]
    assert not missing, f"{len(missing)} paths never completed"
    return [completions[i] for i in range(num_paths)]


def test_figure8_large_network(benchmark):
    num_paths = max(80, int(250 * bench_scale()))
    ideal = run_arm(use_monocle=False, num_paths=num_paths, seed=bench_seed())
    monocle = run_arm(use_monocle=True, num_paths=num_paths, seed=bench_seed())

    ideal_total = max(ideal)
    monocle_total = max(monocle)
    delta = monocle_total - ideal_total

    rows = [
        ["ideal switches (barriers)", f"{sorted(ideal)[len(ideal) // 2]:.3f}",
         f"{ideal_total:.3f}"],
        ["Pica8-like + Monocle", f"{sorted(monocle)[len(monocle) // 2]:.3f}",
         f"{monocle_total:.3f}"],
    ]
    print_header(
        f"Figure 8 — batched install of {num_paths} paths in a 20-switch "
        "FatTree"
    )
    print(
        format_table(["arm", "median path done s", "all paths done s"], rows)
    )
    print(
        f"\nMonocle delay over ideal: {delta * 1000:.0f} ms "
        f"(paper: ~350 ms for 2000 paths)"
    )

    path = write_bench_artifact(
        "fig8",
        {
            "bench": "figure8_batched_path_install",
            "unit": "seconds",
            "rows": [
                {
                    "arm": "ideal_barriers",
                    "paths": num_paths,
                    "median_path_s": round(
                        sorted(ideal)[len(ideal) // 2], 4
                    ),
                    "all_paths_s": round(ideal_total, 4),
                },
                {
                    "arm": "pica8_monocle",
                    "paths": num_paths,
                    "median_path_s": round(
                        sorted(monocle)[len(monocle) // 2], 4
                    ),
                    "all_paths_s": round(monocle_total, 4),
                },
            ],
            "monocle_delay_ms": round(delta * 1000, 1),
        },
    )
    print(f"artifact: {path}")

    # CI gate (shape): Monocle completes the whole update, slower than
    # ideal but in the same regime (sub-second extra, not multiples).
    assert delta >= 0.0
    assert monocle_total < 3.0 * ideal_total + 1.0

    benchmark.pedantic(
        lambda: run_arm(True, max(40, num_paths // 5), bench_seed() + 1),
        rounds=1,
        iterations=1,
    )


def test_figure8_fleet_runner():
    """The same 20-switch FatTree driven through ``repro.fleet``.

    Monitoring + rule churn + an injected rule drop on a core switch:
    the declarative runner replaces the hand-rolled orchestration above
    and must detect the failure with no false alarms fleet-wide.
    """
    rules = max(4, int(10 * bench_scale()))
    spec = ScenarioSpec(
        topology="fat_tree",
        size=4,
        profile="ovs",
        duration=2.0,
        seed=bench_seed(),
        rules_per_switch=rules,
        workloads=(RuleChurn(rate=40.0),),
        failures=(RuleDrop(at=0.5, node="core0", rule_index=0),),
    )
    result = run_scenario(spec)

    print_header("Figure 8 companion — fleet runner on the k=4 FatTree")
    print(result.report())

    metrics = result.metrics
    assert len(metrics.per_switch) == 20
    assert metrics.all_detected
    assert not metrics.false_alarms
    (drop,) = metrics.detections
    assert drop.latency is not None
    assert drop.latency < rules / spec.probe_rate + 2 * spec.probe_timeout
