"""Packet crafting and parsing.

This is the library that turns the *abstract* probe header produced by the
SAT stage into a real, wire-valid packet (paper §5.2), and parses caught
probes back into abstract headers:

* :mod:`repro.packets.checksum` — the Internet checksum.
* :mod:`repro.packets.ethernet`, :mod:`repro.packets.ipv4`,
  :mod:`repro.packets.arp`, :mod:`repro.packets.transport` — per-protocol
  header encode/decode.
* :mod:`repro.packets.craft` — abstract header -> raw bytes, including
  the §5.2 normalization steps: limited-domain (spare value) substitution
  and elimination of conditionally-excluded fields.
* :mod:`repro.packets.parse` — raw bytes -> abstract header.
* :mod:`repro.packets.payload` — probe metadata carried in the packet
  payload (§4.2: which rule is under test, expected outcome), untouched
  by switches.
"""

from repro.packets.checksum import internet_checksum
from repro.packets.craft import (
    CraftError,
    craft_packet,
    normalize_abstract_header,
)
from repro.packets.parse import ParseError, parse_packet
from repro.packets.payload import ProbeMetadata

__all__ = [
    "internet_checksum",
    "CraftError",
    "craft_packet",
    "normalize_abstract_header",
    "ParseError",
    "parse_packet",
    "ProbeMetadata",
]
